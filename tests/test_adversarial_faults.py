"""Adversarial message-level fault injection via the network
interceptor: targeted drops and delays of specific protocol messages.

These exercise resilience paths that random partitions rarely hit:
lost CPC votes, delayed order stamps, dropped retransmissions,
lost stability acks.
"""

import pytest

from repro.core.messages import EngineActionMsg, EngineCpcMsg, \
    EngineStateMsg
from repro.gcs.types import AckMsg, DataMsg, StampMsg

from conftest import make_cluster


@pytest.fixture
def cluster():
    c = make_cluster(3)
    c.start_all(settle=1.0)
    return c


def payload_of(datagram):
    inner = datagram.payload
    if isinstance(inner, DataMsg):
        return inner.payload
    return inner


class TestTargetedDrops:
    def test_lost_stamps_recovered_by_nack(self, cluster):
        """Drop every StampMsg for a while: SAFE delivery stalls, then
        the NACK path restores it once the interceptor lifts."""
        dropped = {"n": 0}

        def drop_stamps(datagram):
            if isinstance(datagram.payload, StampMsg) \
                    and dropped["n"] < 4:
                dropped["n"] += 1
                return False
            return True

        cluster.network.interceptor = drop_stamps
        client = cluster.client(2)
        client.submit(("SET", "k", 1))
        cluster.run_for(2.0)
        assert dropped["n"] > 0
        assert client.completed == 1
        cluster.assert_converged()

    def test_lost_acks_delay_but_not_break_safety(self, cluster):
        dropped = {"n": 0}

        def drop_some_acks(datagram):
            if isinstance(datagram.payload, AckMsg) and dropped["n"] < 6:
                dropped["n"] += 1
                return False
            return True

        cluster.network.interceptor = drop_some_acks
        client = cluster.client(1)
        for i in range(3):
            client.submit(("INC", "n", 1))
        cluster.run_for(2.0)
        assert client.completed == 3
        cluster.assert_converged()

    def test_lost_cpc_forces_membership_retry(self, cluster):
        """Dropping a CPC vote stalls Construct; the failure detector /
        phase timers eventually re-run the exchange and install."""
        state = {"dropped": 0}

        def drop_first_cpcs(datagram):
            inner = payload_of(datagram)
            if isinstance(inner, EngineCpcMsg) and state["dropped"] < 2:
                state["dropped"] += 1
                return False
            return True

        # Force a view change while intercepting CPCs.
        cluster.network.interceptor = drop_first_cpcs
        cluster.partition([1], [2, 3])
        cluster.run_for(3.0)
        cluster.network.interceptor = None
        cluster.heal()
        cluster.run_for(4.0)
        assert state["dropped"] > 0
        client = cluster.client(1)
        client.submit(("SET", "alive", 1))
        cluster.run_for(1.5)
        assert client.completed == 1
        cluster.assert_converged()

    def test_lost_state_messages_retry(self, cluster):
        state = {"dropped": 0}

        def drop_first_state_msgs(datagram):
            inner = payload_of(datagram)
            if isinstance(inner, EngineStateMsg) and state["dropped"] < 2:
                state["dropped"] += 1
                return False
            return True

        cluster.network.interceptor = drop_first_state_msgs
        cluster.partition([1], [2, 3])
        cluster.run_for(3.0)
        cluster.network.interceptor = None
        cluster.heal()
        cluster.run_for(4.0)
        cluster.assert_converged()
        assert len(cluster.primary_members()) == 3


class TestTargetedDelays:
    def test_delayed_actions_preserve_total_order(self, cluster):
        """Randomly delaying action datagrams must never reorder the
        global sequence (the sequencer stamps FIFO per origin)."""
        toggle = {"i": 0}

        def delay_alternate(datagram):
            inner = datagram.payload
            if isinstance(inner, DataMsg) and \
                    isinstance(inner.payload, EngineActionMsg):
                toggle["i"] += 1
                if toggle["i"] % 2 == 0:
                    return 0.004  # 4 ms extra
            return True

        cluster.network.interceptor = delay_alternate
        clients = {n: cluster.client(n) for n in (1, 2, 3)}
        for i in range(5):
            for client in clients.values():
                client.submit(("APPEND", "log", i))
        cluster.run_for(3.0)
        assert all(c.completed == 5 for c in clients.values())
        cluster.assert_converged()

    def test_delayed_heartbeats_below_timeout_are_harmless(self, cluster):
        from repro.gcs.types import HeartbeatMsg

        def delay_heartbeats(datagram):
            if isinstance(datagram.payload, HeartbeatMsg):
                return 0.01
            return True

        cluster.network.interceptor = delay_heartbeats
        before = cluster.replicas[1].daemon.views_installed
        cluster.run_for(2.0)
        # No spurious membership churn from the mild delay.
        assert cluster.replicas[1].daemon.views_installed == before
        client = cluster.client(1)
        client.submit(("SET", "fine", 1))
        cluster.run_for(1.0)
        assert client.completed == 1
