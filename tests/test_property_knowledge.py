"""Property-based tests of ComputeKnowledge (A.7).

Whatever the collection of state messages, the computation must be
deterministic, symmetric (every member computes the same result), and
conservative about vulnerability.
"""

from hypothesis import given, settings, strategies as st

from repro.core import (EngineStateMsg, PrimComponent, Vulnerable,
                        compute_knowledge, plan_retransmission)
from repro.db import ActionId
from repro.gcs import ViewId

SERVERS = [1, 2, 3, 4, 5]

action_ids = st.tuples(st.sampled_from([6, 7, 8]),
                       st.integers(1, 4)).map(lambda t: ActionId(*t))

prim_components = st.builds(
    PrimComponent,
    prim_index=st.integers(0, 3),
    attempt_index=st.integers(0, 3),
    servers=st.sets(st.sampled_from(SERVERS), min_size=1).map(
        lambda s: tuple(sorted(s))))


@st.composite
def vulnerables(draw):
    record = Vulnerable()
    if draw(st.booleans()):
        members = tuple(sorted(draw(st.sets(st.sampled_from(SERVERS),
                                            min_size=1, max_size=3))))
        record.make_valid(draw(st.integers(0, 2)),
                          draw(st.integers(0, 2)), members,
                          self_id=members[0])
        for member in members:
            if draw(st.booleans()):
                record.bits[member] = True
    return record


@st.composite
def reports(draw):
    servers = sorted(draw(st.sets(st.sampled_from(SERVERS), min_size=1,
                                  max_size=4)))
    out = {}
    for server in servers:
        yellow_valid = draw(st.booleans())
        out[server] = EngineStateMsg(
            server_id=server, conf_id=ViewId(1, servers[0]),
            green_count=draw(st.integers(0, 10)),
            red_cut={c: draw(st.integers(0, 5)) for c in SERVERS},
            green_lines={},
            attempt_index=draw(st.integers(0, 3)),
            prim_component=draw(prim_components),
            vulnerable=draw(vulnerables()),
            yellow_valid=yellow_valid,
            yellow_ids=tuple(draw(st.lists(action_ids, max_size=4,
                                           unique=True)))
            if yellow_valid else ())
    return out


@settings(max_examples=120, deadline=None)
@given(reports())
def test_knowledge_is_deterministic_and_symmetric(state_msgs):
    a = compute_knowledge(state_msgs)
    b = compute_knowledge(dict(reversed(list(state_msgs.items()))))
    assert a.prim_component.key == b.prim_component.key
    assert a.updated_group == b.updated_group
    assert a.yellow.status == b.yellow.status
    assert a.yellow.set == b.yellow.set
    assert a.vulnerable_resolution.keys() == b.vulnerable_resolution.keys()
    for server in a.vulnerable_resolution:
        assert a.vulnerable_resolution[server][0] == \
            b.vulnerable_resolution[server][0]


@settings(max_examples=120, deadline=None)
@given(reports())
def test_knowledge_invariants(state_msgs):
    knowledge = compute_knowledge(state_msgs)
    best = max((r.prim_component.key, r.prim_component.servers)
               for r in state_msgs.values())
    # The adopted prim component is the maximal reported one (member
    # set breaks adversarial ties deterministically).
    assert (knowledge.prim_component.key,
            knowledge.prim_component.servers) == best
    # updated_group is exactly the reporters of that component.
    assert set(knowledge.updated_group) == {
        s for s, r in state_msgs.items()
        if (r.prim_component.key, r.prim_component.servers) == best}
    # valid_group within updated_group; yellow valid iff it's nonempty.
    assert set(knowledge.valid_group) <= set(knowledge.updated_group)
    assert knowledge.yellow.is_valid == bool(knowledge.valid_group)
    # Yellow is the intersection of the valid group's sets, in a valid
    # member's order.
    if knowledge.yellow.is_valid:
        for server in knowledge.valid_group:
            assert set(knowledge.yellow.set) <= \
                set(state_msgs[server].yellow_ids)
    # Resolution covers exactly the reporters that arrived vulnerable.
    assert set(knowledge.vulnerable_resolution) == {
        s for s, r in state_msgs.items() if r.vulnerable.is_valid}


@settings(max_examples=120, deadline=None)
@given(reports())
def test_vulnerability_resolution_is_conservative(state_msgs):
    """A record may only be resolved (invalidated) when the evidence
    licenses it: a mismatched/absent... — concretely, if every member
    of the attempt is absent from the round and the reporter is in the
    maximal prim component, the record must STAY valid (nothing was
    learned about the attempt)."""
    knowledge = compute_knowledge(state_msgs)
    prim_servers = set(knowledge.prim_component.servers)
    for server, (valid, bits) in knowledge.vulnerable_resolution.items():
        vuln = state_msgs[server].vulnerable
        others = [m for m in vuln.set if m != server]
        all_absent = all(m not in state_msgs for m in others)
        unresolved_bits = not all(
            vuln.bits.get(m, False) or m == server or m in state_msgs
            for m in vuln.set)
        if (server in prim_servers and others and all_absent
                and unresolved_bits):
            assert valid, (
                f"{server} resolved its vulnerability with no evidence")


@settings(max_examples=100, deadline=None)
@given(reports())
def test_retransmission_plan_covers_all_knowledge(state_msgs):
    plan = plan_retransmission(state_msgs)
    greens = [r.green_count for r in state_msgs.values()]
    assert plan.green_target == max(greens)
    assert plan.green_start == min(greens)
    assert plan.green_holder in state_msgs
    assert state_msgs[plan.green_holder].green_count == plan.green_target
    for creator, target in plan.red_targets.items():
        holder = plan.red_holders[creator]
        assert state_msgs[holder].red_cut.get(creator, 0) == target
        assert plan.red_floor[creator] <= target
