"""Unit tests for the database substrate."""

import pytest

from repro.db import (Action, ActionId, ActionType, Database, DirtyView,
                      SnapshotReceiver, SnapshotSender, StatementError,
                      execute_query, execute_statement, execute_update,
                      join_action, leave_action)


def make_action(server=1, index=1, update=None, query=None):
    return Action(action_id=ActionId(server, index), update=update,
                  query=query)


class TestStatements:
    def test_set_get(self):
        state = {}
        assert execute_statement(state, ("SET", "k", 5)) == 5
        assert execute_statement(state, ("GET", "k")) == 5

    def test_get_missing_is_none(self):
        assert execute_statement({}, ("GET", "nope")) is None

    def test_inc_defaults_to_zero(self):
        state = {}
        assert execute_statement(state, ("INC", "n", 3)) == 3
        assert execute_statement(state, ("INC", "n", -5)) == -2

    def test_del(self):
        state = {"k": 1}
        assert execute_statement(state, ("DEL", "k")) == 1
        assert "k" not in state
        assert execute_statement(state, ("DEL", "k")) is None

    def test_append(self):
        state = {}
        execute_statement(state, ("APPEND", "l", "a"))
        assert execute_statement(state, ("APPEND", "l", "b")) == ["a", "b"]

    def test_append_type_error(self):
        with pytest.raises(StatementError):
            execute_statement({"l": 5}, ("APPEND", "l", "x"))

    def test_cas_success_and_failure(self):
        state = {"k": 1}
        assert execute_statement(state, ("CAS", "k", 1, 2)) is True
        assert state["k"] == 2
        assert execute_statement(state, ("CAS", "k", 1, 3)) is False
        assert state["k"] == 2

    def test_call_procedure(self):
        def double(state, args):
            state[args] = state.get(args, 0) * 2
            return state[args]
        state = {"x": 4}
        result = execute_statement(state, ("CALL", "double", "x"),
                                   {"double": double})
        assert result == 8

    def test_call_unknown_procedure(self):
        with pytest.raises(StatementError):
            execute_statement({}, ("CALL", "nope", ()))

    def test_unknown_op(self):
        with pytest.raises(StatementError):
            execute_statement({}, ("FROB", "k"))

    def test_empty_statement(self):
        with pytest.raises(StatementError):
            execute_statement({}, ())

    def test_execute_update_multi(self):
        state = {}
        results = execute_update(state, (("SET", "a", 1), ("INC", "a", 2)))
        assert results == [1, 3]

    def test_execute_update_single(self):
        state = {}
        assert execute_update(state, ("SET", "a", 1)) == [1]

    def test_query_does_not_mutate(self):
        state = {"k": 1}
        execute_query(state, ("SET", "k", 99))
        assert state["k"] == 1


class TestDatabase:
    def test_apply_updates_and_logs(self):
        db = Database()
        action = make_action(update=("SET", "k", 1))
        result = db.apply(action)
        assert result == [1]
        assert db.state == {"k": 1}
        assert db.applied_count == 1
        assert db.applied_log == [action.action_id]
        assert db.last_applied == action.action_id

    def test_apply_join_leave_take_slots_without_state_change(self):
        db = Database()
        db.apply(join_action(ActionId(1, 1), 9))
        db.apply(leave_action(ActionId(1, 2), 9))
        assert db.state == {}
        assert db.applied_count == 2

    def test_query(self):
        db = Database()
        db.apply(make_action(update=("SET", "k", "v")))
        assert db.query(("GET", "k")) == "v"

    def test_snapshot_restore_roundtrip(self):
        db = Database()
        for i in range(5):
            db.apply(make_action(index=i + 1,
                                 update=("SET", f"k{i}", i)))
        other = Database()
        other.restore(db.snapshot())
        assert other.state == db.state
        assert other.applied_log == db.applied_log
        assert other.digest() == db.digest()

    def test_snapshot_is_decoupled(self):
        db = Database()
        db.apply(make_action(update=("SET", "k", [1])))
        snap = db.snapshot()
        db.apply(make_action(index=2, update=("APPEND", "k", 2)))
        assert snap["state"] == {"k": [1]}

    def test_digest_differs_on_content(self):
        a, b = Database(), Database()
        a.apply(make_action(update=("SET", "k", 1)))
        b.apply(make_action(update=("SET", "k", 2)))
        assert a.digest() != b.digest()

    def test_procedures_registry(self):
        db = Database()
        db.register_procedure("noop", lambda s, a: "ok")
        action = make_action(update=("CALL", "noop", None))
        assert db.apply(action) == ["ok"]


class TestDirtyView:
    def test_dirty_query_includes_pending(self):
        db = Database()
        db.apply(make_action(update=("SET", "k", "green")))
        view = DirtyView(db)
        pending = [make_action(server=2, update=("SET", "k", "red"))]
        assert view.query(("GET", "k"), pending) == "red"
        assert db.state["k"] == "green"

    def test_dirty_query_incremental_suffix(self):
        db = Database()
        view = DirtyView(db)
        pending = [make_action(server=2, index=1, update=("INC", "n", 1))]
        assert view.query(("GET", "n"), pending) == 1
        pending.append(make_action(server=2, index=2,
                                   update=("INC", "n", 1)))
        assert view.query(("GET", "n"), pending) == 2

    def test_invalidate_rebuilds_from_green(self):
        db = Database()
        view = DirtyView(db)
        assert view.query(("GET", "k"), []) is None
        db.apply(make_action(update=("SET", "k", 1)))
        view.invalidate()
        assert view.query(("GET", "k"), []) == 1

    def test_shrunk_suffix_rebuilds(self):
        db = Database()
        view = DirtyView(db)
        a1 = make_action(server=2, index=1, update=("INC", "n", 1))
        a2 = make_action(server=2, index=2, update=("INC", "n", 1))
        assert view.query(("GET", "n"), [a1, a2]) == 2
        assert view.query(("GET", "n"), [a2]) == 1


class TestSnapshotTransfer:
    def make_snapshot(self, items=200):
        db = Database()
        for i in range(items):
            db.apply(make_action(index=i + 1, update=("SET", f"k{i}", i)))
        return db.snapshot()

    def test_chunked_roundtrip(self):
        snapshot = self.make_snapshot()
        sender = SnapshotSender("t1", snapshot, chunk_items=16)
        receiver = SnapshotReceiver()
        receiver.begin("t1", sender.header)
        for seq in range(sender.total):
            receiver.accept(sender.chunk(seq))
        assert receiver.complete
        assembled = receiver.assemble()
        assert assembled["state"] == snapshot["state"]
        assert assembled["applied_count"] == snapshot["applied_count"]

    def test_next_needed_tracks_progress(self):
        snapshot = self.make_snapshot()
        sender = SnapshotSender("t1", snapshot, chunk_items=16)
        receiver = SnapshotReceiver()
        receiver.begin("t1", sender.header)
        receiver.accept(sender.chunk(0))
        receiver.accept(sender.chunk(2))
        assert receiver.next_needed == 1
        receiver.accept(sender.chunk(1))
        assert receiver.next_needed == 3

    def test_resume_from_different_sender_same_transfer(self):
        snapshot = self.make_snapshot()
        first = SnapshotSender("t1", snapshot, chunk_items=16)
        receiver = SnapshotReceiver()
        receiver.begin("t1", first.header)
        for seq in range(3):
            receiver.accept(first.chunk(seq))
        # A different member resumes the same transfer id.
        second = SnapshotSender("t1", snapshot, chunk_items=16)
        for seq in range(receiver.next_needed, second.total):
            receiver.accept(second.chunk(seq))
        assert receiver.complete

    def test_new_transfer_supersedes_old(self):
        snap_a = self.make_snapshot(50)
        snap_b = self.make_snapshot(60)
        sender_a = SnapshotSender("t1", snap_a, chunk_items=16)
        sender_b = SnapshotSender("t2", snap_b, chunk_items=16)
        receiver = SnapshotReceiver()
        receiver.begin("t1", sender_a.header)
        receiver.accept(sender_a.chunk(0))
        receiver.begin("t2", sender_b.header)
        for seq in range(sender_b.total):
            receiver.accept(sender_b.chunk(seq))
        assert receiver.complete
        assert receiver.assemble()["state"] == snap_b["state"]

    def test_incomplete_assemble_rejected(self):
        snapshot = self.make_snapshot()
        sender = SnapshotSender("t1", snapshot, chunk_items=16)
        receiver = SnapshotReceiver()
        receiver.begin("t1", sender.header)
        receiver.accept(sender.chunk(0))
        with pytest.raises(ValueError):
            receiver.assemble()

    def test_empty_database_single_chunk(self):
        sender = SnapshotSender("t1", Database().snapshot())
        assert sender.total == 1
        assert sender.chunk(0).is_last


class TestActionTypes:
    def test_action_id_ordering(self):
        assert ActionId(1, 2) < ActionId(2, 1)
        assert ActionId(1, 1) < ActionId(1, 2)

    def test_join_leave_builders(self):
        join = join_action(ActionId(1, 1), 7)
        assert join.type is ActionType.PERSISTENT_JOIN
        assert join.join_id == 7
        leave = leave_action(ActionId(1, 2), 7)
        assert leave.type is ActionType.PERSISTENT_LEAVE
        assert leave.leave_id == 7

    def test_query_only_flag(self):
        assert make_action(query=("GET", "k")).is_query_only
        assert not make_action(update=("SET", "k", 1)).is_query_only
