"""Property-based tests of the Section 6 relaxed-semantics building
blocks: order-insensitivity of LWW, commutativity of INC, and the
dirty view as a pure function of (green state, red suffix)."""

import random

from hypothesis import given, settings, strategies as st

from repro.db import Action, ActionId, Database, DirtyView
from repro.db.sql import execute_update
from repro.semantics.service import _certify, _lww_set

keys = st.sampled_from(["a", "b", "c"])


@settings(max_examples=80, deadline=None)
@given(st.lists(st.tuples(keys, st.text(max_size=3),
                          st.integers(0, 100)),
                min_size=1, max_size=20),
       st.randoms(use_true_random=False))
def test_lww_is_order_insensitive(writes, rng):
    """Applying the same timestamped writes in any two orders yields
    the same final registers — the property that lets timestamp
    updates skip global ordering (Section 6)."""
    shuffled = list(writes)
    rng.shuffle(shuffled)
    state_a, state_b = {}, {}
    for key, value, ts in writes:
        _lww_set(state_a, (key, value, ts))
    for key, value, ts in shuffled:
        _lww_set(state_b, (key, value, ts))
    # Ties on timestamps: last writer wins per order, so compare only
    # when timestamps are unique per key.
    per_key = {}
    unique = True
    for key, _value, ts in writes:
        if ts in per_key.setdefault(key, set()):
            unique = False
        per_key[key].add(ts)
    if unique:
        assert state_a == state_b


@settings(max_examples=80, deadline=None)
@given(st.lists(st.tuples(keys, st.integers(-20, 20)), min_size=1,
                max_size=20),
       st.randoms(use_true_random=False))
def test_inc_is_order_insensitive(increments, rng):
    shuffled = list(increments)
    rng.shuffle(shuffled)
    state_a, state_b = {}, {}
    for key, delta in increments:
        execute_update(state_a, ("INC", key, delta))
    for key, delta in shuffled:
        execute_update(state_b, ("INC", key, delta))
    assert state_a == state_b


@settings(max_examples=60, deadline=None)
@given(st.dictionaries(keys, st.integers(0, 5), max_size=3),
       st.lists(st.tuples(keys, st.integers(0, 5)), max_size=6))
def test_certify_applies_iff_read_set_matches(initial, updates):
    state = dict(initial)
    read_set = tuple(sorted(initial.items()))
    applied = _certify(state, (read_set, tuple(updates)))
    assert applied  # read set taken from the very state: must commit
    final = {}
    for key, value in updates:
        final[key] = value  # duplicate keys: last write wins
    for key, value in final.items():
        assert state[key] == value
    # Now perturb one read value: certification must refuse and leave
    # the state untouched.
    if read_set:
        state2 = dict(initial)
        key0, value0 = read_set[0]
        bad = ((key0, value0 + 1),) + read_set[1:]
        untouched = dict(state2)
        assert not _certify(state2, (bad, tuple(updates)))
        assert state2 == untouched


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(keys, st.integers(0, 9)), max_size=8),
       st.lists(st.tuples(keys, st.integers(10, 19)), max_size=8))
def test_dirty_view_is_green_plus_suffix(green_writes, red_writes):
    database = Database()
    for i, (key, value) in enumerate(green_writes, start=1):
        database.apply(Action(action_id=ActionId(1, i),
                              update=("SET", key, value)))
    pending = [Action(action_id=ActionId(2, i),
                      update=("SET", key, value))
               for i, (key, value) in enumerate(red_writes, start=1)]
    view = DirtyView(database)
    expected = dict(database.state)
    for key, value in red_writes:
        expected[key] = value
    for key in ("a", "b", "c"):
        assert view.query(("GET", key), pending) == expected.get(key)
    # The green database itself is untouched by dirty reads.
    for i, (key, value) in enumerate(green_writes):
        pass
    assert all(database.state.get(k) is not None
               for k, _v in green_writes)
