"""Property-based tests of the Extended Virtual Synchrony guarantees.

These drive the GCS substrate directly (no replication engine) through
random partition/merge schedules and check the delivery guarantees of
Section 4.1 that the replication algorithm's correctness rests on:

* relative order of commonly delivered messages is identical
  everywhere;
* a SAFE message delivered in a *regular* configuration at any member
  is delivered at every member of that configuration (case 1 vs case 3
  is impossible), at worst in the transitional configuration;
* virtual synchrony — members installing the same next view from the
  same previous view delivered the same message set in it.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.gcs import (Configuration, GcsDaemon, GcsListener, GcsSettings,
                       ServiceLevel)
from repro.net import Network, Topology
from repro.sim import RandomStreams, Simulator

NODES = [1, 2, 3, 4]


class EvsRecorder(GcsListener):
    """Records deliveries with the view they happened in."""

    def __init__(self, node):
        self.node = node
        self.current_view = None
        self.deliveries = []     # (payload, view_id, in_transitional)
        self.view_sets = {}      # view_id -> set of payloads delivered
        self.views = []

    def on_regular_conf(self, conf):
        self.current_view = conf
        self.views.append(conf)

    def on_message(self, payload, origin, in_transitional, service):
        view_id = (self.current_view.view_id
                   if self.current_view is not None else None)
        self.deliveries.append((payload, view_id, in_transitional))
        if view_id is not None:
            self.view_sets.setdefault(view_id, set()).add(payload)

    def order(self):
        return [payload for payload, _v, _t in self.deliveries]


def build(seed=0):
    sim = Simulator()
    topology = Topology(NODES)
    network = Network(sim, topology, rng=RandomStreams(seed).stream("n"))
    settings_ = GcsSettings(heartbeat_interval=0.02, failure_timeout=0.08,
                            gather_settle=0.02, phase_timeout=0.15)
    daemons, recorders = {}, {}
    for node in NODES:
        daemon = GcsDaemon(sim, node, network, set(NODES), settings_)
        recorder = EvsRecorder(node)
        daemon.listener = recorder
        daemon.start()
        daemons[node] = daemon
        recorders[node] = recorder
    for node in NODES:
        daemons[node].join()
    sim.run(until=1.0)
    return sim, topology, daemons, recorders


evs_step = st.one_of(
    st.tuples(st.just("send"), st.sampled_from(NODES)),
    st.tuples(st.just("partition"),
              st.permutations(NODES).map(
                  lambda order: [sorted(order[:2]), sorted(order[2:])])),
    st.tuples(st.just("heal"), st.none()),
    st.tuples(st.just("run"), st.sampled_from([0.1, 0.4])),
)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(evs_step, min_size=2, max_size=14))
def test_evs_guarantees_under_partition_schedules(scenario):
    sim, topology, daemons, recorders = build()
    counter = [0]
    for kind, arg in scenario:
        if kind == "send":
            daemon = daemons[arg]
            if daemon.joined:
                counter[0] += 1
                payload = (arg, counter[0])
                try:
                    daemon.multicast(payload, ServiceLevel.SAFE)
                except RuntimeError:
                    pass
            sim.run(until=sim.now + 0.05)
        elif kind == "partition":
            topology.partition(arg)
            sim.run(until=sim.now + 0.4)
        elif kind == "heal":
            topology.heal()
            sim.run(until=sim.now + 0.4)
        elif kind == "run":
            sim.run(until=sim.now + arg)
    topology.heal()
    sim.run(until=sim.now + 1.0)

    # 1. Common relative order everywhere.
    orders = {n: recorders[n].order() for n in NODES}
    for a in NODES:
        for b in NODES:
            if a >= b:
                continue
            set_b = set(orders[b])
            common_in_a = [m for m in orders[a] if m in set_b]
            set_a = set(orders[a])
            common_in_b = [m for m in orders[b] if m in set_a]
            assert common_in_a == common_in_b, (a, b)

    # 2. Safe delivery: delivered-in-regular at one member => delivered
    #    (somehow) at every member of that regular configuration.
    view_members = {}
    for node in NODES:
        for conf in recorders[node].views:
            view_members[conf.view_id] = conf.members
    for node in NODES:
        for payload, view_id, in_transitional in \
                recorders[node].deliveries:
            if in_transitional or view_id is None:
                continue
            for member in view_members[view_id]:
                delivered = set(recorders[member].order())
                assert payload in delivered, (
                    f"{payload} safe-delivered in regular conf "
                    f"{view_id} at {node} but missing at {member}")

    # 3. Virtual synchrony: same old view + same new view => identical
    #    delivered sets in the old view.
    transitions = {}
    for node in NODES:
        views = recorders[node].views
        for previous, following in zip(views, views[1:]):
            key = (previous.view_id, following.view_id)
            delivered = frozenset(
                recorders[node].view_sets.get(previous.view_id, set()))
            transitions.setdefault(key, {})[node] = delivered
    for key, per_node in transitions.items():
        sets = set(per_node.values())
        assert len(sets) == 1, (
            f"virtual synchrony violated across {key}: {per_node}")


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=0, max_value=10000))
def test_final_views_converge_after_heal(seed):
    """Whatever the interleaving, after healing every daemon ends in
    one shared view containing everyone."""
    sim, topology, daemons, recorders = build(seed=seed % 7)
    rng = RandomStreams(seed).stream("schedule")
    for _ in range(4):
        groups = [[], []]
        for node in NODES:
            groups[rng.randint(0, 1)].append(node)
        if all(groups):
            topology.partition(groups)
        if daemons[1].joined and daemons[1].state == "operational":
            try:
                daemons[1].multicast(("x", sim.now))
            except RuntimeError:
                pass
        sim.run(until=sim.now + rng.uniform(0.1, 0.5))
        topology.heal()
        sim.run(until=sim.now + 0.5)
    sim.run(until=sim.now + 1.0)
    views = {daemons[n].view.view_id for n in NODES}
    assert len(views) == 1
    assert daemons[1].view.members == frozenset(NODES)
