"""Determinism: identical seeds replay identical histories.

The whole reproduction rests on this — property tests shrink, bug
reports replay, and benchmark numbers are exact.  These tests run the
same nontrivial scenario twice from scratch and demand bit-identical
outcomes, then show that changing only the seed changes the fine
timing but not the invariants.
"""

import pytest

from conftest import make_cluster


def run_scenario(seed):
    cluster = make_cluster(4, seed=seed)
    cluster.start_all(settle=1.0)
    clients = {n: cluster.client(n) for n in (1, 2, 3, 4)}
    for i in range(5):
        for client in clients.values():
            client.submit(("APPEND", "log", (client.client_id, i)))
    cluster.run_for(1.0)
    cluster.partition([1, 2], [3, 4])
    cluster.run_for(1.0)
    clients[1].submit(("SET", "left", 1))
    clients[3].submit(("SET", "right", 1))
    cluster.run_for(0.5)
    cluster.crash(2)
    cluster.run_for(0.8)
    cluster.recover(2)
    cluster.run_for(1.0)
    cluster.heal()
    cluster.run_for(3.0)
    cluster.assert_converged()
    digest = cluster.replicas[1].database.digest()
    log = list(cluster.replicas[1].database.applied_log)
    events = cluster.sim.events_processed
    now = cluster.sim.now
    completions = {n: c.completed for n, c in clients.items()}
    latencies = [round(l, 12) for c in clients.values()
                 for l in c.latencies]
    return digest, log, events, now, completions, latencies


def test_same_seed_replays_bit_identically():
    first = run_scenario(seed=123)
    second = run_scenario(seed=123)
    assert first[0] == second[0]          # database digest
    assert first[1] == second[1]          # full applied log
    assert first[2] == second[2]          # event count
    assert first[3] == second[3]          # final virtual time
    assert first[4] == second[4]          # per-client completions
    assert first[5] == second[5]          # every latency sample


def test_different_seed_same_invariants():
    base = run_scenario(seed=123)
    other = run_scenario(seed=456)
    # The jitter differs, so fine timing differs ...
    assert base[5] != other[5] or base[2] != other[2]
    # ... but the committed set is the same workload either way.
    assert sorted(map(str, base[1])) == sorted(map(str, other[1]))


def test_client_ids_do_not_leak_between_runs():
    """Global client-id counters must not change replay outcomes."""
    runs = [run_scenario(seed=7) for _ in range(2)]
    assert runs[0][0] == runs[1][0]
