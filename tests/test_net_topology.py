"""Unit tests for the partitionable topology."""

import pytest

from repro.net import Topology, TopologyError


def test_initially_one_component_all_alive():
    topo = Topology([1, 2, 3])
    assert topo.reachable(1, 2)
    assert topo.reachable(2, 3)
    assert topo.components() == [frozenset({1, 2, 3})]


def test_empty_topology_rejected():
    with pytest.raises(TopologyError):
        Topology([])


def test_partition_splits_reachability():
    topo = Topology([1, 2, 3, 4])
    topo.partition([[1, 2], [3, 4]])
    assert topo.reachable(1, 2)
    assert topo.reachable(3, 4)
    assert not topo.reachable(1, 3)
    assert not topo.reachable(2, 4)
    assert sorted(map(sorted, topo.components())) == [[1, 2], [3, 4]]


def test_partition_must_cover_all_nodes():
    topo = Topology([1, 2, 3])
    with pytest.raises(TopologyError):
        topo.partition([[1, 2]])


def test_partition_rejects_duplicates():
    topo = Topology([1, 2, 3])
    with pytest.raises(TopologyError):
        topo.partition([[1, 2], [2, 3]])


def test_partition_rejects_unknown_node():
    topo = Topology([1, 2])
    with pytest.raises(TopologyError):
        topo.partition([[1, 2, 9]])


def test_heal_reunites():
    topo = Topology([1, 2, 3])
    topo.partition([[1], [2, 3]])
    topo.heal()
    assert topo.reachable(1, 3)
    assert len(topo.components()) == 1


def test_merge_selected_groups():
    topo = Topology([1, 2, 3, 4])
    topo.partition([[1], [2], [3, 4]])
    topo.merge([1], [2])
    assert topo.reachable(1, 2)
    assert not topo.reachable(1, 3)


def test_crash_and_recover():
    topo = Topology([1, 2])
    topo.crash(1)
    assert not topo.is_alive(1)
    assert not topo.reachable(1, 2)
    assert not topo.reachable(1, 1)
    topo.recover(1)
    assert topo.reachable(1, 2)


def test_crashed_node_excluded_from_components():
    topo = Topology([1, 2, 3])
    topo.crash(2)
    assert topo.components() == [frozenset({1, 3})]
    assert topo.component_members(1) == frozenset({1, 3})


def test_crash_unknown_node_rejected():
    topo = Topology([1])
    with pytest.raises(TopologyError):
        topo.crash(9)


def test_isolate():
    topo = Topology([1, 2, 3])
    topo.isolate(2)
    assert not topo.reachable(2, 1)
    assert topo.reachable(1, 3)


def test_add_node_joins_component():
    topo = Topology([1, 2])
    topo.partition([[1], [2]])
    topo.add_node(3, component_like=2)
    assert topo.reachable(2, 3)
    assert not topo.reachable(1, 3)


def test_add_node_fresh_component():
    topo = Topology([1])
    topo.add_node(2)
    assert not topo.reachable(1, 2)


def test_add_duplicate_node_rejected():
    topo = Topology([1])
    with pytest.raises(TopologyError):
        topo.add_node(1)


def test_listeners_notified_on_changes():
    topo = Topology([1, 2])
    events = []
    topo.subscribe(lambda: events.append(1))
    topo.partition([[1], [2]])
    topo.heal()
    topo.crash(1)
    topo.recover(1)
    assert len(events) == 4


def test_crash_idempotent_no_duplicate_notify():
    topo = Topology([1, 2])
    events = []
    topo.subscribe(lambda: events.append(1))
    topo.crash(1)
    topo.crash(1)
    assert len(events) == 1
