"""Tests for the benchmark harness itself (workload, metrics, tables,
runner) on tiny fast systems."""

import math

import pytest

from repro.baselines import EngineSystem
from repro.bench import (ClosedLoopClient, format_table, latency_table,
                         paper_vs_measured, per_action_cost_table,
                         percentile, run_closed_loop, run_latency_probe,
                         spread_clients, summarize, sweep_clients,
                         throughput_series_table)
from repro.bench.metrics import RunResult
from repro.gcs import GcsSettings
from repro.storage import DiskProfile


def tiny_engine():
    return EngineSystem(
        3, gcs_settings=GcsSettings(heartbeat_interval=0.02,
                                    failure_timeout=0.08,
                                    gather_settle=0.02,
                                    phase_timeout=0.15),
        disk_profile=DiskProfile(forced_write_latency=0.001))


class TestMetrics:
    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.5) == 2.0
        assert percentile(values, 0.99) == 4.0
        assert percentile(values, 0.0) == 1.0
        assert percentile([], 0.5) == 0.0

    def test_summarize(self):
        result = summarize("sys", 2, 10.0, [0.01, 0.02, 0.03],
                           {"datagrams": 30})
        assert result.throughput == pytest.approx(0.3)
        assert result.mean_latency == pytest.approx(0.02)
        assert result.mean_latency_ms == pytest.approx(20.0)
        assert result.per_action("datagrams") == pytest.approx(10.0)

    def test_per_action_with_zero_actions_is_nan(self):
        result = summarize("sys", 1, 10.0, [], {"x": 5})
        assert math.isnan(result.per_action("x"))


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_throughput_series_table(self):
        series = {
            "x": [RunResult("x", 1, 1.0, 10, 10.0, 0, 0, 0)],
            "y": [RunResult("y", 1, 1.0, 20, 20.0, 0, 0, 0),
                  RunResult("y", 2, 1.0, 30, 30.0, 0, 0, 0)],
        }
        text = throughput_series_table(series)
        assert "clients" in text
        assert "-" in text.splitlines()[-1]  # x has no 2-client point

    def test_latency_and_cost_tables(self):
        results = [RunResult("sys", 1, 1.0, 5, 5.0, 0.010, 0.010,
                             0.012, {"forced_writes": 10})]
        assert "10.00" in latency_table(results)
        assert "2.00" in per_action_cost_table(results,
                                               ["forced_writes"])

    def test_paper_vs_measured(self):
        text = paper_vs_measured([["latency", "11.4", "12.5", "ok"]])
        assert "verdict" in text and "11.4" in text


class TestWorkload:
    def test_spread_clients_round_robin(self):
        system = tiny_engine()
        clients = spread_clients(system, 5)
        assert [c.node for c in clients] == [1, 2, 3, 1, 2]

    def test_closed_loop_submits_after_completion(self):
        system = tiny_engine()
        system.start(settle=1.0)
        client = ClosedLoopClient(system, 1, 1)
        client.start()
        system.sim.run(until=system.sim.now + 0.5)
        client.stop()
        assert client.completed > 3
        # Closed loop: at most one action outstanding.
        assert client.submitted - client.completed <= 1


class TestRunner:
    def test_run_closed_loop_measures_window_only(self):
        result = run_closed_loop(tiny_engine, clients=2, duration=1.0,
                                 warmup=0.5, settle=1.0)
        assert result.clients == 2
        assert result.actions_completed > 0
        assert result.throughput == pytest.approx(
            result.actions_completed / 1.0)
        assert 0 < result.mean_latency < 0.05

    def test_latency_probe_stops_at_quota(self):
        result = run_latency_probe(tiny_engine, actions=20, settle=1.0)
        assert result.actions_completed == 20
        assert result.counters["greens"] >= 20

    def test_sweep_clients_returns_one_result_per_count(self):
        results = sweep_clients(tiny_engine, [1, 2], duration=0.5,
                                warmup=0.2)
        assert [r.clients for r in results] == [1, 2]
        assert results[1].throughput > results[0].throughput
