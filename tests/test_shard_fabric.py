"""Shard fabric: convergence, cross-shard commit/abort, recovery.

The fabric's two core claims, each pinned here:

* **A one-shard fabric is the old system.**  ``ShardFabric(1, n)``
  must be *bit-identical* to a standalone ``ReplicaCluster(n)`` under
  the same workload — same simulated event count, same digests — so
  sharding costs nothing until a second shard exists.
* **Cross-shard transactions are atomic.**  A transaction either
  applies at every participant shard or at none, through coordinator
  crashes, a partition during the commit window, and the recovery
  sweep racing the crashed coordinator's decision.
"""

import pytest

from repro.core import ReplicaCluster
from repro.gcs import GcsSettings
from repro.shard import ShardFabric, global_id, shard_server_ids
from repro.storage import DiskProfile

FAST = GcsSettings(heartbeat_interval=0.02, failure_timeout=0.08,
                   gather_settle=0.02, phase_timeout=0.15)
DISK = DiskProfile(forced_write_latency=0.001)


def make_fabric(num_shards=2, **kwargs):
    kwargs.setdefault("gcs_settings", FAST)
    kwargs.setdefault("disk_profile", DISK)
    fabric = ShardFabric(num_shards=num_shards, replicas_per_shard=3,
                         seed=0, **kwargs)
    fabric.start_all(settle=1.5)
    return fabric


def cross_shard_keys(fabric, count=1):
    """``count`` deterministic (shard-0 key, shard-1 key) pairs."""
    keys = {0: [], 1: []}
    probe = 0
    while min(len(keys[0]), len(keys[1])) < count:
        key = f"xk{probe}"
        keys[fabric.router.shard_for_key(key)].append(key)
        probe += 1
    return list(zip(keys[0], keys[1]))


# ----------------------------------------------------------------------
# single-shard bit-identity
# ----------------------------------------------------------------------
def test_single_shard_fabric_is_bit_identical_to_replica_cluster():
    def run_fabric():
        fabric = make_fabric(num_shards=1)
        for i in range(10):
            fabric.submit_local(0, ("SET", f"k{i}", i))
        fabric.run_for(3.0)
        fabric.assert_converged()
        return (fabric.sim.events_processed, fabric.sim.now,
                fabric.digests()[0])

    def run_cluster():
        cluster = ReplicaCluster(n=3, seed=0, gcs_settings=FAST,
                                 disk_profile=DISK)
        cluster.start_all(settle=1.5)
        for i in range(10):
            cluster.replicas[1].submit(("SET", f"k{i}", i))
        cluster.run_for(3.0)
        cluster.assert_converged()
        return (cluster.sim.events_processed, cluster.sim.now,
                cluster.replicas[1].database.digest())

    assert run_fabric() == run_cluster()


# ----------------------------------------------------------------------
# routed commits, healthy fabric
# ----------------------------------------------------------------------
def test_local_and_cross_shard_transactions_commit():
    fabric = make_fabric()
    outcomes = []
    fabric.submit(("SET", "b", 1), lambda t, o: outcomes.append(o))
    fabric.submit(("SET", "a", 2), lambda t, o: outcomes.append(o))
    (k0, k1), = cross_shard_keys(fabric)
    fabric.submit([["SET", k0, 10], ["SET", k1, 20]],
                  lambda t, o: outcomes.append(o))
    fabric.run_for(8.0)

    assert outcomes == ["commit"] * 3
    assert fabric.coordinator.local_txns == 2
    assert fabric.coordinator.commits == 1
    database = fabric.sharded_database()
    assert database.get("b") == 1 and database.get("a") == 2
    assert database.get(k0) == 10 and database.get(k1) == 20
    assert fabric.staged() == {}
    fabric.assert_converged()
    # Every replica of a shard reports the same digest; the two shards
    # hold disjoint state.
    digests = fabric.digests()
    assert len(digests) == 2 and digests[0] != digests[1]


def test_routed_reads_see_the_union_keyspace():
    fabric = make_fabric()
    fabric.submit(("SET", "a", "ess"))
    fabric.submit(("SET", "b", "zero"))
    fabric.run_for(5.0)
    # "a" lives in shard 1, "b" in shard 0 (pinned in the router
    # tests); the query surface hides that.
    assert fabric.query(("GET", "a")) == "ess"
    assert fabric.query(("GET", "b")) == "zero"


# ----------------------------------------------------------------------
# aborts: no quorum at a participant
# ----------------------------------------------------------------------
def test_cross_shard_abort_when_participant_has_no_quorum():
    fabric = make_fabric(prepare_timeout=1.0)
    nodes1 = shard_server_ids(1, 3)
    fabric.partition([nodes1[0]], [nodes1[1]], [nodes1[2]])
    fabric.run_for(1.0)

    outcomes = []
    (k0, k1), = cross_shard_keys(fabric)
    fabric.submit([["SET", k0, 1], ["SET", k1, 2]],
                  lambda t, o: outcomes.append(o))
    fabric.run_for(4.0)
    # Decided (abort) in shard 0's total order; the outcome callback
    # waits for the finish records, which drain only after the heal.
    assert outcomes == []
    fabric.heal()
    fabric.run_for(6.0)

    assert outcomes == ["abort"]
    assert fabric.coordinator.aborts == 1
    database = fabric.sharded_database()
    assert k0 not in database and k1 not in database
    assert fabric.staged() == {}
    fabric.assert_converged()


# ----------------------------------------------------------------------
# the pinned recovery scenario: coordinator crash mid-commit,
# participant partitioned, no half-applied transaction
# ----------------------------------------------------------------------
def test_recovery_after_coordinator_crash_mid_commit():
    fabric = make_fabric(prepare_timeout=5.0)
    (k0, k1), = cross_shard_keys(fabric)

    # The coordinator decides commit (green in shard 0, the decider),
    # then crashes before any finish record — the classic 2PC window.
    fabric.coordinator.fail_before_finish = True
    fabric.submit([["SET", k0, 111], ["SET", k1, 222]])
    fabric.run_for(4.0)
    assert not fabric.coordinator.alive
    database = fabric.sharded_database()
    assert k0 not in database and k1 not in database, \
        "no finish record may have applied anything yet"
    assert set(fabric.staged()) != set(), "fragments must be staged"

    # Pile on: the home node crashes too, and one shard-1 replica is
    # partitioned away during recovery.
    fabric.crash(global_id(0, 1))
    fabric.partition([global_id(1, 1)])
    fabric.run_for(1.0)

    outcomes = []
    fabric.new_coordinator(home=global_id(0, 2))
    swept = fabric.recover_transactions(
        lambda t, o: outcomes.append((t, o)))
    assert len(swept) == 1
    fabric.run_for(5.0)
    fabric.heal()
    fabric.recover(global_id(0, 1))
    fabric.run_for(6.0)

    # The recovery abort raced the crashed coordinator's commit at the
    # decider — and lost: first writer wins, so the transaction applies
    # everywhere.
    assert [o for _t, o in outcomes] == ["commit"]
    database = fabric.sharded_database()
    assert database.get(k0) == 111 and database.get(k1) == 222
    assert fabric.staged() == {}
    fabric.assert_converged()


def test_recovery_aborts_undecided_transactions():
    fabric = make_fabric(prepare_timeout=60.0)
    (k0, k1), = cross_shard_keys(fabric)
    # Shard 1 has no quorum, so the transaction cannot be decided; the
    # shard-0 prepare goes green and stays staged.
    nodes1 = shard_server_ids(1, 3)
    fabric.partition([nodes1[0]], [nodes1[1]], [nodes1[2]])
    fabric.run_for(1.0)
    fabric.submit([["SET", k0, 1], ["SET", k1, 2]])
    fabric.run_for(2.0)
    # The coordinator crashes while the transaction is undecided, then
    # the partition heals: both shards now hold a staged fragment and
    # no decision anywhere.
    fabric.coordinator.halt()
    fabric.heal()
    fabric.run_for(4.0)
    assert set(fabric.staged()), "prepares must be staged"

    outcomes = []
    fabric.new_coordinator(home=global_id(0, 2))
    fabric.recover_transactions(lambda t, o: outcomes.append(o))
    fabric.run_for(4.0)

    # Nobody decided commit, so the sweep's abort wins and nothing
    # user-visible ever appears on either shard.
    assert outcomes == ["abort"]
    database = fabric.sharded_database()
    assert k0 not in database and k1 not in database
    assert fabric.staged() == {}
    fabric.assert_converged()


def test_fabric_rejects_degenerate_shapes():
    with pytest.raises(ValueError):
        ShardFabric(num_shards=0)
