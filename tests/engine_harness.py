"""Protocol-level engine harness: drive Appendix A event sequences
directly, without the group communication stack.

The harness feeds an engine exact sequences of the five event kinds
(action, state message, CPC, regular conf, transitional conf) and
captures what it multicasts.  This reaches corner states — No, Un, the
1b transition — that need precisely-timed cascaded view changes, which
the full stack only produces probabilistically.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.core import (EngineConfig, ReplicationEngine)
from repro.core.messages import (EngineActionMsg, EngineCpcMsg,
                                 EngineStateMsg)
from repro.db import Action, ActionId, Database
from repro.gcs import Configuration, ServiceLevel, ViewId
from repro.sim import Simulator
from repro.storage import DiskProfile, SimulatedDisk, StableStore, \
    WriteAheadLog


class FakeChannel:
    """Stands in for GroupChannel: records multicasts, delivers events."""

    def __init__(self) -> None:
        self.message_handler = None
        self.conf_handler = None
        self.sent: List[Tuple[Any, ServiceLevel]] = []

    def multicast(self, payload, service=ServiceLevel.SAFE, size=200):
        self.sent.append((payload, service))

    # -- test-side delivery helpers -------------------------------------
    def deliver(self, payload, origin=0, in_transitional=False,
                service=ServiceLevel.SAFE):
        self.message_handler(payload, origin, in_transitional, service)

    def deliver_conf(self, conf: Configuration):
        self.conf_handler(conf)

    def sent_of(self, kind):
        return [p for p, _s in self.sent if isinstance(p, kind)]

    def clear(self):
        self.sent = []


class EngineHarness:
    """One engine wired to a fake channel and a real (fast) disk."""

    def __init__(self, server_id: int, servers=(1, 2, 3),
                 config: Optional[EngineConfig] = None):
        self.sim = Simulator()
        self.channel = FakeChannel()
        disk = SimulatedDisk(self.sim, server_id,
                             DiskProfile(forced_write_latency=0.0001))
        self.store = StableStore(WriteAheadLog(disk))
        self.database = Database()
        self.engine = ReplicationEngine(
            self.sim, server_id, self.channel, self.store, self.database,
            list(servers), config or EngineConfig())
        self.view_epoch = 0

    def run(self, duration: float = 0.01) -> None:
        """Let pending disk syncs and callbacks complete."""
        self.sim.run(until=self.sim.now + duration)

    # -- event builders ---------------------------------------------------
    def reg_conf(self, members) -> Configuration:
        self.view_epoch += 1
        conf = Configuration(ViewId(self.view_epoch, min(members)),
                             frozenset(members))
        self.channel.deliver_conf(conf)
        self.run()
        return conf

    def trans_conf(self, members) -> None:
        assert self.engine.conf is not None
        self.channel.deliver_conf(
            Configuration(self.engine.conf.view_id, frozenset(members),
                          transitional=True))
        self.run()

    def action(self, server, index, update=None, green_pos=None,
               in_transitional=False, green_line=0) -> Action:
        act = Action(action_id=ActionId(server, index), update=update)
        self.channel.deliver(
            EngineActionMsg(action=act, green_line=green_line,
                            green_pos=green_pos),
            origin=server, in_transitional=in_transitional)
        self.run()
        return act

    def state_msg(self, server, conf, green_count=0, red_cut=None,
                  green_lines=None, attempt_index=0, prim=None,
                  vulnerable=None, yellow_valid=False, yellow_ids=()):
        from repro.core import PrimComponent, Vulnerable
        if isinstance(prim, tuple):
            prim = PrimComponent(prim_index=prim[0],
                                 attempt_index=prim[1],
                                 servers=tuple(prim[2]))
        msg = EngineStateMsg(
            server_id=server, conf_id=conf.view_id,
            green_count=green_count, red_cut=dict(red_cut or {}),
            green_lines=dict(green_lines or {}),
            attempt_index=attempt_index,
            prim_component=prim or PrimComponent(
                servers=tuple(self.engine.queue.servers)),
            vulnerable=vulnerable or Vulnerable(),
            yellow_valid=yellow_valid, yellow_ids=tuple(yellow_ids))
        self.channel.deliver(msg, origin=server)
        self.run()
        return msg

    def own_state_msg(self, conf):
        """Echo back the engine's own generated state message."""
        pending = self.channel.sent_of(EngineStateMsg)
        assert pending, "engine has not generated a state message"
        msg = pending[-1]
        self.channel.deliver(msg, origin=self.engine.server_id)
        self.run()
        return msg

    def cpc(self, server, conf, in_transitional=False):
        self.channel.deliver(EngineCpcMsg(server, conf.view_id),
                             origin=server,
                             in_transitional=in_transitional)
        self.run()

    def own_cpc(self, conf, in_transitional=False):
        pending = self.channel.sent_of(EngineCpcMsg)
        assert pending, "engine has not generated a CPC"
        self.channel.deliver(pending[-1],
                             origin=self.engine.server_id,
                             in_transitional=in_transitional)
        self.run()
