"""Cross-runtime conformance: the protocol behaves identically on the
discrete-event simulator and on real asyncio.

The same scenario — boot, commit, partition {1,2}|{3}, commit on both
sides, heal, converge — runs on a :class:`ReplicaCluster` (SimRuntime +
simulated Network) and on a :class:`LiveCluster` (AsyncioRuntime +
MemoryTransport).  The protocol-level trace must be identical:

* the green action order at every node (the paper's replication
  observable),
* each node's sequence of primary/non-primary milestones after boot,
* each node's installed regular view memberships after boot,
* the final database digest.

Wall-clock timings, message counts, and retransmissions may differ
wildly between the runtimes; the protocol decisions may not.
"""

import asyncio

from repro.core import ReplicaCluster
from repro.core.state_machine import EngineState
from repro.gcs import GcsSettings
from repro.runtime import LiveCluster
from repro.storage import DiskProfile

NODES = [1, 2, 3]
MAJORITY = [1, 2]
MINORITY = [3]

# The scenario's expected protocol trace, identical on both runtimes.
EXPECTED_GREEN = [(1, 1), (1, 2), (1, 3),      # committed before the cut
                  (1, 4), (1, 5),              # majority, during the cut
                  (3, 1)]                      # minority red, merged last
EXPECTED_MODES = {1: ["RegPrim", "RegPrim"],   # re-primary after cut, heal
                  2: ["RegPrim", "RegPrim"],
                  3: ["NonPrim", "RegPrim"]}   # minority loses quorum
EXPECTED_VIEWS = {1: [(1, 2), (1, 2, 3)],
                  2: [(1, 2), (1, 2, 3)],
                  3: [(3,), (1, 2, 3)]}

_MILESTONES = (EngineState.REG_PRIM, EngineState.NON_PRIM)


class _Recorder:
    """Collects the protocol-level observables for one cluster."""

    def __init__(self, replicas, tracer):
        self.greens = {n: [] for n in replicas}
        self.modes = {n: [] for n in replicas}
        self.views = {n: [] for n in replicas}
        for node, replica in replicas.items():
            replica.add_green_listener(
                lambda a, _p, _r, _n=node:
                self.greens[_n].append(tuple(a.action_id)))
            replica.add_state_listener(
                lambda _old, new, _n=node:
                self.modes[_n].append(str(new))
                if new in _MILESTONES else None)
        tracer.subscribe(self._on_trace)

    def _on_trace(self, record):
        if record.category == "gcs.install":
            self.views[record.node].append(record.detail["members"])

    def reset_membership(self):
        """Forget boot-time transitions: startup view formation order is
        timing-dependent (and irrelevant); the scenario's own membership
        changes are the conformance observable."""
        for node in self.modes:
            self.modes[node] = []
            self.views[node] = []

    def trace(self, digests):
        return {"greens": self.greens, "modes": self.modes,
                "views": self.views, "digests": digests}


def _sim_trace(wire=None):
    settings = GcsSettings(wire=wire) if wire is not None else None
    cluster = ReplicaCluster(n=3, seed=11, trace=True,
                             gcs_settings=settings)
    recorder = _Recorder(cluster.replicas, cluster.tracer)

    def wait(cond, what):
        deadline = cluster.sim.now + 60.0
        while not cond():
            assert cluster.sim.now < deadline, f"sim stalled: {what}"
            cluster.run_for(0.05)

    cluster.start_all()
    wait(lambda: all(r.engine.state == EngineState.REG_PRIM
                     for r in cluster.replicas.values()), "startup")
    recorder.reset_membership()

    for i in range(3):
        cluster.replicas[1].submit(("SET", f"pre-{i}", i))
    wait(lambda: all(len(g) >= 3 for g in recorder.greens.values()),
         "pre-cut commits")

    cluster.partition(MAJORITY, MINORITY)
    wait(lambda: (all(cluster.replicas[n].engine.state
                      == EngineState.REG_PRIM for n in MAJORITY)
                  and cluster.replicas[3].engine.state
                  == EngineState.NON_PRIM), "partition settles")
    cluster.replicas[1].submit(("SET", "maj-0", 0))
    cluster.replicas[1].submit(("SET", "maj-1", 1))
    cluster.replicas[3].submit(("SET", "min-0", 0))
    wait(lambda: all(len(recorder.greens[n]) >= 5 for n in MAJORITY),
         "majority commits")

    cluster.heal()
    wait(lambda: all(len(g) >= 6 for g in recorder.greens.values()),
         "post-heal convergence")
    wait(lambda: all(r.engine.state == EngineState.REG_PRIM
                     for r in cluster.replicas.values()), "re-primary")
    digests = {n: r.database.digest()
               for n, r in cluster.replicas.items()}
    return recorder.trace(digests)


def _live_trace(wire=None):
    async def scenario():
        overrides = {"wire": wire} if wire is not None else {}
        cluster = LiveCluster(
            NODES,
            gcs_settings=GcsSettings(
                heartbeat_interval=0.015, failure_timeout=0.150,
                gather_settle=0.040, phase_timeout=0.500,
                nack_timeout=0.010, use_topology_hints=False,
                **overrides),
            disk_profile=DiskProfile(forced_write_latency=0.0002,
                                     async_write_latency=0.00001))
        recorder = _Recorder(cluster.replicas, cluster.tracer)
        try:
            cluster.start_all()
            await cluster.wait_all_engine_state(EngineState.REG_PRIM,
                                                timeout=15)
            recorder.reset_membership()

            for i in range(3):
                cluster.submit(1, ("SET", f"pre-{i}", i))
            await cluster.wait_green(3, timeout=10)

            cluster.partition(MAJORITY, MINORITY)
            await cluster.wait_all_engine_state(EngineState.REG_PRIM,
                                                timeout=15, nodes=MAJORITY)
            await cluster.wait_all_engine_state(EngineState.NON_PRIM,
                                                timeout=15, nodes=MINORITY)
            cluster.submit(1, ("SET", "maj-0", 0))
            cluster.submit(1, ("SET", "maj-1", 1))
            cluster.submit(3, ("SET", "min-0", 0))
            await cluster.wait_green(5, timeout=10, nodes=MAJORITY)

            cluster.heal()
            await cluster.wait_green(6, timeout=20)
            await cluster.wait_all_engine_state(EngineState.REG_PRIM,
                                                timeout=15)
            digests = {n: r.database.digest()
                       for n, r in cluster.replicas.items()}
            return recorder.trace(digests)
        finally:
            cluster.shutdown()

    return asyncio.run(scenario())


def test_identical_protocol_trace_on_both_runtimes():
    sim = _sim_trace()
    live = _live_trace()

    # Both runtimes produced the analytically expected trace...
    for trace in (sim, live):
        assert trace["greens"] == {n: EXPECTED_GREEN for n in NODES}
        assert trace["modes"] == EXPECTED_MODES
        assert trace["views"] == EXPECTED_VIEWS
        assert len(set(trace["digests"].values())) == 1

    # ...and therefore agree with each other, digests included: the
    # replicated databases converged to byte-identical state across
    # virtual and wall-clock execution.
    assert sim["greens"] == live["greens"]
    assert sim["modes"] == live["modes"]
    assert sim["views"] == live["views"]
    assert set(sim["digests"].values()) == set(live["digests"].values())
