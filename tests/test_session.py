"""Exactly-once client sessions with replica failover."""

import pytest

from repro.semantics import SessionClient
from repro.semantics.session import SESSION_PREFIX

from conftest import make_cluster


@pytest.fixture
def cluster():
    c = make_cluster(3)
    c.start_all(settle=1.0)
    return c


def session_for(cluster, retry=0.5):
    replicas = [cluster.replicas[n] for n in sorted(cluster.replicas)]
    return SessionClient(replicas, retry_interval=retry)


class TestExactlyOnce:
    def test_simple_submit_applies_once(self, cluster):
        client = session_for(cluster)
        results = []
        client.submit(("INC", "n", 1), on_applied=results.append)
        cluster.run_for(1.0)
        assert results == [[1]]
        assert client.applied == 1
        assert client.duplicates_suppressed == 0
        assert cluster.replicas[2].database.state["n"] == 1

    def test_sequence_recorded_in_replicated_state(self, cluster):
        client = session_for(cluster)
        for _ in range(3):
            client.submit(("INC", "n", 1))
        cluster.run_for(1.5)
        cluster.assert_converged()
        for replica in cluster.replicas.values():
            assert client.confirmed_seq_at(replica) == 3

    def test_retry_does_not_double_apply(self, cluster):
        """Force a retry by keeping the first submission red (its
        replica is partitioned): the re-submission through another
        replica applies; when the original finally orders, the guard
        suppresses it."""
        client = session_for(cluster, retry=0.8)
        cluster.partition([1], [2, 3])
        cluster.run_for(1.5)
        # Attached to replica 1 (minority): the action goes red.
        client.submit(("INC", "n", 1))
        cluster.run_for(2.0)   # retry fires -> rotates to 2 -> applies
        assert cluster.replicas[2].database.state["n"] == 1
        cluster.heal()
        cluster.run_for(3.0)   # replica 1's red copy gets ordered too
        cluster.assert_converged()
        # Exactly once, despite two orderings of the same sequence.
        assert cluster.replicas[1].database.state["n"] == 1
        assert client.applied == 1

    def test_failover_on_crashed_replica(self, cluster):
        client = session_for(cluster, retry=0.5)
        cluster.crash(1)
        cluster.run_for(1.0)
        results = []
        client.submit(("SET", "k", "survived"), on_applied=results.append)
        cluster.run_for(3.0)
        assert results == [["survived"]]
        assert client.failovers >= 1
        assert cluster.replicas[2].database.state["k"] == "survived"

    def test_many_updates_under_churn_apply_exactly_once(self, cluster):
        client = session_for(cluster, retry=0.4)
        done = []
        total = 15

        def pump(_result=None):
            if len(done) < total:
                done.append(1)
                client.submit(("INC", "n", 1), on_applied=pump)

        pump()
        cluster.run_for(1.0)
        cluster.partition([1], [2, 3])
        cluster.run_for(1.5)
        cluster.heal()
        cluster.run_for(1.5)
        cluster.crash(2)
        cluster.run_for(1.5)
        cluster.recover(2)
        cluster.run_for(4.0)
        cluster.assert_converged()
        state = cluster.replicas[3].database.state
        # The counter equals the number of distinct sequences applied —
        # no duplicates regardless of retries and failovers.
        assert state["n"] == client.applied
        assert client.applied >= total - 1

    def test_sessions_are_independent(self, cluster):
        alice = session_for(cluster)
        bob = session_for(cluster)
        alice.submit(("INC", "n", 1))
        bob.submit(("INC", "n", 10))
        cluster.run_for(1.0)
        assert cluster.replicas[1].database.state["n"] == 11
        assert cluster.replicas[1].database.state[
            SESSION_PREFIX + alice.session] == 1
        assert cluster.replicas[1].database.state[
            SESSION_PREFIX + bob.session] == 1

    def test_needs_at_least_one_replica(self):
        with pytest.raises(ValueError):
            SessionClient([])
