"""Conformance: the engine's behaviour is identical under both
total-order mechanisms (sequencer and token ring).

Every scenario runs under both modes; the guarantees — convergence,
quorum behaviour, recovery, join — must hold equally, since the engine
consumes only the EVS interface.
"""

import pytest

from repro.core import EngineState
from repro.gcs import GcsSettings

from conftest import make_cluster


def settings_for(mode):
    return GcsSettings(ordering_mode=mode, heartbeat_interval=0.02,
                       failure_timeout=0.08, gather_settle=0.02,
                       phase_timeout=0.15, token_timeout=0.3)


@pytest.fixture(params=["sequencer", "token"])
def mode_cluster(request):
    cluster = make_cluster(3, gcs_settings=settings_for(request.param))
    cluster.start_all(settle=1.5)
    return cluster


class TestConformance:
    def test_commit_and_convergence(self, mode_cluster):
        clients = {n: mode_cluster.client(n) for n in (1, 2, 3)}
        for i in range(4):
            for client in clients.values():
                client.submit(("APPEND", "log", i))
        mode_cluster.run_for(2.0)
        assert all(c.completed == 4 for c in clients.values())
        mode_cluster.assert_converged()

    def test_minority_majority_partition(self, mode_cluster):
        mode_cluster.partition([1], [2, 3])
        mode_cluster.run_for(2.0)
        assert sorted(mode_cluster.primary_members()) == [2, 3]
        mode_cluster.replicas[1].submit(("SET", "red", 1))
        client = mode_cluster.client(3)
        client.submit(("SET", "green", 1))
        mode_cluster.run_for(1.5)
        assert client.completed == 1
        mode_cluster.heal()
        mode_cluster.run_for(3.0)
        mode_cluster.assert_converged()
        assert mode_cluster.replicas[2].database.state["red"] == 1

    def test_crash_recovery(self, mode_cluster):
        client = mode_cluster.client(1)
        for i in range(3):
            client.submit(("SET", f"k{i}", i))
        mode_cluster.run_for(1.5)
        mode_cluster.crash(2)
        mode_cluster.run_for(1.5)
        client.submit(("SET", "while-down", 1))
        mode_cluster.run_for(1.0)
        mode_cluster.recover(2)
        mode_cluster.run_for(3.5)
        mode_cluster.assert_converged()
        assert mode_cluster.replicas[2].database.state["while-down"] == 1

    def test_dynamic_join(self, mode_cluster):
        client = mode_cluster.client(1)
        client.submit(("SET", "base", 1))
        mode_cluster.run_for(1.0)
        mode_cluster.add_replica(4, peer=2)
        mode_cluster.run_for(6.0)
        mode_cluster.assert_converged()
        assert mode_cluster.replicas[4].engine.state \
            is EngineState.REG_PRIM
        assert mode_cluster.replicas[4].database.state["base"] == 1

    def test_no_quorum_three_way(self, mode_cluster):
        mode_cluster.partition([1], [2], [3])
        mode_cluster.run_for(2.0)
        assert mode_cluster.primary_members() == []
        mode_cluster.heal()
        mode_cluster.run_for(3.0)
        assert len(mode_cluster.primary_members()) == 3
