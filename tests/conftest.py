"""Shared fixtures for the test suite.

Test clusters default to small sizes and fast GCS timers so the suite
stays quick; the benchmark directory uses the paper's 14-replica
configuration.
"""

from __future__ import annotations

import pytest

from repro.core import EngineConfig, ReplicaCluster
from repro.gcs import GcsSettings
from repro.net import NetworkProfile
from repro.sim import Simulator
from repro.storage import DiskProfile


def fast_gcs_settings(**overrides) -> GcsSettings:
    """GCS timers scaled down for quick membership in tests."""
    params = dict(heartbeat_interval=0.02, failure_timeout=0.08,
                  gather_settle=0.02, phase_timeout=0.15,
                  nack_timeout=0.01)
    params.update(overrides)
    return GcsSettings(**params)


def fast_disk_profile(**overrides) -> DiskProfile:
    """A fast disk so protocol logic, not disk latency, dominates."""
    params = dict(forced_write_latency=0.001, async_write_latency=0.00001)
    params.update(overrides)
    return DiskProfile(**params)


def make_cluster(n: int = 3, seed: int = 0, **kwargs) -> ReplicaCluster:
    kwargs.setdefault("gcs_settings", fast_gcs_settings())
    kwargs.setdefault("disk_profile", fast_disk_profile())
    return ReplicaCluster(n=n, seed=seed, **kwargs)


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def cluster3() -> ReplicaCluster:
    cluster = make_cluster(3)
    cluster.start_all(settle=1.0)
    return cluster


@pytest.fixture
def cluster5() -> ReplicaCluster:
    cluster = make_cluster(5)
    cluster.start_all(settle=1.0)
    return cluster
