"""Per-shard observability scoping.

One fabric shares one metrics registry across N replication groups;
each group writes through a :class:`ShardScopedRegistry` that prepends
a ``shard`` label transparently.  The contract under test: scoped
writers and the base reader see the same children (no copies, no
renames), single-group metric names are untouched, and the exported
text carries the shard label — so a dashboard built for one group
keeps working and gains a ``shard`` dimension when pointed at a
fabric.
"""

from repro.obs import (MetricsRegistry, Observability,
                       ShardScopedRegistry, prometheus_text)


def test_for_shard_on_disabled_observability_is_free():
    obs = Observability.disabled()
    assert obs.for_shard(3) is obs


def test_for_shard_shares_registry_and_trackers():
    obs = Observability()
    scoped = obs.for_shard(1)
    assert scoped.enabled
    assert isinstance(scoped.registry, ShardScopedRegistry)
    assert scoped.trackers is obs.trackers
    assert scoped.registry.shard == 1


def test_scoped_counter_prepends_the_shard_label():
    base = MetricsRegistry(enabled=True)
    scoped = ShardScopedRegistry(base, 2)
    scoped.counter("repro_test_total", "help", ("node",)).labels(7).inc(3)

    # The sample lives in the base registry under ("shard", "node").
    family = base.collect()[0]
    assert family.labelnames == ("shard", "node")
    assert dict(family.samples())[("2", "7")].value == 3
    # Both ends read back the same child without knowing the other's
    # shape.
    assert base.get_sample("repro_test_total", "2", "7").value == 3
    assert scoped.get_sample("repro_test_total", "7") \
        is base.get_sample("repro_test_total", "2", "7")


def test_scoped_family_shares_children_with_the_base():
    base = MetricsRegistry(enabled=True)
    one = ShardScopedRegistry(base, 1)
    two = ShardScopedRegistry(base, 2)
    one.counter("repro_x_total", "", ("node",)).labels(1).inc()
    two.counter("repro_x_total", "", ("node",)).labels(1).inc()
    # One family, two shard-disjoint children — not two families.
    assert len(base.collect()) == 1
    samples = {key for key, _ in base.collect()[0].samples()}
    assert samples == {("1", "1"), ("2", "1")}
    # The scoped view filters to its own shard only.
    scoped_samples = dict(one.counter("repro_x_total", "",
                                      ("node",)).samples())
    assert set(scoped_samples) == {("1",)}


def test_scoped_callbacks_carry_the_shard_label():
    base = MetricsRegistry(enabled=True)
    scoped = ShardScopedRegistry(base, 4)
    scoped.gauge_callback("repro_depth", lambda: 17.0,
                          labelnames=("node",), labelvalues=(9,))
    base.collect()     # callbacks materialise at collection time
    assert base.get_sample("repro_depth", "4", "9").value == 17.0
    assert base.snapshot()["repro_depth"] == {"4,9": 17.0}


def test_single_group_metric_names_are_unchanged():
    # A standalone cluster never passes through for_shard: its metric
    # shapes must be exactly what pre-shard dashboards scrape.
    base = MetricsRegistry(enabled=True)
    base.counter("repro_engine_green_actions_total", "",
                 ("node",)).labels(1).inc()
    family = base.collect()[0]
    assert family.labelnames == ("node",)
    text = prometheus_text(base)
    assert 'repro_engine_green_actions_total{node="1"} 1' in text
    assert "shard" not in text


def test_prometheus_text_exports_the_shard_label():
    base = MetricsRegistry(enabled=True)
    ShardScopedRegistry(base, 0).counter(
        "repro_engine_green_actions_total", "", ("node",)).labels(1).inc()
    ShardScopedRegistry(base, 1).counter(
        "repro_engine_green_actions_total", "", ("node",)).labels(101).inc()
    text = prometheus_text(base)
    assert ('repro_engine_green_actions_total'
            '{shard="0",node="1"} 1') in text
    assert ('repro_engine_green_actions_total'
            '{shard="1",node="101"} 1') in text


def test_scoped_snapshot_reads_the_whole_fabric():
    base = MetricsRegistry(enabled=True)
    scoped = ShardScopedRegistry(base, 1)
    scoped.counter("repro_y_total", "", ("node",)).labels(2).inc()
    # snapshot/collect delegate to the base: the fabric-wide view, so
    # one exporter serves every shard.
    assert scoped.snapshot() == base.snapshot()
    assert "repro_y_total" in scoped.snapshot()
