"""Unit tests for the actions queue (marking, cuts, white line)."""

import pytest

from repro.core import ActionQueue, Color
from repro.db import Action, ActionId


def make_action(server, index):
    return Action(action_id=ActionId(server, index),
                  update=("SET", f"{server}:{index}", index))


@pytest.fixture
def queue():
    return ActionQueue([1, 2, 3])


class TestMarkRed:
    def test_accepts_next_index(self, queue):
        assert queue.mark_red(make_action(1, 1))
        assert queue.red_cut[1] == 1
        assert queue.color_of(ActionId(1, 1)) is Color.RED

    def test_rejects_gap(self, queue):
        assert not queue.mark_red(make_action(1, 2))
        assert queue.red_cut[1] == 0

    def test_rejects_duplicate(self, queue):
        queue.mark_red(make_action(1, 1))
        assert not queue.mark_red(make_action(1, 1))

    def test_rejects_unknown_creator(self, queue):
        assert not queue.mark_red(make_action(9, 1))

    def test_local_order_preserved(self, queue):
        queue.mark_red(make_action(2, 1))
        queue.mark_red(make_action(1, 1))
        queue.mark_red(make_action(2, 2))
        assert [a.action_id for a in queue.red_actions()] == [
            ActionId(2, 1), ActionId(1, 1), ActionId(2, 2)]


class TestMarkGreen:
    def test_green_from_unknown(self, queue):
        action = make_action(1, 1)
        assert queue.mark_green(action)
        assert queue.color_of(action.action_id) is Color.GREEN
        assert queue.green_count == 1
        assert queue.green_position(action.action_id) == 0
        assert queue.red_actions() == []

    def test_green_from_red_removes_from_red(self, queue):
        action = make_action(1, 1)
        queue.mark_red(action)
        assert queue.mark_green(action)
        assert queue.red_actions() == []

    def test_green_idempotent(self, queue):
        action = make_action(1, 1)
        queue.mark_green(action)
        assert not queue.mark_green(action)
        assert queue.green_count == 1

    def test_green_fifo_gap_rejected(self, queue):
        with pytest.raises(ValueError):
            queue.mark_green(make_action(1, 5))

    def test_positions_are_sequential(self, queue):
        for i in range(1, 6):
            queue.mark_green(make_action(1, i))
        assert [queue.green_position(ActionId(1, i))
                for i in range(1, 6)] == [0, 1, 2, 3, 4]

    def test_green_slice(self, queue):
        for i in range(1, 6):
            queue.mark_green(make_action(1, i))
        chunk = queue.green_slice(2, 4)
        assert [pos for pos, _a in chunk] == [2, 3]

    def test_find(self, queue):
        red = make_action(2, 1)
        green = make_action(1, 1)
        queue.mark_red(red)
        queue.mark_green(green)
        assert queue.find(red.action_id) is red
        assert queue.find(green.action_id) is green
        assert queue.find(ActionId(3, 9)) is None

    def test_red_actions_of_creator_sorted(self, queue):
        queue.mark_red(make_action(2, 1))
        queue.mark_red(make_action(1, 1))
        queue.mark_red(make_action(2, 2))
        assert [a.action_id.index
                for a in queue.red_actions_of(2)] == [1, 2]


class TestGreenLinesAndWhite:
    def test_green_lines_monotonic(self, queue):
        queue.set_green_line(2, 5)
        queue.set_green_line(2, 3)
        assert queue.green_lines[2] == 5

    def test_white_line_is_min(self, queue):
        queue.set_green_line(1, 5)
        queue.set_green_line(2, 3)
        queue.set_green_line(3, 9)
        assert queue.white_line == 3

    def test_truncate_white_discards_prefix(self, queue):
        for i in range(1, 7):
            queue.mark_green(make_action(1, i))
        for server in (1, 2, 3):
            queue.set_green_line(server, 4)
        assert queue.truncate_white() == 4
        assert queue.green_offset == 4
        assert queue.green_count == 6
        assert queue.green_position(ActionId(1, 1)) is None
        assert queue.green_position(ActionId(1, 5)) == 4
        # Slices below the offset are clamped.
        assert [p for p, _a in queue.green_slice(0)] == [4, 5]

    def test_truncate_noop_without_knowledge(self, queue):
        queue.mark_green(make_action(1, 1))
        assert queue.truncate_white() == 0  # lines default to 0

    def test_knows_covers_green_and_red(self, queue):
        queue.mark_green(make_action(1, 1))
        queue.mark_red(make_action(2, 1))
        assert queue.knows(ActionId(1, 1))
        assert queue.knows(ActionId(2, 1))
        assert not queue.knows(ActionId(3, 1))


class TestDynamicServers:
    def test_add_server(self, queue):
        queue.add_server(7, green_line=3)
        assert 7 in queue.red_cut
        assert queue.green_lines[7] == 3
        assert queue.mark_red(make_action(7, 1))

    def test_remove_server(self, queue):
        queue.remove_server(3)
        assert 3 not in queue.red_cut
        assert not queue.mark_red(make_action(3, 1))
        assert queue.servers == [1, 2]

    def test_add_existing_is_noop(self, queue):
        queue.mark_red(make_action(1, 1))
        queue.add_server(1)
        assert queue.red_cut[1] == 1


class TestRemovalPurge:
    def test_remove_server_purges_red_actions(self, queue):
        queue.mark_red(make_action(2, 1))
        queue.mark_red(make_action(3, 1))
        queue.mark_red(make_action(2, 2))
        queue.remove_server(2)
        remaining = [a.action_id for a in queue.red_actions()]
        assert remaining == [ActionId(3, 1)]
        assert queue.find(ActionId(2, 1)) is None

    def test_remove_server_keeps_green_history(self, queue):
        queue.mark_green(make_action(2, 1))
        queue.remove_server(2)
        assert queue.green_count == 1
        assert queue.green_position(ActionId(2, 1)) == 0
