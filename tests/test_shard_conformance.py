"""Shard-fabric conformance: identical per-shard protocol trace on the
simulator and on live UDP.

The same scripted workload — boot two 3-replica shards, four
shard-local commits per shard, one cross-shard transaction through the
coordinator — runs on a :class:`ShardFabric` (one ``SimRuntime``) and
on a :class:`LiveShardFabric` over real UDP loopback sockets (one
``AsyncioRuntime``, shared transport, namespaced GCS groups).  The
protocol observables must match exactly:

* each shard's applied green order (including the prepare / decide /
  finish records of the cross-shard transaction),
* each shard's database digest,
* the transaction outcome.

Wall-clock timings and datagram counts may differ arbitrarily; the
per-shard total orders may not — the coordinator is runtime-agnostic
and the router is a pure function, so not one protocol decision may
depend on the substrate.
"""

import asyncio

from repro.gcs import GcsSettings
from repro.runtime import live_gcs_settings
from repro.shard import LiveShardFabric, ShardFabric
from repro.storage import DiskProfile

LOCALS = 4
#: greens per shard: locals + prepare/decide/finish at the decider
#: (shard 0), locals + prepare/finish at the other participant.
EXPECTED_GREENS = {0: LOCALS + 3, 1: LOCALS + 2}

SIM_GCS = GcsSettings(heartbeat_interval=0.02, failure_timeout=0.08,
                      gather_settle=0.02, phase_timeout=0.15)
SIM_DISK = DiskProfile(forced_write_latency=0.001)


def _cross_keys(router):
    """One deterministic key per shard (identical on both fabrics —
    placement is a pure function of the key)."""
    key_for = {}
    probe = 0
    while 0 not in key_for or 1 not in key_for:
        key_for.setdefault(router.shard_for_key(f"xk{probe}"),
                           f"xk{probe}")
        probe += 1
    return key_for


def _load(fabric, outcomes):
    key_for = _cross_keys(fabric.router)
    for shard in range(2):
        for i in range(LOCALS):
            fabric.submit_local(shard, ("SET", f"s{shard}-k{i}", i))
    fabric.submit([("SET", key_for[0], "x0"), ("SET", key_for[1], "x1")],
                  lambda _txn, outcome: outcomes.append(outcome))


def _trace(fabric, outcomes):
    return {"greens": {s: fabric.green_order(s) for s in (0, 1)},
            "digests": fabric.digests(),
            "outcomes": list(outcomes)}


def _sim_trace():
    fabric = ShardFabric(2, 3, seed=0, gcs_settings=SIM_GCS,
                         disk_profile=SIM_DISK)
    fabric.start_all(settle=1.5)
    outcomes = []
    _load(fabric, outcomes)
    deadline = fabric.sim.now + 60.0
    while (any(fabric.green_count(s) < EXPECTED_GREENS[s]
               for s in EXPECTED_GREENS) or not outcomes):
        assert fabric.sim.now < deadline, "sim fabric stalled"
        fabric.run_for(0.05)
    fabric.run_for(1.0)
    fabric.assert_converged()
    return _trace(fabric, outcomes)


def _live_trace(udp):
    async def scenario():
        fabric = LiveShardFabric(2, 3, udp=udp,
                                 gcs_settings=live_gcs_settings())
        try:
            fabric.start_all()
            await fabric.wait_all_primary(timeout=15)
            outcomes = []
            _load(fabric, outcomes)
            for shard, count in EXPECTED_GREENS.items():
                await fabric.wait_green(shard, count, timeout=20)
            await fabric.wait_no_inflight(timeout=10)
            fabric.assert_converged()
            return _trace(fabric, outcomes)
        finally:
            fabric.shutdown()

    return asyncio.run(scenario())


def _check(trace):
    assert trace["outcomes"] == ["commit"]
    assert {s: len(g) for s, g in trace["greens"].items()} \
        == EXPECTED_GREENS
    assert len(trace["digests"]) == 2


def test_sim_and_live_udp_fabric_traces_are_identical():
    sim = _sim_trace()
    live = _live_trace(udp=True)
    _check(sim)
    _check(live)
    assert sim["greens"] == live["greens"]
    assert sim["digests"] == live["digests"]


def test_sim_and_memory_transport_fabric_traces_are_identical():
    # The in-process MemoryTransport variant: same asyncio runtime and
    # commit path, no sockets — the cheap half of the conformance
    # matrix, worth keeping separate so a UDP-environment failure
    # doesn't mask a protocol drift.
    sim = _sim_trace()
    live = _live_trace(udp=False)
    _check(live)
    assert sim["greens"] == live["greens"]
    assert sim["digests"] == live["digests"]
