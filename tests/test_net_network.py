"""Unit tests for the network fabric."""

import pytest

from repro.net import (Network, NetworkProfile, Topology,
                       lossless_instant_profile)
from repro.sim import RandomStreams, Simulator


def make_net(nodes=(1, 2, 3), profile=None, seed=0):
    sim = Simulator()
    topo = Topology(list(nodes))
    net = Network(sim, topo, profile,
                  rng=RandomStreams(seed).stream("network"))
    inboxes = {n: [] for n in nodes}
    for n in nodes:
        net.attach(n, lambda d, n=n: inboxes[n].append(d))
    return sim, topo, net, inboxes


def test_unicast_delivery():
    sim, _topo, net, inboxes = make_net()
    net.send(1, 2, "hello", 100)
    sim.run()
    assert len(inboxes[2]) == 1
    assert inboxes[2][0].payload == "hello"
    assert net.datagrams_delivered == 1


def test_self_delivery():
    sim, _topo, net, inboxes = make_net()
    net.send(1, 1, "loop", 100)
    sim.run()
    assert len(inboxes[1]) == 1


def test_multicast_fans_out():
    sim, _topo, net, inboxes = make_net()
    net.multicast(1, [2, 3], "m", 100)
    sim.run()
    assert len(inboxes[2]) == 1
    assert len(inboxes[3]) == 1
    assert net.datagrams_sent == 1  # one egress serialization


def test_delivery_latency_includes_serialization():
    profile = NetworkProfile(propagation_delay=0.001,
                             bandwidth=1e6, send_overhead=0.0,
                             recv_overhead=0.0, jitter=0.0)
    sim, _topo, net, inboxes = make_net(profile=profile)
    net.send(1, 2, "x", 1000)  # 1000 B at 1 MB/s = 1 ms serialization
    sim.run()
    assert sim.now == pytest.approx(0.002)


def test_egress_serializes_back_to_back_sends():
    profile = NetworkProfile(propagation_delay=0.0, bandwidth=1e6,
                             send_overhead=0.0, recv_overhead=0.0,
                             jitter=0.0)
    sim, _topo, net, _ = make_net(profile=profile)
    times = []
    net.detach(2)
    net.attach(2, lambda d: times.append(sim.now))
    net.send(1, 2, "a", 1000)
    net.send(1, 2, "b", 1000)
    sim.run()
    assert times == [pytest.approx(0.001), pytest.approx(0.002)]


def test_ingress_serializes_deliveries():
    profile = NetworkProfile(propagation_delay=0.0, bandwidth=0.0,
                             send_overhead=0.0, recv_overhead=0.001,
                             jitter=0.0)
    sim, _topo, net, _ = make_net(profile=profile)
    times = []
    net.detach(3)
    net.attach(3, lambda d: times.append(sim.now))
    net.send(1, 3, "a", 10)
    net.send(2, 3, "b", 10)
    sim.run()
    assert times == [pytest.approx(0.001), pytest.approx(0.002)]


def test_partition_blocks_at_send():
    sim, topo, net, inboxes = make_net()
    topo.partition([[1], [2, 3]])
    net.send(1, 2, "x", 100)
    sim.run()
    assert inboxes[2] == []
    assert net.datagrams_dropped == 1


def test_partition_cuts_in_flight_messages():
    profile = NetworkProfile(propagation_delay=0.010, jitter=0.0)
    sim, topo, net, inboxes = make_net(profile=profile)
    net.send(1, 2, "x", 100)
    sim.schedule(0.001, lambda: topo.partition([[1], [2, 3]]))
    sim.run()
    assert inboxes[2] == []


def test_crashed_sender_cannot_send():
    sim, topo, net, inboxes = make_net()
    topo.crash(1)
    net.send(1, 2, "x", 100)
    sim.run()
    assert inboxes[2] == []
    assert net.datagrams_sent == 0


def test_crashed_destination_drops():
    sim, topo, net, inboxes = make_net()
    net.send(1, 2, "x", 100)
    topo.crash(2)
    sim.run()
    assert inboxes[2] == []


def test_detached_destination_drops():
    sim, _topo, net, inboxes = make_net()
    net.detach(2)
    net.send(1, 2, "x", 100)
    sim.run()
    assert inboxes[2] == []


def test_loss_model_drops_deterministically():
    profile = NetworkProfile(loss_rate=1.0)
    sim, _topo, net, inboxes = make_net(profile=profile)
    net.send(1, 2, "x", 100)
    sim.run()
    assert inboxes[2] == []
    assert net.datagrams_dropped == 1


def test_partial_loss_statistics():
    profile = NetworkProfile(loss_rate=0.5, jitter=0.0)
    sim, _topo, net, inboxes = make_net(profile=profile, seed=3)
    for _ in range(200):
        net.send(1, 2, "x", 100)
    sim.run()
    delivered = len(inboxes[2])
    assert 60 < delivered < 140  # ~100 expected


def test_instant_profile_zero_latency():
    sim, _topo, net, inboxes = make_net(
        profile=lossless_instant_profile())
    net.send(1, 2, "x", 100)
    sim.run()
    assert sim.now == 0.0
    assert len(inboxes[2]) == 1


def test_bytes_accounting():
    sim, _topo, net, _ = make_net()
    net.send(1, 2, "x", 123)
    net.multicast(1, [2, 3], "y", 77)
    sim.run()
    assert net.bytes_sent == 200
