"""Soak tests: long mixed-workload runs with rolling faults.

Deterministic seeds drive tens of simulated seconds of continuous
client load, periodic partitions, crashes, recoveries, a join and a
leave — then everything must converge and the books must balance
(every completion observed exactly once, totals correct).
"""

import pytest

from repro.net import random_fault_schedule

from conftest import make_cluster


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_soak_under_random_faults(seed):
    cluster = make_cluster(4, seed=seed)
    cluster.start_all(settle=1.0)
    rng = cluster.streams.stream("soak")
    script = random_fault_schedule([1, 2, 3, 4], rng, horizon=12.0,
                                   rate=0.6, allow_crashes=False)

    # Schedule events relative to now (the schedule starts at t=0).
    base = cluster.sim.now
    for event in sorted(script.events, key=lambda e: e.time):
        def fire(ev=event):
            ev.apply(cluster.topology)
        cluster.sim.schedule_at(base + event.time, fire)

    # Continuous closed-loop clients on every node.
    clients = {n: cluster.client(n) for n in (1, 2, 3, 4)}
    stop_at = cluster.sim.now + 12.0

    def pump(node):
        def again(_a=None, _p=None, _r=None):
            if cluster.sim.now < stop_at and \
                    cluster.replicas[node].running:
                clients[node].submit(("INC", f"n{node}", 1),
                                     on_complete=again)
        again()

    for node in clients:
        pump(node)

    cluster.run_for(13.0)
    cluster.heal()
    cluster.run_for(6.0)
    cluster.assert_converged()

    # The books balance: the counter for each node equals the number
    # of that node's completed increments (exactly-once application of
    # everything that was reported complete; at-least: completions are
    # a lower bound since in-flight actions may commit after we stop
    # counting).
    state = cluster.replicas[1].database.state
    for node, client in clients.items():
        applied = state.get(f"n{node}", 0)
        assert applied >= client.completed
        assert client.completed > 0, f"client {node} starved"


def test_soak_with_crashes_and_membership():
    cluster = make_cluster(4, seed=9)
    cluster.start_all(settle=1.0)
    client = cluster.client(1)
    busy = [True]

    def again(_a=None, _p=None, _r=None):
        if busy[0]:
            client.submit(("INC", "total", 1), on_complete=again)
    again()

    cluster.run_for(2.0)
    cluster.crash(4)
    cluster.run_for(2.0)
    cluster.recover(4)
    cluster.run_for(2.0)
    cluster.add_replica(5, peer=2)
    cluster.run_for(5.0)
    cluster.replicas[3].leave()
    cluster.run_for(2.0)
    # Node 3 left the replicated system but still exists on the net.
    cluster.partition([1, 2, 3], [4, 5])
    cluster.run_for(2.0)
    cluster.heal()
    cluster.run_for(2.0)
    busy[0] = False
    cluster.run_for(3.0)

    cluster.assert_converged()
    assert client.completed > 100
    state = cluster.replicas[5].database.state
    assert state["total"] >= client.completed
    servers = cluster.replicas[1].engine.queue.servers
    assert servers == [1, 2, 4, 5]
