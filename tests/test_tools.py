"""Tests for the scenario runner and the timeline renderer."""

import json

import pytest

from repro.core import ReplicaCluster
from repro.tools import (ScenarioError, render_timeline, run_scenario,
                         state_changes, summarize_time_in_state)
from repro.tools.obsreport import main as obsreport_main
from repro.tools.scenario import main as scenario_main


BASIC = {
    "replicas": 3,
    "seed": 1,
    "settle": 2.0,
    "steps": [
        {"op": "submit", "node": 1, "update": ["SET", "k", 42]},
        {"op": "run", "seconds": 1.0},
        {"op": "check", "kind": "converged"},
        {"op": "check", "kind": "key", "node": 2, "key": "k",
         "value": 42},
    ],
}


class TestScenarioRunner:
    def test_basic_scenario(self):
        report = run_scenario(BASIC)
        assert report.steps_executed == 4
        assert report.submissions == 1
        assert report.completions == 1
        assert report.checks_passed == 2
        assert all(state == "RegPrim"
                   for state in report.final_states.values())

    def test_partition_and_primary_check(self):
        spec = {
            "replicas": 5, "seed": 2, "settle": 2.0,
            "steps": [
                {"op": "partition", "groups": [[1, 2], [3, 4, 5]],
                 "settle": 2.0},
                {"op": "check", "kind": "primary_is",
                 "members": [3, 4, 5]},
                {"op": "check", "kind": "single_primary"},
                {"op": "heal", "settle": 3.0},
                {"op": "check", "kind": "converged"},
            ],
        }
        report = run_scenario(spec)
        assert report.checks_passed == 3

    def test_crash_recover_join_leave_ops(self):
        spec = {
            "replicas": 3, "seed": 3, "settle": 2.0,
            "steps": [
                {"op": "crash", "node": 3},
                {"op": "submit", "node": 1,
                 "update": ["SET", "survived", True]},
                {"op": "run", "seconds": 1.0},
                {"op": "recover", "node": 3, "settle": 3.0},
                {"op": "join", "node": 4, "peer": 2, "settle": 6.0},
                {"op": "check", "kind": "key", "node": 4,
                 "key": "survived", "value": True},
                {"op": "leave", "node": 1, "settle": 3.0},
                {"op": "check", "kind": "prefix"},
            ],
        }
        report = run_scenario(spec)
        assert report.checks_passed == 2
        assert report.final_states[1] == "exited"

    def test_failed_check_raises(self):
        spec = dict(BASIC)
        spec["steps"] = [
            {"op": "check", "kind": "key", "node": 1, "key": "missing",
             "value": 1},
        ]
        with pytest.raises(ScenarioError):
            run_scenario(spec)

    def test_unknown_op_rejected(self):
        with pytest.raises(ScenarioError):
            run_scenario({"replicas": 3,
                          "steps": [{"op": "explode"}]})

    def test_unknown_check_rejected(self):
        with pytest.raises(ScenarioError):
            run_scenario({"replicas": 3,
                          "steps": [{"op": "check", "kind": "what"}]})

    def test_cli_main(self, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(BASIC))
        assert scenario_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "completions=1" in out

    def test_cli_json_output(self, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(BASIC))
        assert scenario_main([str(path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["checks_passed"] == 2


SHARDED = {
    "shards": 2,
    "replicas": 3,
    "seed": 0,
    "steps": [
        # "a" lives in shard 1, "b" in shard 0 (pinned in the router
        # tests), so the pair below is a genuine cross-shard txn.
        {"op": "txn", "update": ["SET", "b", 1]},
        {"op": "txn", "update": [["SET", "b2", 2], ["SET", "a", 3]]},
        {"op": "run", "seconds": 6.0},
        {"op": "check", "kind": "txns", "commits": 2, "aborts": 0},
        {"op": "check", "kind": "key", "key": "a", "value": 3},
        {"op": "check", "kind": "converged"},
    ],
}


class TestShardScenarioRunner:
    def test_sharded_scenario(self):
        report = run_scenario(SHARDED)
        assert report.submissions == 2
        assert report.completions == 2
        assert report.checks_passed == 3
        # Final states and green counts are reported per global node /
        # per shard.
        assert sorted(report.final_states) == [1, 2, 3, 101, 102, 103]
        assert sorted(report.final_green_counts) == [0, 1]

    def test_partition_heal_and_recovery_ops(self):
        spec = {
            "shards": 2, "replicas": 3, "seed": 0,
            "steps": [
                {"op": "partition", "groups": [[101], [102], [103]],
                 "settle": 1.0},
                {"op": "heal", "settle": 2.0},
                {"op": "crash", "node": 1},
                {"op": "recover", "node": 1, "settle": 2.0},
                {"op": "recover_txns"},
                {"op": "check", "kind": "converged"},
            ],
        }
        report = run_scenario(spec)
        assert report.checks_passed == 1

    def test_sharded_scenarios_are_sim_only(self):
        with pytest.raises(ScenarioError):
            run_scenario(dict(SHARDED, runtime="asyncio"))

    def test_failed_txn_check_raises(self):
        spec = dict(SHARDED)
        spec["steps"] = [{"op": "check", "kind": "txns", "commits": 5}]
        with pytest.raises(ScenarioError):
            run_scenario(spec)

    def test_shards_cli_flag_overrides_spec(self, tmp_path, capsys):
        # An unsharded spec with routed steps becomes a fabric run when
        # --shards is passed.
        spec = {"replicas": 3, "seed": 0,
                "steps": [{"op": "txn", "update": ["SET", "b", 1]},
                          {"op": "run", "seconds": 4.0},
                          {"op": "check", "kind": "converged"}]}
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(spec))
        assert scenario_main([str(path), "--shards", "2", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["checks_passed"] == 1
        assert "101" in report["final_states"]


class TestObsReport:
    def test_builtin_workload_prints_latency_table(self, capsys):
        assert obsreport_main(["--replicas", "3",
                               "--actions", "12"]) == 0
        out = capsys.readouterr().out
        assert "red->green" in out and "submit->green" in out
        # Header plus one row per replica in the latency table (the
        # staleness table follows after a blank line).
        latency_table = out.strip().split("\n\n")[0]
        assert len(latency_table.splitlines()) == 2 + 3
        assert "staleness ms" in out

    def test_json_report_is_complete(self, capsys):
        assert obsreport_main(["--json", "--replicas", "3",
                               "--actions", "8"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert sorted(doc["replicas"]) == ["1", "2", "3"]
        for entry in doc["replicas"].values():
            assert entry["actions_completed"] >= 8
            assert entry["forced_writes"] > 0
            assert entry["syncs"] > 0
            # The built-in workload injects a partition/heal cycle.
            assert entry["membership_changes"] >= 2
            assert entry["vulnerable_windows"] >= 1
            percentiles = entry["submit_to_green"]
            assert 0.0 <= percentiles["p50"] <= percentiles["p99"]

    def test_scenario_spec_report(self, tmp_path, capsys):
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(BASIC))
        assert obsreport_main([str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["replicas"]["1"]["actions_completed"] >= 1

    def test_shard_report_groups_replicas(self, capsys):
        assert obsreport_main(["--json", "--shards", "2",
                               "--replicas", "3", "--actions", "20"]) == 0
        doc = json.loads(capsys.readouterr().out)
        # The flat per-replica table keeps its shape (single-group
        # consumers never notice)...
        for entry in doc["replicas"].values():
            assert "actions_completed" in entry
            assert "forced_writes" in entry
        # ...and the fabric run gains the per-shard grouping.
        assert sorted(doc["shards"]) == ["0", "1"]
        assert doc["shards"]["0"]["replicas"] == ["1", "2", "3"]
        assert doc["shards"]["1"]["replicas"] == ["101", "102", "103"]
        for entry in doc["shards"].values():
            assert entry["actions_completed"] > 0


class TestTimeline:
    def traced_cluster(self):
        cluster = ReplicaCluster(n=3, seed=5, trace=True)
        cluster.start_all(settle=2.0)
        cluster.partition([1], [2, 3])
        cluster.run_for(2.0)
        cluster.heal()
        cluster.run_for(2.0)
        return cluster

    def test_state_changes_ordered(self):
        cluster = self.traced_cluster()
        changes = state_changes(cluster.tracer)
        assert changes
        times = [r.time for r in changes]
        assert times == sorted(times)

    def test_render_timeline_mentions_primary(self):
        cluster = self.traced_cluster()
        text = render_timeline(cluster.tracer)
        assert "PRIMARY" in text
        assert "non-prim" in text
        assert text.count("\n") > 3

    def test_render_empty_tracer(self):
        from repro.sim import Tracer
        assert "no engine state changes" in render_timeline(Tracer())

    def test_time_in_state_accounts_for_everything(self):
        cluster = self.traced_cluster()
        now = cluster.sim.now
        totals = summarize_time_in_state(cluster.tracer, 1, until=now)
        assert totals
        assert sum(totals.values()) == pytest.approx(now, abs=0.01)
        assert totals.get("RegPrim", 0) > 0
