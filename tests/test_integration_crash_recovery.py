"""Crash/recovery integration: A.13 plus the vulnerable mechanism."""

import pytest

from repro.core import EngineState

from conftest import make_cluster


@pytest.fixture
def loaded_cluster():
    """A 3-replica cluster with 6 committed actions."""
    cluster = make_cluster(3)
    cluster.start_all(settle=1.0)
    client = cluster.client(1)
    for i in range(6):
        client.submit(("SET", f"k{i}", i))
    cluster.run_for(1.0)
    assert client.completed == 6
    return cluster


def test_crash_of_minority_member_keeps_primary(loaded_cluster):
    c = loaded_cluster
    c.crash(3)
    c.run_for(1.5)
    assert sorted(c.primary_members()) == [1, 2]
    client = c.client(1)
    client.submit(("SET", "while-down", 1))
    c.run_for(0.5)
    assert client.completed == 1


def test_recovered_replica_catches_up(loaded_cluster):
    c = loaded_cluster
    c.crash(3)
    c.run_for(1.0)
    client = c.client(1)
    for i in range(3):
        client.submit(("SET", f"down{i}", i))
    c.run_for(1.0)
    c.recover(3)
    c.run_for(2.0)
    c.assert_converged()
    assert c.replicas[3].database.state["down2"] == 2


def test_recovery_restores_durable_prefix(loaded_cluster):
    c = loaded_cluster
    # Let checkpoints flush, then crash and recover in isolation.
    c.run_for(1.0)
    c.partition([1, 2], [3])
    c.run_for(1.0)
    c.crash(3)
    c.run_for(0.5)
    c.recover(3)
    c.run_for(1.5)
    engine = c.replicas[3].engine
    # Alone, it cannot form a primary, but its durable greens survive.
    assert engine.state is EngineState.NON_PRIM
    assert engine.queue.green_count == 6
    c.heal()
    c.run_for(2.0)
    c.assert_converged()


def test_majority_crash_blocks_then_heals(loaded_cluster):
    c = loaded_cluster
    c.crash(1)
    c.crash(2)
    c.run_for(1.5)
    # 3 alone: 1 of 3 of the last primary -> no quorum.
    assert c.primary_members() == []
    c.recover(1)
    c.recover(2)
    c.run_for(2.5)
    assert len(c.primary_members()) == 3
    c.assert_converged()


def test_full_cluster_crash_requires_full_exchange(loaded_cluster):
    """If all servers of the primary crash, they all must exchange
    information before a new primary can form (Section 5)."""
    c = loaded_cluster
    for node in (1, 2, 3):
        c.crash(node)
    c.run_for(0.5)
    c.recover(1)
    c.recover(2)
    c.run_for(2.5)
    # 1 and 2 are a majority of the old primary, but 3 may hold
    # knowledge of safe messages only it processed: because all three
    # crashed while vulnerable, the attempt cannot be resolved without
    # node 3's state.
    assert c.primary_members() == []
    c.recover(3)
    c.run_for(2.5)
    assert len(c.primary_members()) == 3
    c.assert_converged()


def test_partial_crash_recovery_is_consistent(loaded_cluster):
    c = loaded_cluster
    c.crash(2)
    c.run_for(1.0)
    client = c.client(1)
    client.submit(("SET", "gap", "missed-by-2"))
    c.run_for(0.5)
    c.crash(1)
    c.run_for(0.5)
    c.recover(1)
    c.recover(2)
    c.run_for(3.0)
    c.assert_converged()
    assert c.replicas[2].database.state.get("gap") == "missed-by-2"


def test_client_state_survives_recovery(loaded_cluster):
    """Actions journaled in the ongoingQueue are re-marked red on
    recovery (A.13) and eventually ordered."""
    c = loaded_cluster
    # Partition node 1 so its new action stays red (non-primary).
    c.partition([1], [2, 3])
    c.run_for(1.0)
    c.replicas[1].submit(("SET", "journaled", 1))
    c.run_for(0.5)
    c.crash(1)
    c.run_for(0.3)
    c.recover(1)
    c.run_for(1.0)
    # The recovered replica re-marked its own journaled action red.
    engine = c.replicas[1].engine
    reds = [a.action_id.server_id for a in engine.queue.red_actions()]
    assert 1 in reds
    c.heal()
    c.run_for(2.5)
    c.assert_converged()
    assert c.replicas[3].database.state.get("journaled") == 1
