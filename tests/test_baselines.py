"""Tests for the COReL and 2PC baselines."""

import pytest

from repro.baselines import CorelSystem, EngineSystem, TwoPCSystem
from repro.gcs import GcsSettings
from repro.storage import DiskProfile


def fast_disk():
    return DiskProfile(forced_write_latency=0.001)


def fast_gcs():
    return GcsSettings(heartbeat_interval=0.02, failure_timeout=0.08,
                       gather_settle=0.02, phase_timeout=0.15)


class TestCorel:
    def make(self, n=3):
        system = CorelSystem(n, disk_profile=fast_disk(),
                             gcs_settings=fast_gcs())
        system.start(settle=0.5)
        return system

    def run_actions(self, system, submissions):
        done = []
        for node, update in submissions:
            system.submit(node, update, lambda: done.append(1))
        system.sim.run(until=system.sim.now + 1.0)
        return done

    def test_commit_requires_all_acks_then_completes(self):
        system = self.make()
        done = self.run_actions(system, [(1, ("SET", "k", 1))])
        assert done == [1]
        for replica in system.replicas.values():
            assert replica.committed == 1
            assert replica.db_state == {"k": 1}

    def test_identical_commit_order_across_replicas(self):
        system = self.make()
        submissions = [(1 + i % 3, ("SET", f"k{i}", i)) for i in range(9)]
        done = self.run_actions(system, submissions)
        assert len(done) == 9
        logs = [r.applied_log for r in system.replicas.values()]
        assert logs[0] == logs[1] == logs[2]

    def test_every_replica_forces_every_action(self):
        system = self.make()
        self.run_actions(system, [(1, ("SET", "k", i)) for i in range(4)])
        counters = system.counters()
        # 1 forced write per action per replica: 4 actions x 3 replicas.
        assert counters["forced_writes"] >= 12

    def test_partition_stalls_commits(self):
        """Without all acks, COReL cannot commit (this is the cost of
        per-action end-to-end acknowledgment)."""
        system = self.make()
        done = self.run_actions(system, [(1, ("SET", "a", 1))])
        assert done == [1]
        system.topology.partition([[1], [2, 3]])
        system.sim.run(until=system.sim.now + 1.0)
        before = system.replicas[2].committed
        system.submit(2, ("SET", "b", 2), lambda: done.append(2))
        system.sim.run(until=system.sim.now + 1.0)
        # The action commits within the majority view {2,3} once its
        # members ack; replica 1 cannot have it.
        assert system.replicas[1].db_state.get("b") is None


class TestTwoPC:
    def make(self, n=3, timeout=5.0):
        system = TwoPCSystem(n, disk_profile=fast_disk(), timeout=timeout)
        system.start(settle=0.1)
        return system

    def test_commit_applies_everywhere(self):
        system = self.make()
        done = []
        system.submit(1, ("SET", "k", "v"), lambda: done.append(1))
        system.sim.run(until=system.sim.now + 1.0)
        assert done == [1]
        for replica in system.replicas.values():
            assert replica.db_state == {"k": "v"}

    def test_two_forced_writes_in_critical_path(self):
        system = self.make()
        done = []
        system.submit(1, ("SET", "k", "v"), lambda: done.append(1))
        system.sim.run(until=system.sim.now + 1.0)
        coordinator = system.replicas[1]
        # prepare (participant role) + commit (coordinator role).
        assert coordinator.disk.forced_writes == 2

    def test_lock_conflicts_resolved_by_wait_die(self):
        system = self.make()
        done = []
        system.submit(1, ("SET", "hot", 1), lambda: done.append("a"))
        system.submit(2, ("SET", "hot", 2), lambda: done.append("b"))
        system.sim.run(until=system.sim.now + 2.0)
        # Wait-die aborts the younger conflicting transaction instead
        # of deadlocking; the older one commits everywhere.
        assert done == ["a"]
        assert system.counters()["aborted"] == 1
        values = {r.db_state["hot"] for r in system.replicas.values()}
        assert values == {1}

    def test_distinct_keys_run_concurrently(self):
        system = self.make()
        done = []
        for i in range(6):
            system.submit(1 + i % 3, ("SET", f"k{i}", i),
                          lambda: done.append(1))
        system.sim.run(until=system.sim.now + 2.0)
        assert len(done) == 6
        logs = [r.applied_log for r in system.replicas.values()]
        assert all(len(log) == 6 for log in logs)

    def test_partition_aborts_coordinator_side(self):
        system = self.make(timeout=0.5)
        system.topology.partition([[1], [2, 3]])
        done = []
        system.submit(1, ("SET", "k", 1), lambda: done.append(1))
        system.sim.run(until=system.sim.now + 2.0)
        assert done == []
        assert system.counters()["aborted"] == 1
        # Locks released after abort: a later transaction proceeds.
        system.topology.heal()
        system.submit(2, ("SET", "k", 2), lambda: done.append(2))
        system.sim.run(until=system.sim.now + 2.0)
        assert done == [2]


class TestEngineAdapter:
    def test_engine_system_api(self):
        system = EngineSystem(3, gcs_settings=fast_gcs(),
                              disk_profile=fast_disk())
        system.start(settle=1.0)
        done = []
        system.submit(1, ("SET", "k", 1), lambda: done.append(1))
        system.sim.run(until=system.sim.now + 1.0)
        assert done == [1]
        counters = system.counters()
        assert counters["greens"] == 3  # one action green at 3 replicas
        assert system.nodes == [1, 2, 3]
