"""Wire batching end to end: reliable channels, membership boundaries,
cluster convergence, and cross-runtime conformance with batching on.

The batching layer must be *transparent*: same green order, same
digests, same protocol decisions — only the datagram count changes.
"""

import pytest

from test_runtime_conformance import (EXPECTED_GREEN, EXPECTED_MODES,
                                      EXPECTED_VIEWS, NODES, _live_trace,
                                      _sim_trace)

from repro.core import ReplicaCluster
from repro.core.state_machine import EngineState
from repro.gcs import GcsSettings, ReliableChannelEndpoint
from repro.net import Network, NetworkProfile, Topology, WireBatchConfig
from repro.net.batching import WireBatcher
from repro.sim import RandomStreams, Simulator

WIRE = WireBatchConfig(max_batch=16)


# ----------------------------------------------------------------------
# reliable channels through a batcher
# ----------------------------------------------------------------------
def make_batched_pair(loss_rate=0.0, seed=0, max_batch=8,
                      ack_delay=0.0005):
    sim = Simulator()
    topo = Topology([1, 2])
    net = Network(sim, topo, NetworkProfile(loss_rate=loss_rate,
                                            jitter=0.0),
                  rng=RandomStreams(seed).stream("network"))
    config = WireBatchConfig(max_batch=max_batch, ack_delay=ack_delay)
    inbox = {1: [], 2: []}
    endpoints = {}
    for node in (1, 2):
        batcher = WireBatcher(sim, node, net, config)
        endpoints[node] = ReliableChannelEndpoint(
            sim, node, net,
            lambda peer, payload, node=node: inbox[node].append(
                (peer, payload)),
            retransmit_interval=0.05, batcher=batcher,
            ack_delay=ack_delay)
    for node in (1, 2):
        net.attach(node, endpoints[node].on_datagram)
        endpoints[node].start()
    return sim, topo, net, endpoints, inbox


def test_batched_channel_delivers_in_order_with_fewer_datagrams():
    sim, _t, net, endpoints, inbox = make_batched_pair()
    for i in range(50):
        endpoints[1].send(2, f"m{i}")
    sim.run(until=1.0)
    assert [p for _peer, p in inbox[2]] == [f"m{i}" for i in range(50)]

    # Unbatched reference: same workload, classic one-ack-per-payload.
    sim2 = Simulator()
    topo2 = Topology([1, 2])
    net2 = Network(sim2, topo2, NetworkProfile(jitter=0.0),
                   rng=RandomStreams(0).stream("network"))
    sink = []
    e1 = ReliableChannelEndpoint(sim2, 1, net2, lambda p, m: None)
    e2 = ReliableChannelEndpoint(sim2, 2, net2,
                                 lambda p, m: sink.append(m))
    net2.attach(1, e1.on_datagram)
    net2.attach(2, e2.on_datagram)
    e1.start()
    e2.start()
    for i in range(50):
        e1.send(2, f"m{i}")
    sim2.run(until=1.0)
    assert len(sink) == 50
    assert net.datagrams_sent < net2.datagrams_sent


def test_ack_coalescing_saves_acks():
    sim, _t, _n, endpoints, inbox = make_batched_pair()
    for i in range(40):
        endpoints[1].send(2, i)
    sim.run(until=1.0)
    assert [p for _peer, p in inbox[2]] == list(range(40))
    # The receiver covered many payloads per cumulative ChanAck.
    assert endpoints[2].acks_coalesced > 0
    # And every send is acked: nothing left outstanding to retransmit.
    assert endpoints[1].unacked(2) == 0


def test_partially_acked_batch_retransmits_go_back_n():
    sim, topo, _n, endpoints, inbox = make_batched_pair()
    # First wave commits and is acked.
    for i in range(5):
        endpoints[1].send(2, i)
    sim.run(until=0.5)
    assert endpoints[1].unacked(2) == 0
    # Cut the link mid-stream: the second wave (some batched together)
    # is lost in flight or buffered, then the link heals.
    topo.partition([[1], [2]])
    for i in range(5, 12):
        endpoints[1].send(2, i)
    sim.run(until=0.3)
    assert endpoints[1].unacked(2) > 0
    topo.heal()
    sim.run(until=2.0)
    # Go-back-N recovered exactly the unacked suffix: in order, no
    # duplicates, nothing skipped.
    assert [p for _peer, p in inbox[2]] == list(range(12))
    assert endpoints[1].unacked(2) == 0


def test_batched_channel_under_loss():
    sim, _t, _n, endpoints, inbox = make_batched_pair(loss_rate=0.3,
                                                      seed=7)
    for i in range(20):
        endpoints[1].send(2, i)
    sim.run(until=10.0)
    assert [p for _peer, p in inbox[2]] == list(range(20))


# ----------------------------------------------------------------------
# full cluster: transparency and membership boundaries
# ----------------------------------------------------------------------
def _run_scenario(gcs_settings):
    """Boot 5 nodes, commit, partition mid-traffic, commit on the
    majority, heal, converge.  Returns the protocol observables."""
    cluster = ReplicaCluster(n=5, seed=21, gcs_settings=gcs_settings)
    greens = {n: [] for n in cluster.replicas}
    for node, replica in cluster.replicas.items():
        replica.add_green_listener(
            lambda a, _p, _r, _n=node: greens[_n].append(
                tuple(a.action_id)))
    cluster.start_all(settle=2.0)
    client = cluster.client(1)
    for i in range(30):
        client.submit(("SET", f"k{i}", i))
    # Partition while data/stamp/ack traffic is still in flight: any
    # frame buffered for the old view must flush at the boundary.
    cluster.run_for(0.05)
    cluster.partition([1, 2, 3], [4, 5])
    cluster.run_for(2.0)
    majority = cluster.client(2)
    for i in range(10):
        majority.submit(("SET", f"maj{i}", i))
    cluster.run_for(2.0)
    cluster.heal()
    cluster.run_for(4.0)
    cluster.assert_converged()
    digests = {n: r.database.digest()
               for n, r in cluster.replicas.items()}
    return greens, digests, cluster


def test_batched_cluster_matches_unbatched_green_order():
    greens_plain, digests_plain, _c = _run_scenario(GcsSettings())
    greens_batched, digests_batched, cluster = _run_scenario(
        GcsSettings(wire=WIRE))
    # Transparent: identical green order at every node, identical state.
    assert greens_batched == greens_plain
    assert set(digests_batched.values()) == set(digests_plain.values())
    # And the batcher actually coalesced something.
    batchers = [r.batcher for r in cluster.replicas.values()]
    assert all(b is not None for b in batchers)
    assert sum(b.frames_sent for b in batchers) \
        < sum(b.payloads_sent for b in batchers)


def test_no_payload_straddles_membership_change():
    cluster = ReplicaCluster(n=5, seed=4, gcs_settings=GcsSettings(
        wire=WIRE))
    cluster.start_all(settle=2.0)
    client = cluster.client(1)
    for i in range(20):
        client.submit(("SET", f"k{i}", i))
    cluster.run_for(0.02)        # traffic still in flight
    cluster.partition([1, 2, 3], [4, 5])
    cluster.run_for(2.0)
    # Membership settled on both sides: every batcher flushed at the
    # view boundary; nothing from the old view lingers in a buffer.
    for replica in cluster.replicas.values():
        assert replica.batcher.pending_payloads() == 0
    cluster.heal()
    cluster.run_for(4.0)
    cluster.assert_converged()


def test_crashed_node_drops_buffered_frames():
    cluster = ReplicaCluster(n=5, seed=9, gcs_settings=GcsSettings(
        wire=WIRE))
    cluster.start_all(settle=2.0)
    client = cluster.client(2)
    for i in range(20):
        client.submit(("SET", f"k{i}", i))
    cluster.run_for(0.02)
    cluster.replicas[2].crash()
    assert cluster.replicas[2].batcher.pending_payloads() == 0
    cluster.run_for(4.0)
    survivors = [n for n in cluster.replicas if n != 2]
    digests = {cluster.replicas[n].database.digest() for n in survivors}
    assert len(digests) == 1
    assert all(cluster.replicas[n].engine.state == EngineState.REG_PRIM
               for n in survivors)


def test_batched_runs_are_deterministic():
    def run():
        _greens, digests, cluster = _run_scenario(GcsSettings(wire=WIRE))
        return (cluster.sim.events_processed,
                cluster.network.datagrams_sent, sorted(digests.items()))
    assert run() == run()


# ----------------------------------------------------------------------
# cross-runtime conformance with batching on
# ----------------------------------------------------------------------
def test_conformance_with_batching_enabled():
    """The conformance scenario's protocol trace is unchanged by
    batching, on the simulator *and* on real asyncio."""
    sim = _sim_trace(wire=WIRE)
    live = _live_trace(wire=WIRE)
    for trace in (sim, live):
        assert trace["greens"] == {n: EXPECTED_GREEN for n in NODES}
        assert trace["modes"] == EXPECTED_MODES
        assert trace["views"] == EXPECTED_VIEWS
        assert len(set(trace["digests"].values())) == 1
    assert set(sim["digests"].values()) == set(live["digests"].values())
