"""State-machine cross-checker: fixture violations and the live tree."""

import textwrap
from pathlib import Path

import pytest

from repro.analysis import StateMachineChecker, engine_sources
from repro.analysis.state_checker import (RULE_DYNAMIC, RULE_UNDECLARED,
                                          RULE_UNGUARDED, RULE_UNREACHABLE)

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"
SRC = Path(__file__).parent.parent / "src" / "repro"


def check_source(tmp_path, source, table=None):
    path = tmp_path / "engine.py"
    path.write_text(textwrap.dedent(source))
    checker = StateMachineChecker(table=table)
    return checker.check_paths([path])


def rules(findings):
    return [f.rule for f in findings if not f.suppressed]


# ---------------------------------------------------------------------------
# seeded fixture violations
# ---------------------------------------------------------------------------

def test_fixture_undeclared_edge_detected():
    findings = StateMachineChecker().check_paths(
        [FIXTURES / "repro" / "core" / "engine.py"])
    undeclared = [f for f in findings if f.rule == RULE_UNDECLARED]
    assert len(undeclared) == 1
    assert "NON_PRIM -> REG_PRIM" in undeclared[0].message
    assert undeclared[0].path.endswith("engine.py")


def test_fixture_unguarded_handler_detected():
    findings = StateMachineChecker().check_paths(
        [FIXTURES / "repro" / "core" / "engine.py"])
    unguarded = [f for f in findings if f.rule == RULE_UNGUARDED]
    assert len(unguarded) == 1
    assert "_on_unguarded" in unguarded[0].message


def test_fixture_dynamic_transition_detected():
    findings = StateMachineChecker().check_paths(
        [FIXTURES / "repro" / "core" / "engine.py"])
    dynamic = [f for f in findings if f.rule == RULE_DYNAMIC]
    assert len(dynamic) == 1
    assert "_on_computed" in dynamic[0].message


def test_fixture_legal_edge_not_flagged():
    findings = StateMachineChecker().check_paths(
        [FIXTURES / "repro" / "core" / "engine.py"])
    assert not any("_on_legal" in f.message for f in findings)


# ---------------------------------------------------------------------------
# guard-tracking precision
# ---------------------------------------------------------------------------

def test_alias_and_elif_narrowing(tmp_path):
    findings = check_source(tmp_path, """
        class E:
            def _on_x(self, m):
                state = self.state
                if state == EngineState.REG_PRIM:
                    self._set_state(EngineState.TRANS_PRIM)
                elif state in (EngineState.EXCHANGE_STATES,
                               EngineState.EXCHANGE_ACTIONS):
                    self._set_state(EngineState.NON_PRIM)
        """)
    assert RULE_UNDECLARED not in rules(findings)
    assert RULE_UNGUARDED not in rules(findings)


def test_early_return_guard(tmp_path):
    findings = check_source(tmp_path, """
        class E:
            def _on_x(self, m):
                if self.state != EngineState.EXCHANGE_STATES:
                    return
                self._set_state(EngineState.EXCHANGE_ACTIONS)
        """)
    assert RULE_UNDECLARED not in rules(findings)
    assert RULE_UNGUARDED not in rules(findings)


def test_early_return_guard_catches_bad_edge(tmp_path):
    findings = check_source(tmp_path, """
        class E:
            def _on_x(self, m):
                if self.state != EngineState.NON_PRIM:
                    return
                self._set_state(EngineState.REG_PRIM)
        """)
    assert rules(findings).count(RULE_UNDECLARED) == 1


def test_entry_constraint_propagates_through_private_helper(tmp_path):
    # The helper has no guard of its own, but its only caller
    # constrains the state to Construct; Construct -> RegPrim is legal.
    findings = check_source(tmp_path, """
        class E:
            def _on_x(self, m):
                if self.state == EngineState.CONSTRUCT:
                    self._finish()

            def _finish(self):
                self._set_state(EngineState.REG_PRIM)
        """)
    assert RULE_UNDECLARED not in rules(findings)


def test_entry_constraint_flags_bad_edge_through_helper(tmp_path):
    findings = check_source(tmp_path, """
        class E:
            def _on_x(self, m):
                if self.state == EngineState.NON_PRIM:
                    self._finish()

            def _finish(self):
                self._set_state(EngineState.REG_PRIM)
        """)
    assert rules(findings).count(RULE_UNDECLARED) == 1


def test_public_method_entry_is_unconstrained(tmp_path):
    # A public method is externally callable: the guarded internal call
    # site must not narrow its entry, so no undeclared edge is proven.
    findings = check_source(tmp_path, """
        class E:
            def _on_x(self, m):
                if self.state == EngineState.NON_PRIM:
                    self.finish()

            def finish(self):
                self._set_state(EngineState.REG_PRIM)
        """)
    assert RULE_UNDECLARED not in rules(findings)


def test_lambda_body_is_deferred(tmp_path):
    # By the time the sync callback runs, the state may have moved:
    # the Construct guard must not count as proof of Construct->NonPrim.
    findings = check_source(tmp_path, """
        class E:
            def _on_x(self, m):
                if self.state == EngineState.CONSTRUCT:
                    self.store.sync(
                        lambda: self._set_state(EngineState.NON_PRIM))
        """)
    assert RULE_UNDECLARED not in rules(findings)


def test_set_state_narrows_constraint(tmp_path):
    # After _set_state(ExchangeStates) the tracker knows the state; a
    # second transition from there must be checked against ES, not the
    # original guard.
    findings = check_source(tmp_path, """
        class E:
            def _on_x(self, m):
                if self.state == EngineState.NON_PRIM:
                    self._set_state(EngineState.EXCHANGE_STATES)
                    self._set_state(EngineState.REG_PRIM)
        """)
    undeclared = [f for f in findings if f.rule == RULE_UNDECLARED]
    assert len(undeclared) == 1
    assert "EXCHANGE_STATES -> REG_PRIM" in undeclared[0].message


def test_universe_constraint_treated_as_unconstrained(tmp_path):
    # An if/elif chain whose branches union back to all eight states
    # proves nothing; the transition must not be reported as reachable
    # from every state.
    findings = check_source(tmp_path, """
        class E:
            def _helper(self):
                state = self.state
                if state == EngineState.TRANS_PRIM:
                    pass
                elif state == EngineState.NO:
                    pass
                self._shift()

            def _shift(self):
                self._set_state(EngineState.EXCHANGE_STATES)
        """)
    assert RULE_UNDECLARED not in rules(findings)


# ---------------------------------------------------------------------------
# unreachable declared edges
# ---------------------------------------------------------------------------

def test_unreachable_declared_edge_detected(tmp_path):
    table = {
        "NON_PRIM": frozenset({"EXCHANGE_STATES"}),
        "EXCHANGE_STATES": frozenset({"CONSTRUCT"}),   # never taken
        "CONSTRUCT": frozenset(),
    }
    findings = check_source(tmp_path, """
        class E:
            def _on_x(self, m):
                if self.state == EngineState.NON_PRIM:
                    self._set_state(EngineState.EXCHANGE_STATES)
        """, table=table)
    unreachable = [f for f in findings if f.rule == RULE_UNREACHABLE]
    assert len(unreachable) == 1
    assert "EXCHANGE_STATES -> CONSTRUCT" in unreachable[0].message


def test_no_set_state_means_no_unreachable_noise(tmp_path):
    path = tmp_path / "plain.py"
    path.write_text("class C:\n    def f(self):\n        return 1\n")
    assert StateMachineChecker().check_paths([path]) == []


# ---------------------------------------------------------------------------
# the live tree
# ---------------------------------------------------------------------------

def test_live_engine_is_clean():
    files = engine_sources(SRC)
    assert any(f.name == "engine.py" for f in files)
    findings = [f for f in StateMachineChecker().check_paths(files)
                if not f.suppressed]
    assert findings == [], "\n".join(f.format() for f in findings)


def test_live_engine_witnesses_every_declared_edge():
    # Every Figure-4 edge in the declared table corresponds to an
    # actual _set_state call site (checked via: adding a bogus edge
    # produces an unreachable-edge finding, the real table produces
    # none — covered by test_live_engine_is_clean).
    from repro.analysis.state_checker import default_state_table
    table = {s: set(targets) for s, targets in
             default_state_table().items()}
    table["EXCHANGE_STATES"] = \
        frozenset(table["EXCHANGE_STATES"]) | {"CONSTRUCT"}
    table = {s: frozenset(t) for s, t in table.items()}
    findings = StateMachineChecker(table=table).check_paths(
        engine_sources(SRC))
    unreachable = [f for f in findings if f.rule == RULE_UNREACHABLE]
    assert len(unreachable) == 1
    assert "EXCHANGE_STATES -> CONSTRUCT" in unreachable[0].message
