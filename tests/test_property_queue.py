"""Property-based tests of the ActionQueue marking invariants."""

from hypothesis import given, settings, strategies as st

from repro.core import ActionQueue, Color
from repro.db import Action, ActionId

SERVERS = [1, 2, 3]


def action(server, index):
    return Action(action_id=ActionId(server, index))


# An operation script: each entry picks a server and an op kind.  The
# driver turns it into *valid* calls (next index per creator), so the
# test exercises long interleavings rather than input validation.
ops = st.lists(st.tuples(st.sampled_from(SERVERS),
                         st.sampled_from(["red", "green", "green_red",
                                          "line", "truncate"])),
               min_size=1, max_size=120)


@settings(max_examples=60, deadline=None)
@given(ops)
def test_queue_invariants_hold_under_any_interleaving(script):
    queue = ActionQueue(SERVERS)
    next_index = {s: 1 for s in SERVERS}
    greens = []
    reds = {}

    for server, op in script:
        if op == "red":
            act = action(server, next_index[server])
            next_index[server] += 1
            assert queue.mark_red(act)
            reds[act.action_id] = act
        elif op == "green":
            act = action(server, next_index[server])
            next_index[server] += 1
            queue.mark_green(act)
            reds.pop(act.action_id, None)
            greens.append(act.action_id)
        elif op == "green_red":
            # Promote the oldest red of this server, if FIFO allows
            # (i.e. it is the server's lowest-index red action).
            candidates = queue.red_actions_of(server)
            if candidates:
                act = candidates[0]
                queue.mark_green(act)
                reds.pop(act.action_id, None)
                greens.append(act.action_id)
        elif op == "line":
            queue.set_green_line(server, queue.green_count)
        elif op == "truncate":
            queue.truncate_white()

        # --- invariants ------------------------------------------------
        # 1. Green count equals greens issued.
        assert queue.green_count == len(greens)
        # 2. Surviving green positions match issue order.
        for position, action_id in enumerate(greens):
            got = queue.green_position(action_id)
            if position >= queue.green_offset:
                assert got == position
            else:
                assert got is None  # truncated white
        # 3. Reds are exactly the not-yet-promoted accepted actions.
        assert {a.action_id for a in queue.red_actions()} == set(reds)
        # 4. The red cut covers every known action contiguously.
        for s in SERVERS:
            assert queue.red_cut[s] == next_index[s] - 1 or \
                queue.red_cut[s] <= next_index[s] - 1
        # 5. White line never exceeds any green line.
        assert queue.white_line <= min(queue.green_lines.values())
        # 6. Truncation never cuts beyond the white line.
        assert queue.green_offset <= queue.white_line or \
            queue.green_offset <= queue.green_count


@settings(max_examples=40, deadline=None)
@given(st.lists(st.sampled_from(SERVERS), min_size=1, max_size=60))
def test_interleaved_greens_keep_per_creator_fifo(order):
    queue = ActionQueue(SERVERS)
    next_index = {s: 1 for s in SERVERS}
    for server in order:
        queue.mark_green(action(server, next_index[server]))
        next_index[server] += 1
    # Per creator, green positions are increasing in action index.
    for server in SERVERS:
        positions = [queue.green_position(ActionId(server, i))
                     for i in range(1, next_index[server])]
        assert positions == sorted(positions)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=30), min_size=1,
                max_size=30))
def test_out_of_order_reds_rejected(indices):
    queue = ActionQueue([1])
    expected_cut = 0
    for index in indices:
        accepted = queue.mark_red(action(1, index))
        assert accepted == (index == expected_cut + 1)
        if accepted:
            expected_cut = index
