"""Model checker, mutation self-tests, coverage pin, and TLA+ export."""

import json

import pytest

from repro.check.coverage import (DIRECTED_TRACES, all_declared_edges,
                                  live_edges, measure_coverage,
                                  run_trace)
from repro.check.mc import ModelChecker, run_check
from repro.check.model import ModelConfig
from repro.check.mutations import MUTATIONS, apply_mutation
from repro.check.tla import MODULE_NAME, edge_count, export_tla
from repro.core.state_machine import EVS_SHADOWED_EDGES


class TestCleanExploration:
    def test_two_nodes_full_budget_is_violation_free(self):
        result = run_check(nodes=2, depth=12, max_faults=2,
                           max_crashes=1, max_actions=1)
        assert result.ok, [v.format() for v in result.violations]
        assert result.complete
        assert result.states > 1000
        assert result.quiescent_states > 0
        assert result.depth_reached == 12

    def test_three_nodes_shallow_is_violation_free(self):
        result = run_check(nodes=3, depth=8, max_faults=1,
                           max_crashes=0, max_actions=0)
        assert result.ok, [v.format() for v in result.violations]
        assert result.complete

    def test_static_majority_policy_is_violation_free(self):
        result = run_check(nodes=2, depth=10, max_faults=2,
                           max_crashes=0, max_actions=1,
                           quorum="static-majority")
        assert result.ok, [v.format() for v in result.violations]

    def test_result_serializes_to_json(self):
        result = run_check(nodes=2, depth=6, max_faults=1,
                           max_crashes=0, max_actions=0)
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["states"] == result.states
        assert payload["complete"] is True
        assert payload["violations"] == []

    def test_max_states_budget_marks_incomplete(self):
        config = ModelConfig(nodes=2, max_faults=2, max_crashes=1,
                             max_actions=1)
        result = ModelChecker(config, max_depth=12,
                              max_states=50).run()
        assert not result.complete


class TestMutationSelfTest:
    """The checker must *rediscover* both historical wedges when the
    corresponding fix is reverted in the model — proof it would have
    caught them."""

    def test_cpc_drop_rediscovers_construct_stuck(self):
        result = run_check(nodes=2, depth=8, mutate="cpc-drop",
                           max_faults=0, max_crashes=0, max_actions=1)
        rules = {(v.kind, v.rule) for v in result.violations}
        assert ("wedge", "construct-stuck") in rules
        wedge = next(v for v in result.violations
                     if v.rule == "construct-stuck")
        # BFS minimality: the counterexample trace IS the depth.
        assert len(wedge.trace) == wedge.depth
        assert wedge.trace[0].startswith("form_view")

    def test_exact_half_tie_rediscovers_quorum_wedge(self):
        result = run_check(nodes=2, depth=10, mutate="exact-half-tie",
                           max_faults=1, max_crashes=0, max_actions=0)
        rules = {(v.kind, v.rule) for v in result.violations}
        assert ("wedge", "quorum-wedge") in rules
        wedge = next(v for v in result.violations
                     if v.rule == "quorum-wedge")
        assert any(step.startswith("partition") for step in wedge.trace)

    def test_unmutated_runs_find_neither_wedge(self):
        for name in MUTATIONS:
            clean = run_check(nodes=2, depth=8, max_faults=1,
                              max_crashes=0, max_actions=1)
            assert clean.ok, (name, [v.rule for v in clean.violations])

    def test_mutation_registry_shape(self):
        assert set(MUTATIONS) == {"exact-half-tie", "cpc-drop"}
        for name, entry in MUTATIONS.items():
            mutated = apply_mutation(ModelConfig(), name)
            assert mutated != ModelConfig()
            assert entry["expected_rule"] in ("quorum-wedge",
                                              "construct-stuck")

    def test_unknown_mutation_is_rejected(self):
        with pytest.raises(ValueError):
            apply_mutation(ModelConfig(), "no-such-mutation")


class TestCoverage:
    def test_every_live_edge_is_exercised(self):
        report = measure_coverage()
        assert report.ok, report.to_dict()
        assert report.uncovered == set()          # the pin: zero
        assert report.covered == live_edges()
        assert report.shadowed_exercised == set()

    def test_edge_arithmetic(self):
        assert len(all_declared_edges()) == 18
        assert len(live_edges()) == 16
        assert set(EVS_SHADOWED_EDGES) <= all_declared_edges()

    def test_directed_traces_stay_enabled(self):
        # run_trace raises if any scripted step is not enabled — the
        # deep-edge traces must not silently go stale.
        for _label, config, events in DIRECTED_TRACES:
            model = run_trace(config, events)
            assert model.edges_seen


class TestCli:
    def test_mc_clean_run_exits_zero_and_writes_report(self, tmp_path):
        from repro.check.cli import main
        out = tmp_path / "mc.json"
        rc = main(["--mc", "--nodes", "2", "--depth", "8",
                   "--max-faults", "1", "--max-crashes", "0",
                   "--max-actions", "0", "--json", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["mc"]["violations"] == []
        assert payload["mc"]["complete"] is True

    def test_expect_violation_inverts_the_exit_code(self):
        from repro.check.cli import main
        rc = main(["--mc", "--nodes", "2", "--depth", "8",
                   "--max-faults", "0", "--max-crashes", "0",
                   "--max-actions", "1", "--mutate", "cpc-drop",
                   "--expect-violation"])
        assert rc == 0
        rc = main(["--mc", "--nodes", "2", "--depth", "6",
                   "--max-faults", "0", "--max-crashes", "0",
                   "--max-actions", "0", "--expect-violation"])
        assert rc == 1  # clean run, but a violation was demanded

    def test_tla_mode_writes_the_module(self, tmp_path):
        from repro.check.cli import main
        out = tmp_path / "Figure4.tla"
        assert main(["--tla", str(out)]) == 0
        assert out.read_text(encoding="utf-8") == export_tla()

    def test_fuzz_shrink_out_writes_replayable_repro(self, tmp_path):
        from repro.check.cli import main
        out_dir = tmp_path / "repros"
        rc = main(["--fuzz", "--seeds", "1", "--first-seed", "38",
                   "--inject-bug", "--shrink", "--out", str(out_dir),
                   "--expect-violation",
                   "--json", str(tmp_path / "fuzz.json")])
        assert rc == 0
        (spec_path,) = sorted(out_dir.glob("repro-seed*.json"))
        spec = json.loads(spec_path.read_text(encoding="utf-8"))
        from repro.tools.scenario import ScenarioError, run_scenario
        with pytest.raises(ScenarioError):
            run_scenario(spec)


class TestTlaExport:
    def test_edge_count_matches_the_table(self):
        assert edge_count() == 18

    def test_module_structure(self):
        text = export_tla()
        lines = text.splitlines()
        assert lines[0] == f"---- MODULE {MODULE_NAME} ----"
        assert lines[-1].startswith("====")
        assert "EXTENDS Naturals" in text
        assert "TypeOK == state \\in [Servers -> States]" in text
        assert 'Init == state = [s \\in Servers |-> "NonPrim"]' in text
        assert "Spec == Init /\\ [][Next]_state" in text
        # One action predicate per input kind.
        for name in ("Action", "RegConf", "TransConf", "StateMsg",
                     "CpcMsg", "Client"):
            assert f"{name}(s)" in text

    def test_one_disjunct_per_declared_edge(self):
        text = export_tla()
        assert text.count('/\\ state[s] = "') == edge_count()
        # The EVS-shadowed edges are exported but annotated.
        assert text.count("EVS-shadowed") == len(EVS_SHADOWED_EDGES)
