"""Tests for Section 6 application semantics."""

import pytest

from repro.semantics import (ActiveTransactions, BlockedQuery,
                             InteractiveTransaction, InventoryStore,
                             QueryService, ReplicatedService,
                             TimestampStore, register_everywhere)

from conftest import make_cluster


@pytest.fixture
def cluster():
    c = make_cluster(3)
    c.start_all(settle=1.0)
    return c


def services(cluster):
    return {n: ReplicatedService(r) for n, r in cluster.replicas.items()}


class TestQueryServices:
    def test_consistent_query_in_primary(self, cluster):
        svc = services(cluster)
        svc[1].update(("SET", "k", "v"))
        cluster.run_for(1.0)
        assert svc[2].query(("GET", "k")) == "v"

    def test_weak_query_returns_stale_but_consistent(self, cluster):
        svc = services(cluster)
        svc[1].update(("SET", "k", "green"))
        cluster.run_for(1.0)
        cluster.partition([1], [2, 3])
        cluster.run_for(1.5)
        # Majority moves on; node 1 serves its old green state weakly.
        svc[2].update(("SET", "k", "newer"))
        cluster.run_for(1.0)
        assert svc[1].query(("GET", "k"),
                            service=QueryService.WEAK) == "green"

    def test_consistent_query_blocked_in_nonprimary(self, cluster):
        svc = services(cluster)
        cluster.partition([1], [2, 3])
        cluster.run_for(1.5)
        with pytest.raises(BlockedQuery):
            svc[1].query(("GET", "k"))

    def test_blocked_query_answers_after_rejoin(self, cluster):
        svc = services(cluster)
        svc[1].update(("SET", "k", "v0"))
        cluster.run_for(1.0)
        cluster.partition([1], [2, 3])
        cluster.run_for(1.5)
        svc[2].update(("SET", "k", "v1"))
        cluster.run_for(0.5)
        answers = []
        svc[1].query(("GET", "k"), on_result=answers.append)
        cluster.run_for(0.5)
        assert answers == []  # still partitioned
        cluster.heal()
        cluster.run_for(2.5)
        assert answers == ["v1"]

    def test_dirty_query_sees_red_actions(self, cluster):
        svc = services(cluster)
        cluster.partition([1], [2, 3])
        cluster.run_for(1.5)
        svc[1].update(("SET", "k", "red-value"))
        cluster.run_for(0.5)
        assert svc[1].query(("GET", "k"),
                            service=QueryService.DIRTY) == "red-value"
        assert svc[1].query(("GET", "k"),
                            service=QueryService.WEAK) is None


class TestTimestampSemantics:
    def test_lww_converges_across_partition(self, cluster):
        svc = services(cluster)
        stores = {n: TimestampStore(svc[n]) for n in (1, 2, 3)}
        cluster.partition([1], [2, 3])
        cluster.run_for(1.5)
        # Both sides update the same key; the newer timestamp must win
        # after merge, regardless of the final application order.
        stores[2].set("tracker", "old-position", timestamp=10.0)
        stores[1].set("tracker", "new-position", timestamp=20.0)
        cluster.run_for(0.5)
        cluster.heal()
        cluster.run_for(2.5)
        cluster.assert_converged()
        for n in (1, 2, 3):
            assert stores[n].get("tracker",
                                 QueryService.WEAK) == "new-position"

    def test_lww_older_write_ignored(self, cluster):
        svc = services(cluster)
        store = TimestampStore(svc[1])
        store.set("k", "newer", timestamp=5.0)
        cluster.run_for(0.5)
        store.set("k", "older", timestamp=1.0)
        cluster.run_for(0.5)
        assert store.get("k", QueryService.WEAK) == "newer"
        assert store.get_with_timestamp(
            "k", QueryService.WEAK) == ("newer", 5.0)


class TestCommutativeSemantics:
    def test_inventory_converges_after_partition(self, cluster):
        svc = services(cluster)
        stores = {n: InventoryStore(svc[n]) for n in (1, 2, 3)}
        stores[1].add_stock("widget", 10)
        cluster.run_for(1.0)
        cluster.partition([1], [2, 3])
        cluster.run_for(1.5)
        stores[1].take_stock("widget", 4)    # red in the minority
        stores[2].take_stock("widget", 9)    # green in the majority
        cluster.run_for(0.5)
        # Dirty view shows the local latest; may go negative later.
        assert stores[1].stock("widget") == 6
        assert stores[2].stock("widget") == 1
        cluster.heal()
        cluster.run_for(2.5)
        cluster.assert_converged()
        for n in (1, 2, 3):
            assert stores[n].stock("widget", QueryService.WEAK) == -3

    def test_temporary_negative_stock(self, cluster):
        svc = services(cluster)
        store = InventoryStore(svc[1])
        store.take_stock("rare", 2)
        cluster.run_for(1.0)
        assert store.stock("rare", QueryService.WEAK) == -2


class TestActiveActions:
    def test_procedure_runs_at_ordering_time(self, cluster):
        def apply_interest(state, rate):
            state["balance"] = round(state.get("balance", 0)
                                     * (1 + rate), 2)
            return state["balance"]

        register_everywhere(cluster, "interest", apply_interest)
        svc = services(cluster)
        svc[1].update(("SET", "balance", 100))
        cluster.run_for(0.5)
        active = ActiveTransactions(svc[2])
        results = []
        active.invoke("interest", 0.10,
                      on_complete=lambda _a, _p, r: results.append(r))
        cluster.run_for(1.0)
        assert results == [[110.0]]
        cluster.assert_converged()
        for replica in cluster.replicas.values():
            assert replica.database.state["balance"] == 110.0

    def test_deterministic_procedure_same_result_everywhere(self, cluster):
        def bump(state, _args):
            state["c"] = state.get("c", 0) + 1
            return state["c"]

        register_everywhere(cluster, "bump", bump)
        svc = services(cluster)
        active = {n: ActiveTransactions(svc[n]) for n in (1, 2, 3)}
        for n in (1, 2, 3):
            active[n].invoke("bump", None)
        cluster.run_for(1.0)
        cluster.assert_converged()
        assert cluster.replicas[1].database.state["c"] == 3


class TestInteractiveTransactions:
    def test_commit_when_read_set_unchanged(self, cluster):
        svc = services(cluster)
        svc[1].update(("SET", "seat", "free"))
        cluster.run_for(1.0)
        txn = InteractiveTransaction(svc[2])
        assert txn.read("seat") == "free"
        outcomes = []
        txn.commit({"seat": "alice"}, on_done=outcomes.append)
        cluster.run_for(1.0)
        assert outcomes == [True]
        assert txn.committed is True
        assert cluster.replicas[3].database.state["seat"] == "alice"

    def test_abort_when_read_value_changed(self, cluster):
        svc = services(cluster)
        svc[1].update(("SET", "seat", "free"))
        cluster.run_for(1.0)
        txn = InteractiveTransaction(svc[2])
        txn.read("seat")
        # A conflicting write is ordered before the certification.
        svc[1].update(("SET", "seat", "bob"))
        cluster.run_for(0.5)
        outcomes = []
        txn.commit({"seat": "alice"}, on_done=outcomes.append)
        cluster.run_for(1.0)
        assert outcomes == [False]
        assert cluster.replicas[3].database.state["seat"] == "bob"
        cluster.assert_converged()

    def test_all_replicas_agree_on_abort(self, cluster):
        """If one server aborts, all servers abort that transaction."""
        svc = services(cluster)
        svc[1].update(("SET", "x", 1))
        cluster.run_for(1.0)
        first = InteractiveTransaction(svc[2])
        second = InteractiveTransaction(svc[3])
        first.read("x")
        second.read("x")
        first.commit({"x": 2})
        second.commit({"x": 3})
        cluster.run_for(1.0)
        # Exactly one of the two optimistic transactions wins.
        assert [first.committed, second.committed].count(True) == 1
        cluster.assert_converged()

    def test_double_commit_rejected(self, cluster):
        txn = InteractiveTransaction(services(cluster)[1])
        txn.commit({})
        with pytest.raises(RuntimeError):
            txn.commit({})


class TestQueryOnlyFastPath:
    def test_answers_immediately_with_no_own_writes(self, cluster):
        svc = services(cluster)
        answers = []
        svc[2].query_after_my_writes(("GET", "k"), answers.append)
        assert answers == [None]

    def test_waits_for_own_writes_then_answers(self, cluster):
        svc = services(cluster)
        answers = []
        svc[1].update(("SET", "k", "mine"))
        # Immediately after submitting, the write is not yet ordered.
        svc[1].query_after_my_writes(("GET", "k"), answers.append)
        assert answers == []
        cluster.run_for(1.0)
        assert answers == ["mine"]

    def test_does_not_generate_an_ordered_action(self, cluster):
        svc = services(cluster)
        engine = cluster.replicas[2].engine
        before = engine.stats["client_requests"]
        svc[2].query_after_my_writes(("GET", "k"), lambda _r: None)
        cluster.run_for(0.5)
        assert engine.stats["client_requests"] == before

    def test_read_your_writes_in_nonprimary(self, cluster):
        """The fast path waits while the own write is red; it answers
        only once the write is globally ordered."""
        svc = services(cluster)
        cluster.partition([1], [2, 3])
        cluster.run_for(1.5)
        svc[1].update(("SET", "k", "red-write"))
        answers = []
        svc[1].query_after_my_writes(("GET", "k"), answers.append)
        cluster.run_for(0.5)
        assert answers == []  # own write still red
        cluster.heal()
        cluster.run_for(2.5)
        assert answers == ["red-write"]
