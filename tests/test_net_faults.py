"""Unit tests for fault scripts and random fault schedules."""

import random

from repro.net import (FaultEvent, FaultScript, Topology,
                       random_fault_schedule)
from repro.net.faults import random_partition
from repro.sim import Simulator


def test_fault_event_apply():
    topo = Topology([1, 2, 3])
    FaultEvent(0.0, "partition", [[1], [2, 3]]).apply(topo)
    assert not topo.reachable(1, 2)
    FaultEvent(0.0, "heal").apply(topo)
    assert topo.reachable(1, 2)
    FaultEvent(0.0, "crash", 1).apply(topo)
    assert not topo.is_alive(1)
    FaultEvent(0.0, "recover", 1).apply(topo)
    assert topo.is_alive(1)
    FaultEvent(0.0, "isolate", 2).apply(topo)
    assert not topo.reachable(2, 3)
    FaultEvent(0.0, "merge", [[2], [3]]).apply(topo)
    assert topo.reachable(2, 3)


def test_unknown_op_rejected():
    topo = Topology([1])
    try:
        FaultEvent(0.0, "explode").apply(topo)
    except ValueError:
        pass
    else:
        raise AssertionError("expected ValueError")


def test_script_installs_in_time_order():
    sim = Simulator()
    topo = Topology([1, 2])
    log = []
    script = (FaultScript()
              .heal(2.0)
              .partition(1.0, [[1], [2]]))
    script.install(sim, topo, on_event=lambda e: log.append(e.op))
    sim.run()
    assert log == ["partition", "heal"]
    assert topo.reachable(1, 2)


def test_script_builder_chaining():
    script = (FaultScript()
              .partition(1.0, [[1], [2]])
              .crash(2.0, 1)
              .recover(3.0, 1)
              .isolate(4.0, 2)
              .merge(5.0, [1], [2])
              .heal(6.0))
    assert len(script.events) == 6


def test_random_partition_covers_all_nodes():
    rng = random.Random(0)
    for _ in range(50):
        groups = random_partition([1, 2, 3, 4, 5], rng)
        flat = sorted(n for g in groups for n in g)
        assert flat == [1, 2, 3, 4, 5]
        assert all(g for g in groups)


def test_random_schedule_ends_healed_and_recovered():
    rng = random.Random(7)
    nodes = [1, 2, 3, 4]
    script = random_fault_schedule(nodes, rng, horizon=10.0, rate=2.0)
    sim = Simulator()
    topo = Topology(nodes)
    script.install(sim, topo)
    sim.run()
    assert all(topo.is_alive(n) for n in nodes)
    assert len(topo.components()) == 1


def test_random_schedule_is_deterministic():
    a = random_fault_schedule([1, 2, 3], random.Random(5), 10.0, 1.0)
    b = random_fault_schedule([1, 2, 3], random.Random(5), 10.0, 1.0)
    assert [(e.time, e.op) for e in a.events] == \
        [(e.time, e.op) for e in b.events]


def test_random_schedule_no_crashes_option():
    script = random_fault_schedule([1, 2, 3], random.Random(1), 20.0,
                                   rate=3.0, allow_crashes=False)
    assert all(e.op not in ("crash", "recover")
               for e in script.events[:-1])
