"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import SimulationError, Simulator


def test_initial_state():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.pending == 0
    assert sim.events_processed == 0


def test_schedule_and_run_order():
    sim = Simulator()
    seen = []
    sim.schedule(2.0, seen.append, "b")
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(3.0, seen.append, "c")
    sim.run()
    assert seen == ["a", "b", "c"]
    assert sim.now == 3.0


def test_equal_timestamps_fifo():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.schedule(1.0, seen.append, i)
    sim.run()
    assert seen == list(range(10))


def test_schedule_at_absolute():
    sim = Simulator()
    seen = []
    sim.schedule_at(5.0, seen.append, "x")
    sim.run()
    assert seen == ["x"]
    assert sim.now == 5.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_cancel_prevents_firing():
    sim = Simulator()
    seen = []
    handle = sim.schedule(1.0, seen.append, "x")
    handle.cancel()
    sim.run()
    assert seen == []
    assert handle.cancelled
    assert not handle.active


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_run_until_deadline():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(5.0, seen.append, "b")
    sim.run(until=2.0)
    assert seen == ["a"]
    assert sim.now == 2.0
    sim.run()
    assert seen == ["a", "b"]


def test_run_until_advances_clock_even_when_idle():
    sim = Simulator()
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_event_at_exact_deadline_runs():
    sim = Simulator()
    seen = []
    sim.schedule_at(2.0, seen.append, "edge")
    sim.run(until=2.0)
    assert seen == ["edge"]


def test_events_can_schedule_events():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 5:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert seen == [0, 1, 2, 3, 4, 5]
    assert sim.now == 5.0


def test_call_soon_runs_at_current_time():
    sim = Simulator()
    times = []
    sim.schedule(3.0, lambda: sim.call_soon(
        lambda: times.append(sim.now)))
    sim.run()
    assert times == [3.0]


def test_max_events_budget_guards_livelock():
    sim = Simulator()

    def forever():
        sim.schedule(0.0, forever)

    sim.schedule(0.0, forever)
    with pytest.raises(SimulationError):
        sim.run(max_events=1000)


def test_stop_halts_run():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(2.0, lambda: sim.stop())
    sim.schedule(3.0, seen.append, "b")
    sim.run()
    assert seen == ["a"]
    sim.run()
    assert seen == ["a", "b"]


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, reenter)
    sim.run()
    assert len(errors) == 1


def test_step_single_event():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(2.0, seen.append, "b")
    assert sim.step()
    assert seen == ["a"]
    assert sim.step()
    assert not sim.step()


def test_pending_excludes_cancelled():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    handle = sim.schedule(2.0, lambda: None)
    handle.cancel()
    assert sim.pending == 1


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(7):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 7
