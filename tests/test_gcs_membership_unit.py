"""Unit tests of the membership protocol's message handlers, driven by
direct handler invocation on a real daemon (no timing dependence)."""

import pytest

from repro.gcs import DaemonState, GcsDaemon, GcsSettings
from repro.gcs.types import (FlushDoneMsg, FlushPlanMsg, GatherMsg,
                             InstallMsg, ProposeMsg, StateReportMsg,
                             ViewId)
from repro.net import Network, Topology
from repro.sim import Simulator


def build(nodes=(1, 2, 3)):
    sim = Simulator()
    topo = Topology(list(nodes))
    net = Network(sim, topo)
    settings = GcsSettings(heartbeat_interval=0.02, failure_timeout=0.08,
                           gather_settle=0.02, phase_timeout=0.15)
    daemons = {}
    for node in nodes:
        daemon = GcsDaemon(sim, node, net, set(nodes), settings)
        daemon.start()
        daemons[node] = daemon
    for node in nodes:
        daemons[node].join()
    sim.run(until=1.0)
    return sim, topo, daemons


class TestGatherRounds:
    def test_operational_daemon_joins_higher_round(self):
        sim, _t, daemons = build()
        daemon = daemons[2]
        assert daemon.state == DaemonState.OPERATIONAL
        daemon._on_gather(GatherMsg(3, daemon.attempt + 5, True))
        assert daemon.state == DaemonState.GATHER
        assert daemon.attempt >= daemon.attempt

    def test_gather_from_unjoined_sender_ignored(self):
        sim, _t, daemons = build()
        daemon = daemons[2]
        daemon._on_gather(GatherMsg(9, 99, False))
        assert daemon.state == DaemonState.OPERATIONAL

    def test_same_attempt_straggler_does_not_restart_flush(self):
        sim, _t, daemons = build()
        daemon = daemons[2]
        daemon._enter_gather(daemon.attempt + 1)
        attempt = daemon.attempt
        daemon.state = DaemonState.FLUSH
        daemon._on_gather(GatherMsg(3, attempt, True))
        assert daemon.state == DaemonState.FLUSH
        assert daemon.attempt == attempt

    def test_higher_attempt_restarts_flush(self):
        sim, _t, daemons = build()
        daemon = daemons[2]
        daemon._enter_gather(daemon.attempt + 1)
        daemon.state = DaemonState.FLUSH
        attempt = daemon.attempt
        daemon._on_gather(GatherMsg(3, attempt + 4, True))
        assert daemon.state == DaemonState.GATHER
        assert daemon.attempt == attempt + 4


class TestProposeHandling:
    def test_propose_without_me_ignored(self):
        sim, _t, daemons = build()
        daemon = daemons[2]
        daemon._enter_gather(daemon.attempt + 1)
        daemon._on_propose(ProposeMsg(1, daemon.attempt, (1, 3)))
        assert daemon.state == DaemonState.GATHER

    def test_stale_propose_ignored(self):
        sim, _t, daemons = build()
        daemon = daemons[2]
        daemon._enter_gather(daemon.attempt + 1)
        daemon._on_propose(ProposeMsg(1, daemon.attempt - 1, (1, 2, 3)))
        assert daemon.state == DaemonState.GATHER

    def test_valid_propose_triggers_report(self):
        sim, _t, daemons = build()
        daemon = daemons[2]
        daemon._enter_gather(daemon.attempt + 1)
        daemon._on_propose(ProposeMsg(1, daemon.attempt, (1, 2, 3)))
        assert daemon.state == DaemonState.FLUSH
        assert daemon._round_coordinator == 1


class TestInstallGuards:
    def test_install_for_wrong_attempt_ignored(self):
        sim, _t, daemons = build()
        daemon = daemons[2]
        daemon._enter_gather(daemon.attempt + 1)
        daemon.state = DaemonState.FLUSH
        view_before = daemon.view
        daemon._on_install(InstallMsg(1, daemon.attempt + 9,
                                      ViewId(99, 1), (1, 2, 3), ()))
        assert daemon.view == view_before

    def test_install_without_me_ignored(self):
        sim, _t, daemons = build()
        daemon = daemons[2]
        daemon._enter_gather(daemon.attempt + 1)
        daemon.state = DaemonState.FLUSH
        view_before = daemon.view
        daemon._on_install(InstallMsg(1, daemon.attempt,
                                      ViewId(99, 1), (1, 3), ()))
        assert daemon.view == view_before

    def test_flush_done_only_counted_by_coordinator(self):
        sim, _t, daemons = build()
        daemon = daemons[2]  # not the coordinator (1 is)
        daemon._enter_gather(daemon.attempt + 1)
        daemon.state = DaemonState.FLUSH
        daemon._round_coordinator = 1
        daemon._on_flush_done(FlushDoneMsg(3, daemon.attempt))
        assert 3 not in daemon._flush_done


class TestReportHandling:
    def test_reports_for_other_attempts_dropped(self):
        sim, _t, daemons = build()
        coordinator = daemons[1]
        coordinator._enter_gather(coordinator.attempt + 1)
        coordinator.state = DaemonState.FLUSH
        coordinator._round_coordinator = 1
        coordinator._proposal_members = (1, 2, 3)
        stale = StateReportMsg(2, coordinator.attempt - 1, None, (), (),
                               -1, -1, -1, ())
        coordinator._on_report(stale)
        assert 2 not in coordinator._reports

    def test_plan_for_wrong_old_view_ignored(self):
        sim, _t, daemons = build()
        daemon = daemons[2]
        daemon._enter_gather(daemon.attempt + 1)
        daemon.state = DaemonState.FLUSH
        plan = FlushPlanMsg(1, daemon.attempt, ViewId(77, 7), (), (), -1)
        daemon._on_plan(plan)
        assert daemon._my_plan is None


class TestViewsAfterDirectDriving:
    def test_system_reconverges_after_forced_churn(self):
        """Whatever handler-level poking happened above must not leave
        a live system wedged: force a full churn and re-settle."""
        sim, topo, daemons = build()
        daemons[2]._enter_gather(daemons[2].attempt + 1)
        sim.run(until=sim.now + 1.0)
        views = {d.view.view_id for d in daemons.values()}
        assert len(views) == 1
        assert daemons[1].view.members == frozenset({1, 2, 3})
