"""Heap compaction under cancel-heavy workloads.

Periodic timers that cancel and reschedule themselves used to leave a
lazily-cancelled entry in the heap per restart, so the heap grew with
the number of *restarts* rather than the number of live timers.  The
kernel now compacts in place once cancelled entries outnumber live
ones.  These tests check (a) the heap stays bounded under such a
workload and (b) compaction never perturbs dispatch order relative to
a reference kernel that keeps every tombstone.
"""

import heapq
import itertools

from repro.sim import Simulator


class _ReferenceKernel:
    """The seed dispatch loop: lazy cancellation, no compaction.

    Only the pieces the order-equivalence test needs: cancellable
    schedule, run-to-quiescence, and a record of dispatch order.
    """

    def __init__(self):
        self.now = 0.0
        self._heap = []
        self._seq = itertools.count()

    def schedule(self, delay, callback, *args):
        entry = [self.now + delay, next(self._seq), callback, args, False]
        heapq.heappush(self._heap, entry)
        return entry

    @staticmethod
    def cancel(entry):
        entry[4] = True

    def run(self):
        while self._heap:
            time, _, callback, args, cancelled = heapq.heappop(self._heap)
            if cancelled:
                continue
            self.now = time
            callback(*args)


def _restarting_timer(sim, log, ident, handle_box, restarts_left):
    log.append((sim.now, ident))
    if restarts_left <= 0:
        return
    # Cancel-and-reschedule (the pattern failure detectors use): the
    # cancelled handle becomes a heap tombstone.
    handle = sim.schedule(1.0, _restarting_timer, sim, log, ident,
                          handle_box, restarts_left - 1)
    handle_box[ident] = handle
    stale = sim.schedule(5.0, log.append, (sim.now, "stale", ident))
    stale.cancel()


def test_cancel_heavy_heap_stays_bounded():
    sim = Simulator()
    log = []
    box = {}
    timers = 8
    restarts = 400
    for ident in range(timers):
        sim.schedule(0.001 * ident, _restarting_timer, sim, log, ident,
                     box, restarts)
    sim.run()
    assert len(log) == timers * (restarts + 1)
    # Every timer produced `restarts` tombstones (3200 total); without
    # compaction peak heap size would exceed that.  With it, the heap
    # is bounded by the compaction floor (_COMPACT_MIN = 64) plus a
    # handful of live entries, independent of the restart count.
    assert sim.peak_heap < 100
    # All tombstones are gone by quiescence.
    assert sim.pending == 0
    assert len(sim._heap) == 0


def test_compaction_preserves_dispatch_order():
    # The same interleaving of schedules and cancellations on both
    # kernels; the production side crosses the compaction threshold
    # many times (>50% cancelled), the reference never compacts.
    sim = Simulator()
    ref = _ReferenceKernel()
    sim_log, ref_log = [], []

    def build(kernel, log, cancel):
        pending = {}

        def fire(ident, depth):
            log.append((round(kernel.now, 9), ident, depth))
            if depth >= 60:
                return
            # Reschedule self, plus a decoy that is cancelled at once
            # and a decoy that survives.
            pending[ident] = kernel.schedule(0.5, fire, ident, depth + 1)
            doomed = kernel.schedule(2.0, fire, (ident, "doomed"), 999)
            cancel(doomed)
            kernel.schedule(0.25, log.append,
                            (round(kernel.now, 9), ident, "decoy"))

        for ident in range(5):
            kernel.schedule(0.1 * ident, fire, ident, 0)

    build(sim, sim_log, lambda h: h.cancel())
    build(ref, ref_log, _ReferenceKernel.cancel)
    sim.run()
    ref.run()

    assert sim_log == ref_log
    # Sanity: the production kernel really did compact (the reference
    # heap kept every tombstone, the production one ended empty).
    assert len(sim._heap) == 0
    assert sim.pending == 0
