"""Integration-level tests of the GCS daemon: views, ordering, EVS."""

import pytest

from repro.gcs import (Configuration, DaemonState, GcsDaemon, GcsListener,
                       GcsSettings, ServiceLevel)
from repro.net import Network, NetworkProfile, Topology
from repro.sim import RandomStreams, Simulator


def fast_settings(**overrides):
    params = dict(heartbeat_interval=0.02, failure_timeout=0.08,
                  gather_settle=0.02, phase_timeout=0.15,
                  nack_timeout=0.01)
    params.update(overrides)
    return GcsSettings(**params)


class Recorder(GcsListener):
    def __init__(self, node):
        self.node = node
        self.events = []

    def on_regular_conf(self, conf):
        self.events.append(("reg", conf.view_id,
                            tuple(sorted(conf.members))))

    def on_transitional_conf(self, conf):
        self.events.append(("trans", tuple(sorted(conf.members))))

    def on_message(self, payload, origin, in_transitional, service):
        self.events.append(("msg", payload, origin, in_transitional))

    def messages(self):
        return [e[1] for e in self.events if e[0] == "msg"]

    def regular_views(self):
        return [e for e in self.events if e[0] == "reg"]


class Harness:
    def __init__(self, nodes=(1, 2, 3), seed=0, loss=0.0, **settings):
        self.sim = Simulator()
        self.nodes = list(nodes)
        self.topology = Topology(self.nodes)
        profile = NetworkProfile(loss_rate=loss, jitter=0.0)
        self.network = Network(self.sim, self.topology, profile,
                               rng=RandomStreams(seed).stream("net"))
        self.settings = fast_settings(**settings)
        self.daemons = {}
        self.recorders = {}
        directory = set(self.nodes)
        for node in self.nodes:
            daemon = GcsDaemon(self.sim, node, self.network, directory,
                               self.settings)
            self.recorders[node] = Recorder(node)
            daemon.listener = self.recorders[node]
            daemon.start()
            self.daemons[node] = daemon

    def join_all(self, settle=0.5):
        for node in self.nodes:
            self.daemons[node].join()
        self.sim.run(until=self.sim.now + settle)

    def run(self, duration):
        self.sim.run(until=self.sim.now + duration)

    def common_view(self):
        views = {d.view.view_id for d in self.daemons.values()
                 if d.view is not None}
        assert len(views) == 1, views
        return views.pop()


def test_initial_view_includes_everyone():
    h = Harness()
    h.join_all()
    view = h.common_view()
    for daemon in h.daemons.values():
        assert daemon.view.members == frozenset(h.nodes)
        assert daemon.state == DaemonState.OPERATIONAL
    assert view.coordinator == 1


def test_safe_multicast_total_order():
    h = Harness()
    h.join_all()
    for i in range(5):
        h.daemons[1].multicast(("a", i))
        h.daemons[2].multicast(("b", i))
        h.daemons[3].multicast(("c", i))
    h.run(0.5)
    messages = [h.recorders[n].messages() for n in h.nodes]
    assert len(messages[0]) == 15
    assert messages[0] == messages[1] == messages[2]


def test_fifo_per_origin():
    h = Harness()
    h.join_all()
    for i in range(10):
        h.daemons[2].multicast(("x", i))
    h.run(0.5)
    for node in h.nodes:
        from_two = [m for m in h.recorders[node].messages()
                    if m[0] == "x"]
        assert from_two == [("x", i) for i in range(10)]


def test_self_delivery():
    h = Harness(nodes=(5,))
    h.join_all()
    h.daemons[5].multicast("solo")
    h.run(0.2)
    assert h.recorders[5].messages() == ["solo"]


def test_multicast_requires_membership():
    h = Harness()
    with pytest.raises(RuntimeError):
        h.daemons[1].multicast("too-early")


def test_partition_installs_disjoint_views():
    h = Harness(nodes=(1, 2, 3, 4, 5))
    h.join_all()
    h.topology.partition([[1, 2], [3, 4, 5]])
    h.run(1.0)
    assert h.daemons[1].view.members == frozenset({1, 2})
    assert h.daemons[3].view.members == frozenset({3, 4, 5})
    assert h.daemons[1].view.view_id != h.daemons[3].view.view_id


def test_transitional_conf_members_from_same_old_view():
    h = Harness(nodes=(1, 2, 3, 4))
    h.join_all()
    h.topology.partition([[1, 2], [3, 4]])
    h.run(1.0)
    trans = [e for e in h.recorders[1].events if e[0] == "trans"]
    # Boot transitional (singleton) + the partition transitional.
    assert trans[-1] == ("trans", (1, 2))


def test_merge_after_heal():
    h = Harness()
    h.join_all()
    h.topology.partition([[1], [2, 3]])
    h.run(1.0)
    h.topology.heal()
    h.run(1.0)
    view = h.common_view()
    assert h.daemons[1].view.members == frozenset({1, 2, 3})


def test_messages_during_partition_stay_in_component():
    h = Harness()
    h.join_all()
    h.topology.partition([[1], [2, 3]])
    h.run(1.0)
    h.daemons[1].multicast("minority")
    h.daemons[2].multicast("majority")
    h.run(0.5)
    assert "minority" in h.recorders[1].messages()
    assert "minority" not in h.recorders[2].messages()
    assert "majority" in h.recorders[2].messages()
    assert "majority" in h.recorders[3].messages()


def test_relative_order_of_common_messages_across_components():
    """EVS: messages delivered at two processes appear in the same
    relative order everywhere, even across view changes."""
    h = Harness()
    h.join_all()
    for i in range(5):
        h.daemons[1].multicast(("pre", i))
    h.run(0.5)
    h.topology.partition([[1], [2, 3]])
    h.run(1.0)
    h.topology.heal()
    h.run(1.0)
    for i in range(3):
        h.daemons[3].multicast(("post", i))
    h.run(0.5)
    logs = [h.recorders[n].messages() for n in h.nodes]
    for other in logs[1:]:
        common = [m for m in logs[0] if m in other]
        filtered = [m for m in other if m in logs[0]]
        assert common == filtered


def test_crash_triggers_view_change():
    h = Harness()
    h.join_all()
    h.topology.crash(2)
    h.daemons[2].crash()
    h.run(1.0)
    assert h.daemons[1].view.members == frozenset({1, 3})


def test_recovered_daemon_rejoins_fresh():
    h = Harness()
    h.join_all()
    h.topology.crash(2)
    h.daemons[2].crash()
    h.run(1.0)
    h.topology.recover(2)
    h.daemons[2].recover()
    h.daemons[2].join()
    h.run(1.0)
    assert h.daemons[2].view.members == frozenset({1, 2, 3})
    assert h.daemons[1].view.view_id == h.daemons[2].view.view_id


def test_leave_shrinks_view():
    h = Harness()
    h.join_all()
    h.daemons[3].leave()
    h.run(1.0)
    assert h.daemons[1].view.members == frozenset({1, 2})
    assert h.daemons[3].view is None


def test_loss_recovery_via_nack():
    # Generous failure/phase timeouts so that 15% loss exercises the
    # NACK data-recovery path rather than membership churn (lost
    # messages across view changes are the *engine's* job to repair).
    h = Harness(loss=0.15, seed=11, failure_timeout=1.0,
                phase_timeout=0.5, heartbeat_interval=0.05)
    h.join_all(settle=3.0)
    view = h.common_view()
    for i in range(20):
        h.daemons[1].multicast(("lossy", i))
    h.run(3.0)
    assert h.common_view() == view  # no membership churn happened
    logs = [h.recorders[n].messages() for n in h.nodes]
    expected = [("lossy", i) for i in range(20)]
    for log in logs:
        assert [m for m in log if m[0] == "lossy"] == expected


def test_view_ids_monotonic_per_node():
    h = Harness()
    h.join_all()
    h.topology.partition([[1], [2, 3]])
    h.run(1.0)
    h.topology.heal()
    h.run(1.0)
    for node in h.nodes:
        epochs = [v[1].epoch for v in h.recorders[node].regular_views()]
        assert epochs == sorted(epochs)
        assert len(set(epochs)) == len(epochs)


def test_safe_delivery_latency_is_milliseconds():
    h = Harness()
    h.join_all()
    start = h.sim.now
    latency = []

    class Probe(GcsListener):
        def on_message(self, payload, origin, in_transitional, service):
            latency.append(h.sim.now - start)

    h.daemons[3].listener = Probe()
    h.daemons[1].multicast("timed")
    h.run(0.2)
    assert latency and latency[0] < 0.01
