"""Unit tests of the recovery reconstruction (A.13) against synthetic
stable storage, without a network in the loop."""

import pytest

from repro.core import (EngineConfig, PrimComponent, ReplicationEngine,
                        Vulnerable, Yellow, recover_engine)
from repro.core.state_machine import EngineState
from repro.db import Action, ActionId, Database
from repro.gcs import GroupChannel
from repro.sim import Simulator
from repro.storage import DiskProfile, SimulatedDisk, StableStore, \
    WriteAheadLog

from engine_harness import FakeChannel


def make_engine(sim, store):
    return ReplicationEngine(sim, 1, FakeChannel(), store, Database(),
                             [1], EngineConfig())


def make_store(sim):
    disk = SimulatedDisk(sim, 1, DiskProfile(forced_write_latency=1e-4))
    return StableStore(WriteAheadLog(disk))


def action(server, index, update=None):
    return Action(action_id=ActionId(server, index), update=update)


def seed_store(sim, store, greens=(), reds=(), ongoing=(),
               records=None):
    for position, act in greens:
        store.wal.append("green", (position, act), forced=False)
    for act in ongoing:
        store.wal.append("ongoing", act, forced=False)
    view = dict(records or {})
    view.setdefault("servers", [1, 2, 3])
    view["red_actions"] = list(reds)
    for key, value in view.items():
        store.put(key, value)
    store.sync()
    sim.run()


def test_recovery_replays_green_prefix():
    sim = Simulator()
    store = make_store(sim)
    greens = [(0, action(2, 1, ("SET", "a", 1))),
              (1, action(3, 1, ("SET", "b", 2))),
              (2, action(2, 2, ("SET", "a", 3)))]
    seed_store(sim, store, greens=greens)
    engine = make_engine(sim, store)
    recover_engine(engine)
    assert engine.queue.green_count == 3
    assert engine.database.state == {"a": 3, "b": 2}
    assert engine.database.applied_log == [g[1].action_id for g in greens]
    assert engine.state is EngineState.NON_PRIM


def test_recovery_ignores_non_contiguous_green_tail():
    """A green record whose predecessor was lost in the crash must not
    be replayed (the order below it is unknown)."""
    sim = Simulator()
    store = make_store(sim)
    seed_store(sim, store, greens=[(0, action(2, 1)),
                                   (2, action(2, 2))])  # hole at 1
    engine = make_engine(sim, store)
    recover_engine(engine)
    assert engine.queue.green_count == 1


def test_recovery_restores_red_snapshot():
    sim = Simulator()
    store = make_store(sim)
    seed_store(sim, store,
               greens=[(0, action(2, 1))],
               reds=[action(3, 1), action(2, 2)])
    engine = make_engine(sim, store)
    recover_engine(engine)
    reds = {a.action_id for a in engine.queue.red_actions()}
    assert reds == {ActionId(3, 1), ActionId(2, 2)}


def test_recovery_skips_red_snapshot_already_green():
    """If a snapshot red was later greened and the green record is
    durable, the red replay must dedupe."""
    sim = Simulator()
    store = make_store(sim)
    shared = action(3, 1, ("SET", "x", 1))
    seed_store(sim, store, greens=[(0, shared)], reds=[shared])
    engine = make_engine(sim, store)
    recover_engine(engine)
    assert engine.queue.green_count == 1
    assert engine.queue.red_actions() == []


def test_recovery_remarks_own_ongoing_actions_red():
    sim = Simulator()
    store = make_store(sim)
    mine = action(1, 1, ("SET", "mine", 1))
    seed_store(sim, store, ongoing=[mine],
               records={"action_index": 1})
    engine = make_engine(sim, store)
    recover_engine(engine)
    assert ActionId(1, 1) in {a.action_id
                              for a in engine.queue.red_actions()}
    assert engine.action_index == 1


def test_recovery_action_index_covers_ongoing():
    """action_index must never regress below journaled actions, or the
    server would reuse action ids after recovery."""
    sim = Simulator()
    store = make_store(sim)
    seed_store(sim, store,
               ongoing=[action(1, 5)], records={"action_index": 2})
    engine = make_engine(sim, store)
    recover_engine(engine)
    assert engine.action_index == 5


def test_recovery_preserves_vulnerable_record():
    sim = Simulator()
    store = make_store(sim)
    vulnerable = Vulnerable()
    vulnerable.make_valid(2, 3, (1, 2, 3), self_id=1)
    seed_store(sim, store, records={"vulnerable": vulnerable,
                                    "attempt_index": 3})
    engine = make_engine(sim, store)
    recover_engine(engine)
    assert engine.vulnerable.is_valid
    assert engine.vulnerable.attempt_key() == (2, 3, (1, 2, 3))
    assert engine.attempt_index == 3


def test_recovery_preserves_prim_component():
    sim = Simulator()
    store = make_store(sim)
    prim = PrimComponent(prim_index=4, attempt_index=2,
                         servers=(1, 2, 3))
    seed_store(sim, store, records={"prim_component": prim})
    engine = make_engine(sim, store)
    recover_engine(engine)
    assert engine.prim_component.prim_index == 4
    assert engine.prim_component.servers == (1, 2, 3)


def test_recovery_drops_yellow_without_payloads():
    """A valid yellow record whose action payloads did not survive is
    no better than red knowledge; it must be invalidated."""
    sim = Simulator()
    store = make_store(sim)
    yellow = Yellow(status="valid", set=[ActionId(9, 1)])
    seed_store(sim, store, records={"yellow": yellow})
    engine = make_engine(sim, store)
    recover_engine(engine)
    assert not engine.yellow.is_valid


def test_recovery_keeps_yellow_with_payloads():
    sim = Simulator()
    store = make_store(sim)
    act = action(2, 1)
    yellow = Yellow(status="valid", set=[act.action_id])
    seed_store(sim, store, reds=[act], records={"yellow": yellow})
    engine = make_engine(sim, store)
    recover_engine(engine)
    assert engine.yellow.is_valid
    assert engine.yellow.set == [act.action_id]


def test_recovery_from_db_snapshot_base():
    """A joiner that bootstrapped from a transfer recovers from its
    snapshot + green tail."""
    sim = Simulator()
    store = make_store(sim)
    base = Database()
    base.apply(action(2, 1, ("SET", "base", 1)))
    store.wal.append("db_snapshot", base.snapshot(), forced=False)
    seed_store(sim, store, greens=[(1, action(3, 1, ("SET", "t", 2)))])
    engine = make_engine(sim, store)
    recover_engine(engine)
    assert engine.queue.green_offset == 1
    assert engine.queue.green_count == 2
    assert engine.database.state == {"base": 1, "t": 2}


def test_recovery_empty_store_is_fresh_start():
    sim = Simulator()
    store = make_store(sim)
    engine = make_engine(sim, store)
    recover_engine(engine)
    assert engine.queue.green_count == 0
    assert engine.state is EngineState.NON_PRIM
    assert not engine.vulnerable.is_valid
