"""Metrics registry: instruments, labels, callbacks, disabled mode."""

import math

import pytest

from repro.obs.metrics import (LATENCY_BUCKETS, NULL_HISTOGRAM, Counter,
                               Gauge, Histogram, MetricsRegistry,
                               percentile)


class TestInstruments:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10.0)
        gauge.inc(2.0)
        gauge.dec(5.0)
        assert gauge.value == 7.0

    def test_histogram_buckets_and_sum(self):
        histogram = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 3.0, 100.0):
            histogram.observe(value)
        # le-inclusive bounds; the last observation lands in +Inf.
        assert histogram.counts == [2, 1, 1, 1]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(106.0)
        assert histogram.mean == pytest.approx(21.2)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0, 2.0))

    def test_quantile_interpolates_inside_bucket(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        for _ in range(10):
            histogram.observe(1.5)          # all mass in (1, 2]
        assert histogram.quantile(0.5) == pytest.approx(1.5)
        assert histogram.quantile(1.0) == pytest.approx(2.0)

    def test_quantile_caps_at_last_finite_bound(self):
        histogram = Histogram(bounds=(1.0,))
        histogram.observe(50.0)             # +Inf bucket
        assert histogram.quantile(0.99) == 1.0

    def test_empty_histogram_quantile_is_zero(self):
        assert Histogram().quantile(0.5) == 0.0

    def test_percentile_helper_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.99) == 99.0
        assert percentile([], 0.5) == 0.0


class TestRegistry:
    def test_families_deduplicate_by_name(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_test_total", labelnames=("server",))
        second = registry.counter("repro_test_total",
                                  labelnames=("server",))
        assert first is second

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total")
        with pytest.raises(ValueError):
            registry.gauge("repro_test_total")

    def test_label_arity_enforced(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_test_total",
                                  labelnames=("server",))
        with pytest.raises(ValueError):
            family.labels("a", "b")

    def test_children_keyed_by_label_values(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_test_total",
                                  labelnames=("server",))
        family.labels(1).inc()
        family.labels(1).inc()
        family.labels(2).inc()
        assert family.labels(1).value == 2.0
        assert family.labels(2).value == 1.0

    def test_fresh_labels_reset_the_child(self):
        """A component rebuilt after a crash starts its counters at
        zero, like a process restart under Prometheus."""
        registry = MetricsRegistry()
        family = registry.counter("repro_test_total",
                                  labelnames=("server",))
        family.labels(1).inc(5)
        child = family.labels(1, fresh=True)
        assert child.value == 0.0
        assert family.labels(1) is child

    def test_counter_callback_mirrors_native_count(self):
        registry = MetricsRegistry()
        native = {"appends": 0}
        registry.counter_callback("repro_test_total",
                                  lambda: native["appends"],
                                  labelnames=("server",), labelvalues=(1,))
        native["appends"] = 7
        registry.collect()
        assert registry.get_sample("repro_test_total", 1).value == 7.0
        native["appends"] = 9
        assert registry.snapshot()["repro_test_total"]["1"] == 9.0

    def test_failing_callback_reports_nan_not_raise(self):
        registry = MetricsRegistry()
        registry.gauge_callback("repro_test_depth",
                                lambda: 1 / 0,
                                labelnames=("server",), labelvalues=(1,))
        registry.collect()
        assert math.isnan(registry.get_sample("repro_test_depth", 1).value)

    def test_collect_hook_runs_before_callbacks(self):
        registry = MetricsRegistry()
        order = []
        registry.collect_hook(lambda: order.append("hook"))
        registry.gauge_callback("repro_test_depth",
                                lambda: order.append("callback") or 0.0)
        registry.collect()
        assert order == ["hook", "callback"]

    def test_collect_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("repro_b_total").labels()
        registry.counter("repro_a_total").labels()
        assert [f.name for f in registry.collect()] == \
            ["repro_a_total", "repro_b_total"]

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total",
                         labelnames=("server",)).labels(1).inc(3)
        histogram = registry.histogram(
            "repro_test_seconds", labelnames=("server",)).labels(1)
        histogram.observe(0.002)
        doc = registry.snapshot()
        assert doc["repro_test_total"]["1"] == 3.0
        entry = doc["repro_test_seconds"]["1"]
        assert entry["count"] == 1
        assert entry["sum"] == pytest.approx(0.002)
        assert set(entry) == {"count", "sum", "p50", "p95", "p99"}

    def test_get_sample_unknown_returns_none(self):
        registry = MetricsRegistry()
        assert registry.get_sample("repro_missing_total") is None

    def test_histogram_default_buckets_are_latency_buckets(self):
        registry = MetricsRegistry()
        child = registry.histogram("repro_test_seconds").labels()
        assert child.bounds == LATENCY_BUCKETS


class TestDisabledRegistry:
    """Disabled = counters/gauges stay live, everything else free."""

    def test_counters_and_gauges_stay_live(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("repro_test_total").labels().inc()
        registry.gauge("repro_test_depth").labels().set(4)
        doc = registry.snapshot()
        assert doc["repro_test_total"][""] == 1.0
        assert doc["repro_test_depth"][""] == 4.0

    def test_histograms_become_shared_noop(self):
        registry = MetricsRegistry(enabled=False)
        one = registry.histogram("repro_a_seconds").labels()
        two = registry.histogram("repro_b_seconds").labels()
        assert one is NULL_HISTOGRAM and two is NULL_HISTOGRAM
        one.observe(1.0)
        assert one.count == 0
        assert one.quantile(0.99) == 0.0

    def test_callbacks_and_hooks_dropped(self):
        registry = MetricsRegistry(enabled=False)
        fired = []
        registry.gauge_callback("repro_test_depth",
                                lambda: fired.append("g") or 0.0)
        registry.counter_callback("repro_test_total",
                                  lambda: fired.append("c") or 0.0)
        registry.collect_hook(lambda: fired.append("h"))
        registry.collect()
        assert fired == []
        # The callback families were never even registered.
        assert registry.get_sample("repro_test_depth") is None
