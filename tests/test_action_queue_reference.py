"""Differential test: indexed ActionQueue vs. the original list-based one.

The production :class:`~repro.core.ActionQueue` replaced its O(n) red
list with an insertion-ordered dict plus per-creator buckets.  This
suite replays random operation scripts against both the production
queue and ``_ReferenceQueue`` — a faithful copy of the original
list-scanning implementation — and asserts every observable query
(red order, per-creator red order, green order, colors, cuts, lines,
truncation counts) stays identical.  Complements
``test_property_queue.py``, which checks invariants in isolation.
"""

from hypothesis import given, settings, strategies as st

from repro.core import ActionQueue
from repro.db import Action, ActionId

SERVERS = [1, 2, 3, 4]


class _ReferenceQueue:
    """The seed ActionQueue: red region as a plain list, O(n) scans."""

    def __init__(self, server_ids):
        self._green = []
        self.green_offset = 0
        self._green_pos = {}
        self._red = []
        self._red_set = {}
        self.red_cut = {s: 0 for s in server_ids}
        self.green_lines = {s: 0 for s in server_ids}

    def remove_server(self, server_id):
        self.red_cut.pop(server_id, None)
        self.green_lines.pop(server_id, None)
        for action in [a for a in self._red if a.server_id == server_id]:
            self._remove_red(action.action_id)

    @property
    def green_count(self):
        return self.green_offset + len(self._green)

    def red_actions(self):
        return list(self._red)

    def red_actions_of(self, creator):
        return sorted((a for a in self._red if a.server_id == creator),
                      key=lambda a: a.action_id.index)

    def mark_red(self, action):
        creator = action.server_id
        if creator not in self.red_cut:
            return False
        if self.red_cut[creator] != action.action_id.index - 1:
            return False
        self.red_cut[creator] = action.action_id.index
        self._red.append(action)
        self._red_set[action.action_id] = action
        return True

    def mark_green(self, action):
        self.mark_red(action)
        if action.action_id in self._green_pos:
            return False
        if action.action_id not in self._red_set:
            if action.action_id.index <= self.red_cut.get(
                    action.server_id, 0):
                return False
            raise ValueError("FIFO gap")
        self._remove_red(action.action_id)
        position = self.green_count
        self._green.append(action)
        self._green_pos[action.action_id] = position
        return True

    def _remove_red(self, action_id):
        del self._red_set[action_id]
        for i, act in enumerate(self._red):
            if act.action_id == action_id:
                del self._red[i]
                break

    def set_green_line(self, server_id, green_count):
        if server_id in self.green_lines:
            if green_count > self.green_lines[server_id]:
                self.green_lines[server_id] = green_count
        else:
            self.green_lines[server_id] = green_count

    @property
    def white_line(self):
        if not self.green_lines:
            return 0
        return min(self.green_lines.values())

    def truncate_white(self):
        limit = min(self.white_line, self.green_count)
        discard = limit - self.green_offset
        if discard <= 0:
            return 0
        for action in self._green[:discard]:
            del self._green_pos[action.action_id]
        self._green = self._green[discard:]
        self.green_offset = limit
        return discard


def _ids(actions):
    return [a.action_id for a in actions]


def _assert_same(queue, ref):
    assert _ids(queue.red_actions()) == _ids(ref.red_actions())
    for s in SERVERS:
        assert _ids(queue.red_actions_of(s)) == _ids(ref.red_actions_of(s))
    assert queue.red_cut == ref.red_cut
    assert queue.green_lines == ref.green_lines
    assert queue.green_count == ref.green_count
    assert queue.green_offset == ref.green_offset
    assert queue.white_line == ref.white_line
    assert (_ids(a for _, a in queue.green_slice(queue.green_offset))
            == [a.action_id for a in ref._green])


# Scripts mix valid next-index ops with duplicates/out-of-order replays
# (index jitter), membership removal, line advancement, and truncation.
ops = st.lists(
    st.tuples(st.sampled_from(SERVERS),
              st.sampled_from(["red", "green", "replay_red",
                               "line", "truncate", "remove"]),
              st.integers(min_value=0, max_value=3)),
    min_size=1, max_size=150)


@settings(max_examples=60, deadline=None)
@given(ops)
def test_indexed_queue_matches_seed_reference(script):
    queue = ActionQueue(SERVERS)
    ref = _ReferenceQueue(SERVERS)
    next_index = {s: 1 for s in SERVERS}
    removed = set()

    for server, kind, jitter in script:
        if kind == "red":
            act = Action(action_id=ActionId(server, next_index[server]))
            got = queue.mark_red(act)
            assert got == ref.mark_red(act)
            if got:
                next_index[server] += 1
        elif kind == "green":
            act = Action(action_id=ActionId(server, next_index[server]))
            if server in removed:
                # mark_green on a purged creator raises (FIFO gap) in
                # both implementations; exercise the rejection path.
                assert queue.mark_red(act) == ref.mark_red(act)
            else:
                assert queue.mark_green(act) == ref.mark_green(act)
                next_index[server] += 1
        elif kind == "replay_red":
            # Duplicate or out-of-order arrival: must be rejected the
            # same way by both (index jitter lands behind/at/past cut).
            index = max(1, next_index[server] - jitter)
            act = Action(action_id=ActionId(server, index))
            assert queue.mark_red(act) == ref.mark_red(act)
        elif kind == "line":
            line = min(queue.green_count, jitter * 2)
            queue.set_green_line(server, line)
            ref.set_green_line(server, line)
        elif kind == "truncate":
            assert queue.truncate_white() == ref.truncate_white()
        elif kind == "remove":
            # Keep server 1 so the cuts never empty out.
            if server != 1:
                queue.remove_server(server)
                ref.remove_server(server)
                removed.add(server)
        _assert_same(queue, ref)
