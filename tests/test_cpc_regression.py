"""Regression: CPC votes arriving before this member reaches Construct.

Retransmission completion points differ per member even under total
order: a member whose local state already satisfies the plan reaches
Construct (and sends its CPC) while a slower member is still in
ExchangeActions waiting for retransmissions.  The engine used to drop
those early votes, leaving the slow member stuck in Construct forever
with an incomplete vote set — a liveness violation of Theorem 3.

The scenario below is the minimal counterexample hypothesis found:
after a 2+2 partition installs a primary on one side, a three-way split
isolates the old primary's partner, and on heal the merged view's
retransmission plan is already satisfied for two members but not for
the third.
"""

from repro.core import EngineState

from conftest import make_cluster


def test_early_cpc_votes_are_buffered_not_dropped():
    cluster = make_cluster(4)
    cluster.start_all(settle=1.0)

    submissions = 0

    def submit(node):
        nonlocal submissions
        submissions += 1
        cluster.replicas[node].submit(
            ("APPEND", "log", (node, submissions)))
        cluster.run_for(0.05)

    cluster.partition([1, 3], [2, 4])
    cluster.run_for(0.3)
    submit(1)
    submit(2)
    cluster.partition([1], [2], [3, 4])
    cluster.run_for(0.3)

    cluster.heal()
    cluster.run_for(5.0)
    cluster.assert_converged()
    for replica in cluster.replicas.values():
        assert replica.engine.state is EngineState.REG_PRIM
