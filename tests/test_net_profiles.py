"""Tests for the network profile presets."""

import pytest

from repro.net import (NetworkProfile, lan_profile,
                       lossless_instant_profile, wan_profile)
from repro.sim import RandomStreams


def test_lan_profile_defaults():
    profile = lan_profile()
    assert profile.propagation_delay == pytest.approx(0.00015)
    assert profile.loss_rate == 0.0
    # 200 B at 100 Mbit/s = 16 microseconds.
    assert profile.serialization_delay(200) == pytest.approx(1.6e-5)


def test_wan_profile_defaults_and_overrides():
    profile = wan_profile()
    assert profile.propagation_delay == pytest.approx(0.040)
    assert profile.loss_rate > 0
    quiet = wan_profile(loss_rate=0.0)
    assert quiet.loss_rate == 0.0
    assert quiet.propagation_delay == pytest.approx(0.040)


def test_instant_profile_costs_nothing():
    profile = lossless_instant_profile()
    assert profile.serialization_delay(10_000) == 0.0
    assert profile.sample_jitter(None) == 0.0
    assert not profile.drops(None)


def test_jitter_bounded_and_seeded():
    profile = NetworkProfile(jitter=0.001)
    rng = RandomStreams(1).stream("j")
    samples = [profile.sample_jitter(rng) for _ in range(100)]
    assert all(0.0 <= s <= 0.001 for s in samples)
    rng2 = RandomStreams(1).stream("j")
    assert samples == [profile.sample_jitter(rng2) for _ in range(100)]


def test_zero_bandwidth_means_no_serialization():
    profile = NetworkProfile(bandwidth=0.0)
    assert profile.serialization_delay(1000) == 0.0


def test_drops_requires_rng():
    profile = NetworkProfile(loss_rate=1.0)
    assert not profile.drops(None)  # no rng -> deterministic keep
