"""Determinism linter: fixture violations, safe patterns, scoping."""

from pathlib import Path

from repro.analysis import DeterminismLinter
from repro.analysis.determinism import (RULE_FLOAT_EQ, RULE_GLOBAL_RANDOM,
                                        RULE_ID_KEY, RULE_UNORDERED_ITER,
                                        RULE_WALL_CLOCK)

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"
BAD_CLOCK = FIXTURES / "repro" / "core" / "bad_clock.py"


def findings_for(path):
    return [f for f in DeterminismLinter().check_paths([path])
            if not f.suppressed]


def test_fixture_wall_clock_detected():
    hits = [f for f in findings_for(BAD_CLOCK)
            if f.rule == RULE_WALL_CLOCK]
    assert len(hits) == 1
    assert "time.time()" in hits[0].message


def test_fixture_global_random_detected():
    hits = [f for f in findings_for(BAD_CLOCK)
            if f.rule == RULE_GLOBAL_RANDOM]
    # random.uniform() and the imported-alias choice().
    assert len(hits) == 2
    assert any("random.uniform" in f.message for f in hits)
    assert any("choice()" in f.message for f in hits)


def test_fixture_unordered_iteration_detected():
    hits = [f for f in findings_for(BAD_CLOCK)
            if f.rule == RULE_UNORDERED_ITER]
    assert len(hits) == 1


def test_fixture_id_key_detected():
    hits = [f for f in findings_for(BAD_CLOCK) if f.rule == RULE_ID_KEY]
    assert len(hits) == 1


def test_fixture_float_equality_detected():
    hits = [f for f in findings_for(BAD_CLOCK)
            if f.rule == RULE_FLOAT_EQ]
    assert len(hits) == 1


def test_safe_patterns_not_flagged():
    # sorted(set(..)), len(set(..)), set equality, max(set(..)), and
    # integer equality all live in safe_patterns() after line 34.
    findings = findings_for(BAD_CLOCK)
    assert all(f.line < 35 for f in findings), \
        "\n".join(f.format() for f in findings)


def test_out_of_scope_package_ignored(tmp_path):
    pkg = tmp_path / "repro" / "tools"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    mod = pkg / "wallclock.py"
    mod.write_text("import time\n\n\ndef f():\n    return time.time()\n")
    assert DeterminismLinter().check_paths([tmp_path]) == []


def test_live_protocol_tree_is_clean():
    src = Path(__file__).parent.parent / "src" / "repro"
    findings = [f for f in DeterminismLinter().check_paths([src])
                if not f.suppressed]
    assert findings == [], "\n".join(f.format() for f in findings)
