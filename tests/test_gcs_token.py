"""Token-ring ordering mode: GCS-level and engine-level tests."""

import pytest

from repro.core import EngineState
from repro.gcs import GcsDaemon, GcsListener, GcsSettings
from repro.gcs.types import TokenMsg
from repro.net import Network, Topology
from repro.sim import Simulator

from conftest import fast_disk_profile, make_cluster


def token_settings(**overrides):
    params = dict(ordering_mode="token", heartbeat_interval=0.02,
                  failure_timeout=0.08, gather_settle=0.02,
                  phase_timeout=0.15, token_timeout=0.3)
    params.update(overrides)
    return GcsSettings(**params)


class Recorder(GcsListener):
    def __init__(self):
        self.msgs = []

    def on_message(self, payload, origin, in_transitional, service):
        self.msgs.append(payload)


def build(nodes=(1, 2, 3, 4), **overrides):
    sim = Simulator()
    topo = Topology(list(nodes))
    net = Network(sim, topo)
    settings = token_settings(**overrides)
    daemons, recorders = {}, {}
    for node in nodes:
        daemon = GcsDaemon(sim, node, net, set(nodes), settings)
        recorders[node] = Recorder()
        daemon.listener = recorders[node]
        daemon.start()
        daemons[node] = daemon
    for node in nodes:
        daemons[node].join()
    sim.run(until=1.0)
    return sim, topo, daemons, recorders


class TestTokenGcs:
    def test_total_order_across_senders(self):
        sim, _topo, daemons, recorders = build()
        for i in range(5):
            for node in daemons:
                daemons[node].multicast((node, i))
        sim.run(until=sim.now + 0.5)
        logs = [recorders[n].msgs for n in daemons]
        assert len(logs[0]) == 20
        assert all(log == logs[0] for log in logs)

    def test_safe_delivery_within_two_rotations(self):
        sim, _topo, daemons, recorders = build()
        start = sim.now
        daemons[2].multicast("timed")
        sim.run(until=sim.now + 0.2)
        assert recorders[1].msgs == ["timed"]
        # 4-node LAN ring: stamp wait + stability <= ~2 rotations.
        assert sim.now - start < 0.2

    def test_partition_respawns_tokens_per_component(self):
        sim, topo, daemons, recorders = build()
        topo.partition([[1, 2], [3, 4]])
        sim.run(until=sim.now + 1.0)
        daemons[1].multicast("left")
        daemons[3].multicast("right")
        sim.run(until=sim.now + 0.5)
        assert "left" in recorders[2].msgs
        assert "right" in recorders[4].msgs
        assert "left" not in recorders[3].msgs

    def test_token_holder_crash_recovers_via_watchdog(self):
        sim, topo, daemons, recorders = build()
        # Crash a member; the token will eventually be lost in-flight
        # or the ring broken — the watchdog re-forms the membership.
        topo.crash(2)
        daemons[2].crash()
        sim.run(until=sim.now + 2.0)
        assert daemons[1].view.members == frozenset({1, 3, 4})
        daemons[3].multicast("after-crash")
        sim.run(until=sim.now + 0.5)
        assert "after-crash" in recorders[1].msgs

    def test_stale_token_dies_silently(self):
        sim, _topo, daemons, _recorders = build()
        from repro.gcs.types import ViewId
        stale = TokenMsg(ViewId(0, 9), 0, ())
        daemons[1]._on_token(stale)  # must be ignored, not crash
        sim.run(until=sim.now + 0.2)
        assert daemons[1].state == "operational"

    def test_fifo_preserved_per_sender(self):
        sim, _topo, daemons, recorders = build()
        for i in range(10):
            daemons[3].multicast(("f", i))
        sim.run(until=sim.now + 0.5)
        assert [m for m in recorders[1].msgs if m[0] == "f"] == \
            [("f", i) for i in range(10)]


class TestTokenEngine:
    def token_cluster(self, n=3):
        cluster = make_cluster(
            n, gcs_settings=token_settings())
        cluster.start_all(settle=1.5)
        return cluster

    def test_engine_commits_over_token_ordering(self):
        cluster = self.token_cluster()
        client = cluster.client(1)
        for i in range(5):
            client.submit(("SET", f"k{i}", i))
        cluster.run_for(1.5)
        assert client.completed == 5
        cluster.assert_converged()

    def test_partition_merge_over_token_ordering(self):
        cluster = self.token_cluster()
        cluster.partition([1], [2, 3])
        cluster.run_for(2.0)
        assert sorted(cluster.primary_members()) == [2, 3]
        cluster.replicas[1].submit(("SET", "red", 1))
        cluster.client(2).submit(("SET", "green", 1))
        cluster.run_for(1.0)
        cluster.heal()
        cluster.run_for(3.0)
        cluster.assert_converged()
        assert cluster.replicas[3].database.state.get("red") == 1

    def test_crash_recovery_over_token_ordering(self):
        cluster = self.token_cluster()
        client = cluster.client(1)
        for i in range(4):
            client.submit(("SET", f"k{i}", i))
        cluster.run_for(1.5)
        cluster.crash(3)
        cluster.run_for(2.0)
        client.submit(("SET", "while-down", 1))
        cluster.run_for(1.0)
        cluster.recover(3)
        cluster.run_for(3.0)
        cluster.assert_converged()
