"""Engine statistics counters: observable, correct, and useful."""

import pytest

from conftest import make_cluster


@pytest.fixture
def cluster():
    c = make_cluster(3)
    c.start_all(settle=1.0)
    return c


def stats_sum(cluster, key):
    return sum(r.engine.stats[key] for r in cluster.replicas.values())


def test_client_requests_counted_at_origin(cluster):
    client = cluster.client(2)
    for _ in range(4):
        client.submit(("INC", "n", 1))
    cluster.run_for(1.0)
    assert cluster.replicas[2].engine.stats["client_requests"] == 4
    assert cluster.replicas[1].engine.stats["client_requests"] == 0


def test_greens_counted_at_every_replica(cluster):
    client = cluster.client(1)
    for _ in range(5):
        client.submit(("INC", "n", 1))
    cluster.run_for(1.0)
    for replica in cluster.replicas.values():
        assert replica.engine.stats["greens"] == 5


def test_exchanges_count_view_changes(cluster):
    before = stats_sum(cluster, "exchanges")
    cluster.partition([1], [2, 3])
    cluster.run_for(1.5)
    cluster.heal()
    cluster.run_for(1.5)
    # Each replica ran at least two more exchanges (split + merge).
    assert stats_sum(cluster, "exchanges") >= before + 6


def test_installs_track_primary_formations(cluster):
    assert stats_sum(cluster, "installs") == 3  # the initial primary
    cluster.partition([1], [2, 3])
    cluster.run_for(1.5)
    cluster.heal()
    cluster.run_for(1.5)
    # Split primary {2,3} (2 installs) + merged primary (3 installs).
    assert stats_sum(cluster, "installs") == 3 + 2 + 3


def test_retransmissions_happen_only_when_needed(cluster):
    client = cluster.client(1)
    for _ in range(5):
        client.submit(("INC", "n", 1))
    cluster.run_for(1.0)
    assert stats_sum(cluster, "retrans_actions") == 0
    cluster.partition([1], [2, 3])
    cluster.run_for(1.0)
    cluster.client(2).submit(("SET", "gap", 1))
    cluster.run_for(0.5)
    cluster.heal()
    cluster.run_for(2.0)
    # Node 1 missed 'gap': someone retransmitted it in the merge.
    assert stats_sum(cluster, "retrans_actions") >= 1


def test_state_and_cpc_message_counts_match_membership(cluster):
    state_msgs = stats_sum(cluster, "state_msgs_sent")
    cpcs = stats_sum(cluster, "cpc_sent")
    # Initial formation: one state message and one CPC per member.
    assert state_msgs == 3
    assert cpcs == 3
