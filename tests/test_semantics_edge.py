"""Semantics-layer edge cases: joiners, recoveries, yellow windows."""

import pytest

from repro.semantics import (InventoryStore, QueryService,
                             ReplicatedService, TimestampStore,
                             install_standard_procedures)

from conftest import make_cluster


@pytest.fixture
def cluster():
    c = make_cluster(3)
    c.start_all(settle=1.0)
    return c


class TestJoinerSemantics:
    def test_joiner_serves_weak_queries_from_inherited_state(self, cluster):
        svc1 = ReplicatedService(cluster.replicas[1])
        svc1.update(("SET", "inherited", "value"))
        cluster.run_for(1.0)
        cluster.add_replica(4, peer=2)
        cluster.run_for(5.0)
        svc4 = ReplicatedService(cluster.replicas[4])
        assert svc4.query(("GET", "inherited"),
                          service=QueryService.WEAK) == "value"

    def test_lww_store_works_across_join(self, cluster):
        for replica in cluster.replicas.values():
            install_standard_procedures(replica.database)
        svc1 = ReplicatedService(cluster.replicas[1])
        store1 = TimestampStore(svc1)
        store1.set("k", "v1", timestamp=10.0)
        cluster.run_for(1.0)
        cluster.add_replica(4, peer=3)
        cluster.run_for(5.0)
        # The joiner's database must carry the procedure registrations
        # before it can apply CALL updates.
        install_standard_procedures(cluster.replicas[4].database)
        svc4 = ReplicatedService(cluster.replicas[4])
        store4 = TimestampStore(svc4)
        assert store4.get("k", QueryService.WEAK) == "v1"
        store4.set("k", "v2", timestamp=20.0)
        cluster.run_for(1.0)
        cluster.assert_converged()
        assert store1.get("k", QueryService.WEAK) == "v2"


class TestRecoverySemantics:
    def test_weak_query_after_recovery_reflects_durable_state(self,
                                                              cluster):
        svc = {n: ReplicatedService(r)
               for n, r in cluster.replicas.items()}
        svc[1].update(("SET", "k", "before-crash"))
        cluster.run_for(1.5)   # let checkpoints land
        cluster.crash(3)
        cluster.run_for(0.5)
        cluster.recover(3)
        cluster.run_for(2.0)
        # Fresh service facade for the recovered replica (new engine).
        svc3 = ReplicatedService(cluster.replicas[3])
        assert svc3.query(("GET", "k"),
                          service=QueryService.WEAK) == "before-crash"

    def test_dirty_view_reset_by_recovery(self, cluster):
        cluster.partition([1], [2, 3])
        cluster.run_for(1.5)
        svc1 = ReplicatedService(cluster.replicas[1])
        svc1.update(("SET", "k", "red"))
        cluster.run_for(0.5)
        assert svc1.query(("GET", "k"),
                          service=QueryService.DIRTY) == "red"
        cluster.crash(1)
        cluster.run_for(0.3)
        cluster.recover(1)
        cluster.run_for(1.0)
        svc1b = ReplicatedService(cluster.replicas[1])
        # The red action survived in the journal and is red again.
        assert svc1b.query(("GET", "k"),
                           service=QueryService.DIRTY) == "red"
        assert svc1b.query(("GET", "k"),
                           service=QueryService.WEAK) is None


class TestInventoryUnderChurn:
    def test_stock_correct_after_join_and_partition(self, cluster):
        stores = {n: InventoryStore(ReplicatedService(r))
                  for n, r in cluster.replicas.items()}
        stores[1].add_stock("x", 50)
        cluster.run_for(1.0)
        cluster.add_replica(4, peer=2)
        cluster.run_for(5.0)
        stores[4] = InventoryStore(
            ReplicatedService(cluster.replicas[4]))
        cluster.partition([1, 4], [2, 3])
        cluster.run_for(1.5)
        # Each side holds exactly half of last prim {1,2,3,4}: the
        # linear tie-break keeps {1,4} (distinguished member 1)
        # primary, so its update commits now; {2,3}'s stays red until
        # the heal merges both.
        stores[4].take_stock("x", 10)   # primary side (tie + member 1)
        stores[2].take_stock("x", 5)    # red side: must not commit
        cluster.run_for(0.5)
        assert sorted(cluster.primary_members()) == [1, 4]
        cluster.heal()
        cluster.run_for(3.0)
        cluster.assert_converged()
        assert stores[3].stock("x", QueryService.WEAK) == 35
