"""Distributed tracing: flight recorder, trace assembler, conformance.

Covers the tracing tentpole end to end:

* :class:`~repro.obs.flight.FlightRecorder` / ``FlightHub`` units —
  bounded ring semantics, tracer mirroring, anomaly dumps;
* trace-id construction (action ids, transaction ids, the
  ``TXN_TRACE_BIT`` partition);
* the ``repro-trace`` assembler (:mod:`repro.tools.tracecli`) — dump /
  load round-trips, happens-before edges on hand-built rows, Chrome
  trace-event export, the CLI;
* the acceptance scenario: a cross-shard transaction through
  :class:`~repro.shard.ShardFabric` yields one merged timeline whose
  happens-before order contains the prepare → decide → finish chain
  across every participant shard — and the *causal signature* of that
  transaction is identical between the simulated and the live
  (asyncio) fabric.
"""

import asyncio
import json
import os

import pytest

from repro.gcs import GcsSettings
from repro.obs import Observability
from repro.obs.flight import (ANOMALY_CATEGORIES, TXN_TRACE_BIT,
                              FlightHub, FlightRecorder, action_trace_id,
                              txn_trace_id)
from repro.obs.spans import STALENESS_STRIDE
from repro.runtime import live_gcs_settings
from repro.shard import LiveShardFabric, ShardFabric
from repro.sim import Tracer
from repro.storage import DiskProfile
from repro.tools import (causal_signature, chrome_trace, descendants,
                         dump_flight, flight_sink, happens_before,
                         load_rows, merge_rows, render_text)
from repro.tools.tracecli import main as trace_main
from repro.tools.scenario import main as scenario_main


# ======================================================================
# recorder units
# ======================================================================
class TestFlightRecorder:
    def test_ring_keeps_newest_events(self):
        rec = FlightRecorder("n1", capacity=4)
        for i in range(10):
            rec.record(float(i), "submit", trace=i)
        events = rec.events()
        assert len(events) == 4
        assert [e[0] for e in events] == [6.0, 7.0, 8.0, 9.0]

    def test_clear_preserves_ring_identity(self):
        # The engine caches the bound ring.append at construction;
        # clear() must not replace the deque behind its back.
        rec = FlightRecorder("n1", capacity=4)
        append = rec.ring.append
        rec.record(1.0, "submit")
        rec.clear()
        assert rec.events() == []
        append((2.0, "send", 7, None))
        assert rec.events() == [(2.0, "send", 7, None)]

    def test_to_dicts_normalizes_details(self):
        rec = FlightRecorder(3, capacity=8)
        rec.record(1.0, "submit")                    # no detail, no trace
        rec.record(2.0, "recv", trace=9, detail=5)   # bare scalar
        rec.record(3.0, "green", trace=9, detail=(4, "prepare"))
        rows = rec.to_dicts()
        assert rows[0] == {"node": 3, "t": 1.0, "kind": "submit"}
        assert rows[1]["detail"] == [5]
        assert rows[2]["detail"] == [4, "prepare"]
        assert rows[2]["trace"] == 9


class TestFlightHub:
    def test_recorder_is_per_key_singleton(self):
        hub = FlightHub(capacity=16)
        assert hub.recorder(1) is hub.recorder(1)
        assert hub.recorder(1) is not hub.recorder(2)

    def test_tracer_mirroring_and_idempotent_attach(self):
        hub = FlightHub()
        tracer = Tracer(enabled=True)
        hub.attach(tracer)
        hub.attach(tracer)          # second attach must not double events
        tracer.emit(1.5, 2, "engine.state", state="PRIM")
        events = hub.recorder(2).events()
        assert events == [(1.5, "engine.state", 0, ("state=PRIM",))]

    def test_anomaly_category_triggers_sink(self):
        hub = FlightHub()
        tracer = Tracer(enabled=True)
        hub.attach(tracer)
        dumps = []
        hub.sink = lambda reason, dump: dumps.append((reason, dump))
        category = sorted(ANOMALY_CATEGORIES)[0]
        tracer.emit(2.0, 1, category)
        assert hub.anomalies == 1
        assert dumps and dumps[0][0] == category
        assert 1 in dumps[0][1]


class TestTraceIds:
    def test_action_ids_are_nonzero_and_distinct(self):
        ids = {action_trace_id(s, i) for s in (1, 2, 3) for i in range(4)}
        assert len(ids) == 12
        assert 0 not in ids
        assert all(t < TXN_TRACE_BIT for t in ids)

    def test_txn_ids_carry_the_txn_bit_and_are_stable(self):
        t = txn_trace_id("txn1-7")
        assert t == txn_trace_id("txn1-7")
        assert t >= TXN_TRACE_BIT
        assert t < 1 << 63                       # fits a signed wire field
        assert txn_trace_id("txn1-8") != t

    def test_staleness_stride_is_a_power_of_two(self):
        # The engine samples with a single AND; see repro/core/engine.py.
        assert STALENESS_STRIDE > 0
        assert STALENESS_STRIDE & (STALENESS_STRIDE - 1) == 0


# ======================================================================
# dump / load round-trip
# ======================================================================
class TestDumpRoundTrip:
    def _hub(self):
        hub = FlightHub()
        hub.recorder(1).record(1.0, "submit", trace=9)
        hub.recorder(1).record(2.0, "send", trace=9)
        hub.recorder(2).record(3.0, "recv", trace=9, detail=1)
        hub.recorder(2).record(4.0, "green", trace=9, detail=0)
        return hub

    def test_dump_load_merge(self, tmp_path):
        hub = self._hub()
        paths = dump_flight(hub, str(tmp_path))
        assert sorted(os.path.basename(p) for p in paths) == \
            ["flight-manual-1.jsonl", "flight-manual-2.jsonl"]
        rows = load_rows([str(tmp_path)])
        assert len(rows) == 4
        assert [r["kind"] for r in rows] == \
            ["submit", "send", "recv", "green"]

    def test_dump_accepts_observability_and_noop_when_off(self, tmp_path):
        obs = Observability(flight=True)
        obs.flight_hub.recorder(5).record(1.0, "submit")
        assert dump_flight(obs, str(tmp_path / "on"))
        assert dump_flight(Observability(), str(tmp_path / "off")) == []

    def test_flight_sink_numbers_artifacts(self, tmp_path):
        hub = self._hub()
        hub.sink = flight_sink(str(tmp_path))
        hub.note_anomaly("replica.crash")
        hub.note_anomaly("txn.timeout")
        names = sorted(os.listdir(tmp_path))
        assert len(names) == 4          # two dumps x two recorders
        assert any("replica.crash" in n for n in names)
        assert any("txn.timeout" in n for n in names)


# ======================================================================
# happens-before on hand-built rows
# ======================================================================
def _row(node, t, kind, trace=0, detail=None):
    row = {"node": node, "t": t, "kind": kind}
    if trace:
        row["trace"] = trace
    if detail is not None:
        row["detail"] = detail
    return row


class TestHappensBefore:
    def rows(self):
        return merge_rows([
            _row(1, 1.0, "submit", 9),
            _row(1, 1.1, "send", 9),
            _row(2, 1.3, "recv", 9, [1]),
            _row(2, 1.5, "green", 9, [0]),
            _row(1, 1.4, "green", 9, [0]),
        ])

    def test_program_send_recv_and_delivery_edges(self):
        rows = self.rows()
        edges = set(happens_before(rows))
        index = {(r["node"], r["kind"]): i for i, r in enumerate(rows)}
        submit, send = index[(1, "submit")], index[(1, "send")]
        recv, green2 = index[(2, "recv")], index[(2, "green")]
        assert (submit, send) in edges          # program order
        assert (send, recv) in edges            # wire edge
        assert (recv, green2) in edges          # delivery edge

    def test_descendants_follow_the_chain(self):
        rows = self.rows()
        edges = happens_before(rows)
        start = next(i for i, r in enumerate(rows)
                     if r["kind"] == "submit")
        reached = {(rows[i]["node"], rows[i]["kind"])
                   for i in descendants(edges, start)}
        assert (2, "green") in reached
        assert (1, "green") in reached

    def test_causal_signature_is_time_independent(self):
        shifted = [dict(r, t=r["t"] + 5.0) for r in self.rows()]
        assert causal_signature(self.rows()) == \
            causal_signature(merge_rows(shifted))

    def test_render_text_and_chrome_trace(self, tmp_path):
        rows = self.rows()
        text = render_text(rows)
        assert "submit" in text and "green" in text
        doc = chrome_trace(rows)
        assert doc["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert {"i", "b", "e"} <= phases


# ======================================================================
# acceptance: cross-shard transaction, sim and live
# ======================================================================
LOCALS = 2
#: greens per shard: locals + prepare/decide/finish at the decider
#: (shard 0), locals + prepare/finish at the other participant.
EXPECTED_GREENS = {0: LOCALS + 3, 1: LOCALS + 2}

SIM_GCS = GcsSettings(heartbeat_interval=0.02, failure_timeout=0.08,
                      gather_settle=0.02, phase_timeout=0.15)
SIM_DISK = DiskProfile(forced_write_latency=0.001)


def _cross_keys(router):
    key_for = {}
    probe = 0
    while 0 not in key_for or 1 not in key_for:
        key_for.setdefault(router.shard_for_key(f"xk{probe}"),
                           f"xk{probe}")
        probe += 1
    return key_for


def _load(fabric, outcomes):
    key_for = _cross_keys(fabric.router)
    for shard in range(2):
        for i in range(LOCALS):
            fabric.submit_local(shard, ("SET", f"s{shard}-k{i}", i))
    fabric.submit([("SET", key_for[0], "x0"), ("SET", key_for[1], "x1")],
                  lambda _txn, outcome: outcomes.append(outcome))


def _traced_obs():
    return Observability(flight=True, staleness=True)


def _sim_rows():
    obs = _traced_obs()
    fabric = ShardFabric(2, 3, seed=0, gcs_settings=SIM_GCS,
                         disk_profile=SIM_DISK, observability=obs)
    fabric.start_all(settle=1.5)
    outcomes = []
    _load(fabric, outcomes)
    deadline = fabric.sim.now + 60.0
    while (any(fabric.green_count(s) < EXPECTED_GREENS[s]
               for s in EXPECTED_GREENS) or not outcomes):
        assert fabric.sim.now < deadline, "sim fabric stalled"
        fabric.run_for(0.05)
    fabric.run_for(1.0)
    assert outcomes == ["commit"]
    return merge_rows(r for rows in obs.flight_hub.dump().values()
                      for r in rows)


def _live_rows(udp):
    async def scenario():
        obs = _traced_obs()
        fabric = LiveShardFabric(2, 3, udp=udp,
                                 gcs_settings=live_gcs_settings(),
                                 observability=obs)
        try:
            fabric.start_all()
            await fabric.wait_all_primary(timeout=15)
            outcomes = []
            _load(fabric, outcomes)
            for shard, count in EXPECTED_GREENS.items():
                await fabric.wait_green(shard, count, timeout=20)
            await fabric.wait_no_inflight(timeout=10)
            assert outcomes == ["commit"]
            return merge_rows(r for rows in obs.flight_hub.dump().values()
                              for r in rows)
        finally:
            fabric.shutdown()

    return asyncio.run(scenario())


def _txn_trace_of(rows):
    traces = {r["trace"] for r in rows
              if r.get("trace", 0) >= TXN_TRACE_BIT}
    assert len(traces) == 1, f"expected one transaction, saw {traces}"
    return traces.pop()


def _assert_txn_chain(rows):
    """The merged timeline must causally chain prepare → decide →
    finish across every participant shard."""
    trace = _txn_trace_of(rows)
    edges = happens_before(rows)
    begin = next(i for i, r in enumerate(rows)
                 if r["kind"] == "txn.begin" and r.get("trace") == trace)
    reached = descendants(edges, begin)
    kinds = {rows[i]["kind"] for i in reached}
    for kind in ("txn.prepared", "txn.decide", "txn.decided",
                 "txn.finish", "txn.done"):
        assert kind in kinds, f"{kind} not causally after txn.begin"
    # Greens for the transaction's records must be reached on nodes of
    # BOTH shards (shard of node n is n's thousands digit group: the
    # fabric allocates global ids per shard).
    green_nodes = {rows[i]["node"] for i in reached
                   if rows[i]["kind"] == "green"
                   and rows[i].get("trace") == trace}
    from repro.shard.router import shard_of
    assert {shard_of(n) for n in green_nodes} == {0, 1}
    # decide is causally after every prepare green, and done after
    # every finish-phase event the decide reaches.
    decide = next(i for i, r in enumerate(rows)
                  if r["kind"] == "txn.decide" and r.get("trace") == trace)
    after_decide = {rows[i]["kind"] for i in descendants(edges, decide)}
    assert "txn.done" in after_decide
    return trace


class TestCrossShardAcceptance:
    def test_sim_fabric_yields_causal_txn_chain(self):
        rows = _sim_rows()
        trace = _assert_txn_chain(rows)
        # The per-trace view renders and exports.
        assert render_text(rows, trace=trace)
        assert chrome_trace(rows)["traceEvents"]

    @pytest.mark.parametrize("udp", [False, True],
                             ids=["memory", "udp"])
    def test_sim_and_live_causal_signatures_match(self, udp):
        # Wall-clock timings differ arbitrarily between the simulator
        # and a live run; the reconstructed causal structure of the
        # cross-shard transaction may not.
        sim_rows = _sim_rows()
        live_rows = _live_rows(udp)
        trace = _assert_txn_chain(live_rows)
        assert trace == _txn_trace_of(sim_rows)
        sim_sig = causal_signature(sim_rows)[trace]
        live_sig = causal_signature(live_rows)[trace]
        assert sim_sig == live_sig


# ======================================================================
# CLI round trips
# ======================================================================
SCENARIO = {
    "replicas": 3,
    "seed": 1,
    "settle": 2.0,
    "steps": [
        {"op": "submit", "node": 1, "update": ["SET", "k", 42]},
        {"op": "run", "seconds": 1.0},
        {"op": "check", "kind": "converged"},
    ],
}


class TestCli:
    def test_scenario_trace_out_feeds_repro_trace(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps(SCENARIO))
        out_dir = tmp_path / "flight"
        assert scenario_main([str(spec), "--trace-out", str(out_dir)]) == 0
        dumps = [n for n in os.listdir(out_dir)
                 if n.startswith("flight-") and n.endswith(".jsonl")]
        assert len(dumps) == 3
        chrome = tmp_path / "trace.json"
        assert trace_main([str(out_dir), "--edges",
                           "--chrome", str(chrome)]) == 0
        out = capsys.readouterr().out
        assert "happens-before" in out
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]

    def test_trace_cli_empty_input_fails(self, tmp_path):
        assert trace_main([str(tmp_path)]) == 1
