"""Differential parity: the compiled and pure builds are interchangeable.

The accelerated module set (:mod:`repro.accel`) ships as pure-python
reference sources that mypyc optionally compiles (``REPRO_ACCEL=1`` at
install time).  These tests prove the two builds are *the same
simulation*: identical green orders, identical database digests,
identical event streams.

Without a compiled install both subprocesses run the pure build and the
differential collapses to a cross-process determinism check — still a
real assertion, so nothing here skips on a pure-only machine except the
compiled-build-specific checks at the bottom.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro import accel
from repro.accel.modules import ACCEL_MODULES

from conftest import make_cluster

#: Small cluster workload run inside worker subprocesses: submit
#: interleaved updates at two replicas, ride through a partition/heal,
#: then report the green order and per-replica digests.
_WORKER_SCRIPT = textwrap.dedent("""
    import json
    import sys

    from repro import accel
    from conftest import make_cluster

    cluster = make_cluster(3)
    cluster.start_all(settle=1.0)
    c1, c2 = cluster.client(1), cluster.client(2)
    for i in range(12):
        c1.submit(("INC", "a", 1))
        c2.submit(("SET", f"k{i}", i))
    cluster.run_for(1.0)
    cluster.partition([1, 2], [3])
    cluster.run_for(0.5)
    for i in range(4):
        c1.submit(("INC", "b", 1))
    cluster.heal()
    cluster.run_for(2.0)
    cluster.assert_converged()
    replica = cluster.replicas[1]
    order = [[a.server_id, a.action_id.index]
             for _pos, a in replica.engine.queue.green_slice(0)]
    print(json.dumps({
        "build": accel.active(),
        "force_pure": accel.force_pure_requested(),
        "events": cluster.sim.events_processed,
        "sim_now": cluster.sim.now,
        "green_order": order,
        "digests": {str(n): r.database.digest()
                    for n, r in sorted(cluster.replicas.items())},
    }))
""")


def _run_worker(force_pure: bool) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH", ""),
                    os.path.dirname(os.path.abspath(__file__)))
        if p)
    if force_pure:
        env["REPRO_FORCE_PURE"] = "1"
    else:
        env.pop("REPRO_FORCE_PURE", None)
    proc = subprocess.run([sys.executable, "-c", _WORKER_SCRIPT],
                          env=env, capture_output=True, text=True,
                          timeout=300)
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout.splitlines()[-1])


# ----------------------------------------------------------------------
# build introspection API
# ----------------------------------------------------------------------
def test_active_reports_a_known_build():
    assert accel.active() in ("pure", "compiled", "mixed")


def test_build_info_covers_every_accel_module():
    info = accel.build_info()
    assert set(info) == set(ACCEL_MODULES)
    assert set(info.values()) <= {"pure", "compiled"}


def test_no_mixed_build_installed():
    # A partial compile is a broken install: fail loudly here rather
    # than letting benchmarks attribute numbers to the wrong build.
    assert accel.active() != "mixed", accel.build_info()


def test_force_pure_env_flag_parsing(monkeypatch):
    monkeypatch.delenv("REPRO_FORCE_PURE", raising=False)
    assert not accel.force_pure_requested()
    monkeypatch.setenv("REPRO_FORCE_PURE", "0")
    assert not accel.force_pure_requested()
    monkeypatch.setenv("REPRO_FORCE_PURE", "1")
    assert accel.force_pure_requested()


def test_force_pure_subprocess_runs_pure():
    report = _run_worker(force_pure=True)
    assert report["force_pure"] is True
    assert report["build"] == "pure"


# ----------------------------------------------------------------------
# differential parity
# ----------------------------------------------------------------------
def test_builds_agree_on_green_order_and_digests():
    pure = _run_worker(force_pure=True)
    default = _run_worker(force_pure=False)
    assert pure["green_order"] == default["green_order"]
    assert pure["digests"] == default["digests"]
    assert pure["events"] == default["events"]
    assert pure["sim_now"] == default["sim_now"]


def test_in_process_run_matches_pure_subprocess():
    # The suite's own (possibly compiled) interpreter replays the exact
    # trace the pinned-pure subprocess produced.
    expected = _run_worker(force_pure=True)
    cluster = make_cluster(3)
    cluster.start_all(settle=1.0)
    c1, c2 = cluster.client(1), cluster.client(2)
    for i in range(12):
        c1.submit(("INC", "a", 1))
        c2.submit(("SET", f"k{i}", i))
    cluster.run_for(1.0)
    cluster.partition([1, 2], [3])
    cluster.run_for(0.5)
    for _ in range(4):
        c1.submit(("INC", "b", 1))
    cluster.heal()
    cluster.run_for(2.0)
    cluster.assert_converged()
    replica = cluster.replicas[1]
    order = [[a.server_id, a.action_id.index]
             for _pos, a in replica.engine.queue.green_slice(0)]
    digests = {str(n): r.database.digest()
               for n, r in sorted(cluster.replicas.items())}
    assert order == expected["green_order"]
    assert digests == expected["digests"]
    assert cluster.sim.events_processed == expected["events"]


# ----------------------------------------------------------------------
# compiled build only
# ----------------------------------------------------------------------
compiled_only = pytest.mark.skipif(
    accel.active() != "compiled",
    reason="compiled (mypyc) build not installed")


@compiled_only
def test_compiled_modules_are_extensions():
    info = accel.build_info()
    assert all(build == "compiled" for build in info.values()), info


@compiled_only
def test_compiled_kernel_is_native():
    from repro.sim.kernel import Simulator
    origin = sys.modules["repro.sim.kernel"].__file__ or ""
    assert origin.endswith((".so", ".pyd"))
    # The interpreted zero-override subclass must still work on the
    # native base class (mypyc_attr(allow_interpreted_subclasses=True)).
    from repro.runtime import SimRuntime
    sim = SimRuntime()
    fired = []
    sim.post(0.1, fired.append, 1)
    handle = sim.schedule(0.2, fired.append, 2)
    handle.cancel()
    sim.run()
    assert fired == [1]
    assert isinstance(sim, Simulator)


@compiled_only
def test_default_subprocess_runs_compiled():
    report = _run_worker(force_pure=False)
    assert report["build"] == "compiled"
