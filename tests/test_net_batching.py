"""Unit tests for the wire-batching layer (repro.net.batching)."""

import pytest

from repro.net.batching import Batch, WireBatchConfig, WireBatcher
from repro.sim import Simulator


class FakeTransport:
    """Records every send the batcher makes."""

    def __init__(self):
        self.sends = []          # (dst, payload, size)
        self.multicasts = []     # (dsts, payload, size)

    def send(self, src, dst, payload, size=200):
        self.sends.append((dst, payload, size))

    def multicast(self, src, dsts, payload, size=200):
        self.multicasts.append((tuple(dsts), payload, size))


CONFIG = WireBatchConfig(max_batch=4, max_delay=0.0005,
                         idle_threshold=0.002)


def make_batcher(config=CONFIG):
    sim = Simulator()
    transport = FakeTransport()
    batcher = WireBatcher(sim, 1, transport, config)
    return sim, transport, batcher


def test_config_enabled_threshold():
    assert not WireBatchConfig().enabled
    assert not WireBatchConfig(max_batch=1).enabled
    assert not WireBatchConfig(max_batch=0).enabled
    assert WireBatchConfig(max_batch=2).enabled


def test_idle_destination_sends_immediately():
    sim, transport, batcher = make_batcher()
    batcher.send(2, "hello", 100)
    # No simulated time needed: quiet destinations ship synchronously,
    # and the payload goes raw (no Batch wrapper).
    assert transport.sends == [(2, "hello", 100)]
    assert batcher.pending_payloads() == 0


def test_busy_destination_coalesces_until_timer():
    sim, transport, batcher = make_batcher()
    batcher.send(2, "a", 10)           # idle -> immediate
    batcher.send(2, "b", 20)           # within idle_threshold -> buffer
    batcher.send(2, "c", 30)
    assert transport.sends == [(2, "a", 10)]
    assert batcher.pending_payloads() == 2
    sim.run(until=CONFIG.max_delay * 2)
    assert batcher.pending_payloads() == 0
    assert len(transport.sends) == 2
    dst, payload, size = transport.sends[1]
    assert dst == 2
    assert payload == Batch([("b", 20), ("c", 30)])
    assert size == (CONFIG.frame_header
                    + (CONFIG.entry_header + 20)
                    + (CONFIG.entry_header + 30))


def test_max_batch_forces_flush_without_timer():
    sim, transport, batcher = make_batcher()
    batcher.send(2, "prime", 10)
    for i in range(CONFIG.max_batch):
        batcher.send(2, i, 10)
    # The 4th buffered payload hits max_batch: flushed synchronously.
    assert batcher.pending_payloads() == 0
    assert len(transport.sends) == 2
    assert transport.sends[1][1] == Batch([(i, 10) for i in range(4)])


def test_quiet_period_resets_to_immediate():
    sim, transport, batcher = make_batcher()
    batcher.send(2, "a", 10)
    sim.run(until=CONFIG.idle_threshold * 2)
    batcher.send(2, "b", 10)           # destination went quiet again
    assert [p for _d, p, _s in transport.sends] == ["a", "b"]


def test_single_buffered_payload_flushes_raw():
    sim, transport, batcher = make_batcher()
    batcher.send(2, "a", 10)
    batcher.send(2, "b", 20)
    batcher.flush_all()
    # A flush finding one buffered payload sends it raw, not as a
    # one-entry Batch.
    assert transport.sends == [(2, "a", 10), (2, "b", 20)]


def test_multicast_keying_and_empty_dsts():
    sim, transport, batcher = make_batcher()
    batcher.multicast((), "nobody", 10)
    assert transport.multicasts == []
    batcher.multicast((2, 3), "m0", 10)
    batcher.multicast((2, 3), "m1", 10)   # same set: buffers
    batcher.multicast((2, 4), "n0", 10)   # different set: own key
    batcher.send(2, "u0", 10)             # unicast: own key
    assert transport.multicasts == [((2, 3), "m0", 10),
                                    ((2, 4), "n0", 10)]
    assert transport.sends == [(2, "u0", 10)]
    assert batcher.pending_payloads() == 1
    batcher.flush_all()
    assert transport.multicasts[-1] == ((2, 3), "m1", 10)


def test_flush_all_cancels_timer_and_drains():
    sim, transport, batcher = make_batcher()
    batcher.send(2, "a", 10)
    batcher.send(2, "b", 10)
    batcher.send(3, "c", 10)
    batcher.send(3, "d", 10)
    assert batcher.pending_payloads() == 2
    batcher.flush_all()
    assert batcher.pending_payloads() == 0
    sent = [(d, p) for d, p, _s in transport.sends]
    assert (2, "b") in sent and (3, "d") in sent
    # Timer was cancelled: running on produces no duplicate sends.
    count = len(transport.sends)
    sim.run(until=1.0)
    assert len(transport.sends) == count


def test_drop_all_discards_buffered_payloads():
    sim, transport, batcher = make_batcher()
    batcher.send(2, "a", 10)
    batcher.send(2, "doomed", 10)
    batcher.drop_all()
    assert batcher.pending_payloads() == 0
    sim.run(until=1.0)
    assert transport.sends == [(2, "a", 10)]


def test_counters_track_frames_and_payloads():
    sim, transport, batcher = make_batcher()
    batcher.send(2, "a", 10)
    batcher.send(2, "b", 10)
    batcher.send(2, "c", 10)
    batcher.flush_all()
    assert batcher.frames_sent == 2       # raw "a" + Batch(b, c)
    assert batcher.payloads_sent == 3


def test_batch_equality_and_len():
    a = Batch([("x", 1), ("y", 2)])
    b = Batch([("x", 1), ("y", 2)])
    assert a == b and hash(a) == hash(b) and len(a) == 2
    assert a != Batch([("x", 1)])
    assert a != "x"
