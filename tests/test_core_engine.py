"""Engine behavior tests on a live (simulated) cluster."""

import pytest

from repro.core import EngineState
from repro.db import ActionId

from conftest import make_cluster


class TestPrimaryFormation:
    def test_all_replicas_reach_regprim(self, cluster3):
        assert all(r.engine.state is EngineState.REG_PRIM
                   for r in cluster3.replicas.values())

    def test_prim_component_recorded(self, cluster3):
        for replica in cluster3.replicas.values():
            assert replica.engine.prim_component.prim_index == 1
            assert replica.engine.prim_component.servers == (1, 2, 3)

    def test_vulnerable_valid_while_in_primary(self, cluster3):
        # A server in RegPrim is vulnerable to the attempt that
        # installed it (cleared only when it leaves with full
        # knowledge).
        for replica in cluster3.replicas.values():
            assert replica.engine.vulnerable.is_valid


class TestOrdering:
    def test_actions_from_all_nodes_identically_ordered(self, cluster3):
        clients = {n: cluster3.client(n) for n in (1, 2, 3)}
        for i in range(4):
            for n, client in clients.items():
                client.submit(("SET", f"k{n}.{i}", i))
        cluster3.run_for(1.0)
        cluster3.assert_converged()
        logs = cluster3.applied_logs()
        assert len(logs[1]) == 12

    def test_client_completion_counts(self, cluster3):
        client = cluster3.client(2)
        for i in range(10):
            client.submit(("INC", "n", 1))
        cluster3.run_for(1.0)
        assert client.completed == 10
        assert cluster3.replicas[1].database.state["n"] == 10

    def test_fifo_per_client_server(self, cluster3):
        client = cluster3.client(1)
        for i in range(5):
            client.submit(("APPEND", "log", i))
        cluster3.run_for(1.0)
        assert cluster3.replicas[3].database.state["log"] == \
            [0, 1, 2, 3, 4]

    def test_green_lines_propagate_and_whites_truncate(self, cluster3):
        # Green lines travel as piggybacks on each creator's actions,
        # so every server must create actions for the white line (min
        # over lines) to advance.
        clients = {n: cluster3.client(n) for n in (1, 2, 3)}
        for _round in range(4):
            for client in clients.values():
                client.submit(("INC", "n", 1))
            cluster3.run_for(0.5)
        for replica in cluster3.replicas.values():
            assert replica.engine.queue.white_line > 0
            assert replica.engine.queue.green_offset > 0


class TestPartitionBehavior:
    def test_minority_goes_nonprim(self, cluster5):
        cluster5.partition([1, 2], [3, 4, 5])
        cluster5.run_for(1.5)
        states = {n: cluster5.replicas[n].engine.state for n in range(1, 6)}
        assert states[1] is EngineState.NON_PRIM
        assert states[2] is EngineState.NON_PRIM
        assert states[3] is EngineState.REG_PRIM

    def test_no_quorum_anywhere_in_three_way_split(self, cluster5):
        cluster5.partition([1, 2], [3, 4], [5])
        cluster5.run_for(1.5)
        assert cluster5.primary_members() == []

    def test_minority_actions_stay_red(self, cluster5):
        cluster5.partition([1, 2], [3, 4, 5])
        cluster5.run_for(1.5)
        client = cluster5.client(1)
        client.submit(("SET", "red", 1))
        cluster5.run_for(0.5)
        assert client.completed == 0
        engine = cluster5.replicas[1].engine
        assert len(engine.queue.red_actions()) == 1
        cluster5.assert_single_primary()

    def test_red_actions_complete_after_merge(self, cluster5):
        cluster5.partition([1, 2], [3, 4, 5])
        cluster5.run_for(1.5)
        client = cluster5.client(1)
        client.submit(("SET", "late", "minority"))
        cluster5.run_for(0.5)
        cluster5.heal()
        cluster5.run_for(2.0)
        assert client.completed == 1
        cluster5.assert_converged()
        assert cluster5.replicas[5].database.state["late"] == "minority"

    def test_majority_keeps_serving_during_partition(self, cluster5):
        cluster5.partition([1, 2], [3, 4, 5])
        cluster5.run_for(1.5)
        client = cluster5.client(4)
        for i in range(5):
            client.submit(("INC", "maj", 1))
        cluster5.run_for(1.0)
        assert client.completed == 5

    def test_cascaded_partitions_converge(self, cluster5):
        client = cluster5.client(3)
        client.submit(("SET", "pre", 1))
        cluster5.run_for(0.5)
        cluster5.partition([1, 2, 3], [4, 5])
        cluster5.run_for(1.0)
        cluster5.partition([1], [2, 3], [4, 5])
        cluster5.run_for(1.0)
        cluster5.partition([1, 4, 5], [2, 3])
        cluster5.run_for(1.0)
        cluster5.heal()
        cluster5.run_for(3.0)
        cluster5.assert_converged()

    def test_quorum_follows_last_primary(self, cluster5):
        # After {3,4,5} is primary, {1,2}+{3} is 1-of-3 + others: the
        # component {1,2,3} contains only one member of the last
        # primary {3,4,5} -> no quorum; {4,5} has 2 of 3 -> primary.
        cluster5.partition([1, 2], [3, 4, 5])
        cluster5.run_for(1.5)
        cluster5.partition([1, 2, 3], [4, 5])
        cluster5.run_for(1.5)
        assert sorted(cluster5.primary_members()) == [4, 5]
        states = cluster5.states()
        assert states[1] == "NonPrim" and states[3] == "NonPrim"


class TestBuffering:
    def test_requests_buffered_during_exchange_complete_later(self):
        cluster = make_cluster(3)
        cluster.start_all(settle=1.0)
        cluster.partition([1], [2, 3])
        # Submit while the view change is still settling.
        client = cluster.client(2)
        client.submit(("SET", "mid-exchange", 1))
        cluster.run_for(2.0)
        assert client.completed == 1


class TestQueryOnlyFastPath:
    def test_consistent_read_in_primary(self, cluster3):
        client = cluster3.client(1)
        client.submit(("SET", "k", "v"))
        cluster3.run_for(1.0)
        assert cluster3.replicas[2].query_consistent(("GET", "k")) == "v"
