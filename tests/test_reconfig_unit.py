"""Unit tests for the join/transfer protocol roles (Section 5.2),
using lightweight fake replicas — no cluster in the loop."""

import pytest

from repro.core.reconfig import (JoinRequest, JoinerProtocol,
                                 RepresentativeRole, TransferBusy,
                                 TransferHeader)
from repro.db import Database, SnapshotSender
from repro.db.action import Action, ActionId
from repro.sim import Simulator


class FakeEndpoint:
    def __init__(self):
        self.sent = []

    def send(self, peer, payload, size=200):
        self.sent.append((peer, payload))

    def of_type(self, kind):
        return [(peer, p) for peer, p in self.sent
                if isinstance(p, kind)]


class FakeEngine:
    def __init__(self):
        self.queue = type("Q", (), {})()
        self.queue.red_cut = {1: 0, 2: 0}
        self.queue.green_lines = {1: 0, 2: 0}
        self.queue.servers = [1, 2]
        self.queue.green_count = 5
        self.removed_servers = set()
        self.exited = False
        self._index = 0
        self.submitted = []

    def next_action_id(self):
        self._index += 1
        return ActionId(1, self._index)

    def submit_action(self, action):
        self.submitted.append(action)


class FakeReplica:
    def __init__(self, sim):
        self.sim = sim
        self.node = 1
        self.database = Database()
        for i in range(5):
            self.database.apply(Action(
                action_id=ActionId(2, i + 1),
                update=("SET", f"k{i}", i)))
        self.endpoint = FakeEndpoint()
        self.engine = FakeEngine()


class TestRepresentativeRole:
    def test_first_contact_orders_a_join(self):
        replica = FakeReplica(Simulator())
        role = RepresentativeRole(replica)
        role.on_join_request(JoinRequest(joiner_id=9))
        assert len(replica.engine.submitted) == 1
        action = replica.engine.submitted[0]
        assert action.join_id == 9

    def test_exited_engine_ignores_requests(self):
        replica = FakeReplica(Simulator())
        replica.engine.exited = True
        role = RepresentativeRole(replica)
        role.on_join_request(JoinRequest(joiner_id=9))
        assert replica.engine.submitted == []

    def test_start_transfer_streams_header_and_chunks(self):
        replica = FakeReplica(Simulator())
        role = RepresentativeRole(replica, chunk_items=2)
        join = Action(action_id=ActionId(1, 1), join_id=9)
        role.start_transfer(join, position=4)
        headers = replica.endpoint.of_type(TransferHeader)
        assert len(headers) == 1
        peer, header = headers[0]
        assert peer == 9
        assert header.green_count == 5
        # 5 keys at 2 per chunk -> 3 chunks.
        assert header.total_chunks == 3
        assert len(replica.endpoint.sent) == 1 + 3

    def test_resume_streams_from_requested_chunk(self):
        replica = FakeReplica(Simulator())
        role = RepresentativeRole(replica, chunk_items=2)
        join = Action(action_id=ActionId(1, 1), join_id=9)
        role.start_transfer(join, position=4)
        replica.endpoint.sent.clear()
        # The joiner is already known here; it resumes from chunk 2.
        replica.engine.queue.red_cut[9] = 1
        role.on_join_request(JoinRequest(9, transfer_id="1:1",
                                         next_needed=2))
        chunks = [p for _peer, p in replica.endpoint.sent
                  if not isinstance(p, TransferHeader)]
        assert len(chunks) == 1
        assert chunks[0].seq == 2

    def test_unknown_transfer_rebuilds_from_own_state(self):
        replica = FakeReplica(Simulator())
        role = RepresentativeRole(replica, chunk_items=2)
        replica.engine.queue.red_cut[9] = 1  # join ordered here
        replica.engine.queue.green_lines[9] = 3
        role.on_join_request(JoinRequest(9, transfer_id="gone",
                                         next_needed=0))
        headers = replica.endpoint.of_type(TransferHeader)
        assert len(headers) == 1
        assert headers[0][1].transfer_id.startswith("resume-")

    def test_busy_when_behind_the_join_point(self):
        replica = FakeReplica(Simulator())
        role = RepresentativeRole(replica)
        replica.engine.queue.red_cut[9] = 1
        # Our green count (5) is behind the joiner's entry point (9).
        replica.engine.queue.green_lines[9] = 9
        role.on_join_request(JoinRequest(9, transfer_id="gone"))
        assert replica.endpoint.of_type(TransferBusy)


class TestJoinerProtocol:
    def make_joiner(self, peers=(1, 2, 3)):
        sim = Simulator()
        replica = FakeReplica(sim)
        replica.node = 9
        ready = []
        joiner = JoinerProtocol(sim, replica, list(peers),
                                on_ready=ready.append,
                                retry_interval=0.5)
        return sim, replica, joiner, ready

    def test_start_sends_request_to_first_peer(self):
        sim, replica, joiner, _ready = self.make_joiner()
        joiner.start()
        requests = replica.endpoint.of_type(JoinRequest)
        assert requests[0][0] == 1

    def test_stall_rotates_peers(self):
        sim, replica, joiner, _ready = self.make_joiner()
        joiner.start()
        sim.run(until=1.6)   # three retry periods, no progress
        peers = [peer for peer, _p in
                 replica.endpoint.of_type(JoinRequest)]
        assert set(peers) >= {1, 2, 3}

    def test_completion_fires_ready_and_stops_retries(self):
        sim, replica, joiner, ready = self.make_joiner()
        joiner.start()
        snapshot = Database()
        snapshot.apply(Action(action_id=ActionId(1, 1),
                              update=("SET", "x", 1)))
        sender = SnapshotSender("t9", snapshot.snapshot(), chunk_items=2)
        header = TransferHeader("t9", 1, (1, 2, 9), sender.header,
                                sender.total)
        assert joiner.on_message(header)
        for seq in range(sender.total):
            joiner.on_message(sender.chunk(seq))
        assert ready == [header]
        assert replica.database.state == {"x": 1}
        sent_before = len(replica.endpoint.sent)
        sim.run(until=5.0)
        assert len(replica.endpoint.sent) == sent_before  # no retries

    def test_unrelated_payloads_not_consumed(self):
        _sim, _replica, joiner, _ready = self.make_joiner()
        assert not joiner.on_message({"not": "ours"})

    def test_busy_is_consumed_quietly(self):
        _sim, _replica, joiner, ready = self.make_joiner()
        assert joiner.on_message(TransferBusy(9))
        assert ready == []
