"""CLI driver: exit codes, JSON report, strict gate on the live tree."""

import json
from pathlib import Path

from repro.analysis import run_analyzers
from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"
SRC = Path(__file__).parent.parent / "src" / "repro"


def test_nonstrict_reports_but_exits_zero(capsys):
    code = main([str(FIXTURES)])
    out = capsys.readouterr().out
    assert code == 0
    assert "[undeclared-edge]" in out
    assert "[wall-clock]" in out
    assert "[seam-import]" in out


def test_strict_fails_on_fixture_tree():
    assert main(["--strict", str(FIXTURES)]) == 1


def test_strict_passes_on_live_tree():
    # The PR's acceptance gate: the shipped tree is finding-free.
    assert main(["--strict", str(SRC)]) == 0


def test_self_test_over_analysis_package():
    assert main(["--strict", str(SRC / "analysis")]) == 0


def test_missing_path_is_an_error(capsys):
    assert main([str(FIXTURES / "does-not-exist")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_json_report(tmp_path):
    report_file = tmp_path / "report.json"
    code = main(["--json", str(report_file), str(FIXTURES)])
    assert code == 0
    report = json.loads(report_file.read_text())
    assert report["counts"]["active"] > 0
    assert report["counts"]["suppressed"] > 0
    rules = {f["rule"] for f in report["findings"]}
    assert {"undeclared-edge", "wall-clock", "seam-import"} <= rules
    for finding in report["findings"]:
        assert set(finding) == {"rule", "path", "line", "message",
                                "analyzer", "suppressed"}


def test_run_analyzers_sorts_findings():
    findings = run_analyzers([FIXTURES])
    keys = [(f.path, f.line, f.rule) for f in findings]
    assert keys == sorted(keys)


def test_show_suppressed_flag(capsys):
    main(["--show-suppressed", str(FIXTURES / "repro" / "gcs")])
    out = capsys.readouterr().out
    assert "(suppressed)" in out
