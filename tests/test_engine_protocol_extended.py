"""Extended protocol-level engine tests: yellow propagation through
exchanges, vulnerable persistence, OR-3 marking, and the construct
buffer — driven deterministically through the FakeChannel harness."""

import pytest

from repro.core import EngineState, PrimComponent, Vulnerable
from repro.core.messages import (EngineActionMsg, EngineCpcMsg,
                                 EngineStateMsg)
from repro.db import Action, ActionId

from engine_harness import EngineHarness


def build_primary(harness, members=(1, 2, 3)):
    conf = harness.reg_conf(members)
    harness.own_state_msg(conf)
    for member in members:
        if member != harness.engine.server_id:
            harness.state_msg(member, conf)
    harness.own_cpc(conf)
    for member in members:
        if member != harness.engine.server_id:
            harness.cpc(member, conf)
    assert harness.engine.state is EngineState.REG_PRIM
    return conf


class TestYellowThroughExchange:
    def drive_to_yellow(self, harness):
        build_primary(harness)
        harness.action(2, 1, update=("SET", "pre", 1))
        harness.trans_conf((1, 2))
        harness.action(3, 1, update=("SET", "y", 1),
                       in_transitional=True)
        harness.reg_conf((1, 2))
        return harness

    def test_install_greens_yellow_before_red(self):
        harness = EngineHarness(1)
        self.drive_to_yellow(harness)
        conf = harness.engine.conf
        # During the new exchange a fresh red arrives from server 2.
        harness.own_state_msg(conf)
        msg = harness.channel.sent_of(EngineStateMsg)[-1]
        harness.state_msg(2, conf, green_count=msg.green_count,
                          red_cut=dict(msg.red_cut),
                          prim=(msg.prim_component.prim_index,
                                msg.prim_component.attempt_index,
                                msg.prim_component.servers),
                          yellow_valid=True,
                          yellow_ids=(ActionId(3, 1),))
        harness.own_cpc(conf)
        harness.cpc(2, conf)
        assert harness.engine.state is EngineState.REG_PRIM
        # OR-1.2: the yellow action got the first new green position.
        log = harness.database.applied_log
        assert log[-1] == ActionId(3, 1)
        assert harness.database.state["y"] == 1

    def test_yellow_dropped_when_peer_lacks_it(self):
        """The computed yellow is the intersection: if the other valid
        member did not deliver the action in its transitional conf, it
        is not yellow system-wide."""
        harness = EngineHarness(1)
        self.drive_to_yellow(harness)
        conf = harness.engine.conf
        harness.own_state_msg(conf)
        msg = harness.channel.sent_of(EngineStateMsg)[-1]
        harness.state_msg(2, conf, green_count=msg.green_count,
                          red_cut=dict(msg.red_cut),
                          prim=(msg.prim_component.prim_index,
                                msg.prim_component.attempt_index,
                                msg.prim_component.servers),
                          yellow_valid=True, yellow_ids=())
        assert harness.engine.yellow.is_valid
        assert harness.engine.yellow.set == []
        # The action is still red and gets greened by OR-2 at install.
        harness.own_cpc(conf)
        harness.cpc(2, conf)
        assert harness.database.state["y"] == 1


class TestConstructBuffer:
    def test_action_in_construct_greens_after_install(self):
        harness = EngineHarness(1)
        conf = harness.reg_conf((1, 2, 3))
        harness.own_state_msg(conf)
        harness.state_msg(2, conf)
        harness.state_msg(3, conf)
        assert harness.engine.state is EngineState.CONSTRUCT
        # A resubmitted in-flight action lands before the CPC round.
        harness.action(2, 1, update=("SET", "between", 1))
        assert harness.database.state == {}
        harness.own_cpc(conf)
        harness.cpc(2, conf)
        harness.cpc(3, conf)
        assert harness.engine.state is EngineState.REG_PRIM
        assert harness.database.state["between"] == 1
        assert ActionId(2, 1) in harness.database.applied_log

    def test_construct_buffer_cleared_on_new_exchange(self):
        harness = EngineHarness(1)
        conf = harness.reg_conf((1, 2, 3))
        harness.own_state_msg(conf)
        harness.state_msg(2, conf)
        harness.state_msg(3, conf)
        harness.action(2, 1, update=("SET", "between", 1))
        # The install never completes; a new view arrives instead.
        harness.trans_conf((1,))
        harness.reg_conf((1,))
        assert harness.engine._construct_buffer == []
        assert harness.database.state == {}


class TestVulnerablePersistence:
    def test_vulnerable_synced_before_cpc(self):
        harness = EngineHarness(1)
        conf = harness.reg_conf((1, 2))
        harness.own_state_msg(conf)
        harness.state_msg(2, conf)
        assert harness.engine.state is EngineState.CONSTRUCT
        # The CPC is only multicast after the vulnerable record synced.
        assert harness.channel.sent_of(EngineCpcMsg)
        stored = harness.store.get("vulnerable")
        assert stored is not None and stored.is_valid
        assert stored.set == (1, 2)
        assert stored.bits[1] is True  # own bit

    def test_attempt_index_increments_per_attempt(self):
        harness = EngineHarness(1)
        conf = harness.reg_conf((1, 2))
        harness.own_state_msg(conf)
        harness.state_msg(2, conf)
        first_attempt = harness.engine.attempt_index
        # The attempt fails (trans conf); the next one must use a
        # higher index.
        harness.trans_conf((1,))
        harness.reg_conf((1, 2))
        harness.own_state_msg(harness.engine.conf)
        harness.state_msg(2, harness.engine.conf,
                          attempt_index=first_attempt)
        assert harness.engine.attempt_index == first_attempt + 1


class TestFifoPendingDrain:
    def test_gap_arrival_parked_and_drained(self):
        harness = EngineHarness(1)
        conf = harness.reg_conf((1, 2, 3))
        # Actions of server 2 arrive out of FIFO (gap at index 1) —
        # only possible across recovery boundaries; the engine parks.
        harness.action(2, 2, update=("SET", "b", 2))
        assert harness.engine.queue.red_cut[2] == 0
        assert 2 in harness.engine._fifo_pending
        harness.action(2, 1, update=("SET", "a", 1))
        # Drained: both red now, in index order.
        assert harness.engine.queue.red_cut[2] == 2
        reds = [a.action_id for a in harness.engine.queue.red_actions()]
        assert reds == [ActionId(2, 1), ActionId(2, 2)]

    def test_exit_during_install_stops_marking(self):
        """A PERSISTENT_LEAVE for this server inside Install's OR-2
        loop stops further green-marking cleanly."""
        from repro.db import leave_action
        harness = EngineHarness(1)
        conf = harness.reg_conf((1, 2, 3))
        leave = leave_action(ActionId(2, 1), 1)
        harness.channel.deliver(EngineActionMsg(action=leave), origin=2)
        harness.run()
        harness.own_state_msg(conf)
        harness.state_msg(2, conf, red_cut={2: 1})
        harness.state_msg(3, conf, red_cut={2: 1})
        harness.own_cpc(conf)
        harness.cpc(2, conf)
        harness.cpc(3, conf)
        assert harness.engine.exited
