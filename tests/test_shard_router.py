"""Key→shard router properties: total, deterministic, stable placement.

The router is the contract that lets the simulated and the live fabric
agree on key placement without ever talking to each other — so its
properties are checked generatively: every key of every plausible type
must land in exactly one shard, identically across router instances,
and the split of an update into per-shard fragments must lose nothing,
duplicate nothing, and preserve per-shard statement order.  A few
literal pins guard the hash itself: silently changing the placement
function would corrupt every mixed-version deployment, so the exact
SHA-256-derived ring positions are asserted as constants.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.partition import KEYSPACE, RangeMap, even_ranges, hash_key
from repro.shard import (SHARD_STRIDE, KeyRangeRouter, RouterError,
                         global_id, local_id, shard_of, shard_server_ids,
                         statement_key)

# Any value a statement might carry as its key.
KEYS = (st.text(max_size=30) | st.integers() | st.booleans()
        | st.floats(allow_nan=False) | st.none())

SHARD_COUNTS = st.integers(min_value=1, max_value=9)


# ----------------------------------------------------------------------
# the global node-id namespace
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=0, max_value=50),
       st.integers(min_value=1, max_value=SHARD_STRIDE - 1))
def test_global_id_roundtrip(shard, local):
    node = global_id(shard, local)
    assert shard_of(node) == shard
    assert local_id(node) == local


def test_shard_zero_keeps_plain_ids():
    # The single-shard bit-identity story depends on this.
    assert shard_server_ids(0, 5) == [1, 2, 3, 4, 5]
    assert shard_server_ids(1, 3) == [101, 102, 103]


def test_global_id_rejects_out_of_range():
    with pytest.raises(ValueError):
        global_id(-1, 1)
    with pytest.raises(ValueError):
        global_id(0, 0)
    with pytest.raises(ValueError):
        global_id(0, SHARD_STRIDE)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=20),
       st.integers(min_value=1, max_value=20))
def test_shard_server_ids_disjoint_across_shards(shard, count):
    ids = shard_server_ids(shard, count)
    assert len(set(ids)) == count
    assert all(shard_of(node) == shard for node in ids)
    other = shard_server_ids(shard + 1, count)
    assert not set(ids) & set(other)


# ----------------------------------------------------------------------
# placement: total, deterministic, stable
# ----------------------------------------------------------------------
@settings(max_examples=300, deadline=None)
@given(KEYS, SHARD_COUNTS)
def test_placement_total_and_deterministic(key, num_shards):
    shard = KeyRangeRouter(num_shards).shard_for_key(key)
    assert 0 <= shard < num_shards
    # A second, independently built router agrees: placement is a pure
    # function of (key, shard count), never of instance state.
    assert KeyRangeRouter(num_shards).shard_for_key(key) == shard


@settings(max_examples=300, deadline=None)
@given(KEYS)
def test_hash_key_in_ring(key):
    assert 0 <= hash_key(key) < KEYSPACE


def test_hash_key_is_pinned():
    """The exact ring positions are wire contract: changing the hash
    silently re-homes every key of every existing deployment."""
    assert hash_key("a") == 3398926610
    assert hash_key("b") == 1042540566
    assert hash_key(0) == 1609362278
    assert KeyRangeRouter(2).shard_for_key("a") == 1
    assert KeyRangeRouter(2).shard_for_key("b") == 0


@settings(max_examples=50, deadline=None)
@given(SHARD_COUNTS)
def test_even_ranges_tile_the_keyspace(num_shards):
    ranges = even_ranges(num_shards)
    assert ranges[0].lo == 0
    assert ranges[-1].hi == KEYSPACE
    for left, right in zip(ranges, ranges[1:]):
        assert left.hi == right.lo
    range_map = RangeMap.even(num_shards)
    assert range_map.shard_ids == list(range(num_shards))


def test_range_map_rejects_gaps_and_overlaps():
    ranges = even_ranges(2)
    with pytest.raises(ValueError):
        RangeMap([(ranges[0], 0)])                     # stops short
    with pytest.raises(ValueError):
        RangeMap([(ranges[1], 1)])                     # starts late
    with pytest.raises(ValueError):
        RangeMap([(ranges[0], 0), (ranges[0], 1)])     # overlap


# ----------------------------------------------------------------------
# update classification and splitting
# ----------------------------------------------------------------------
STATEMENTS = st.lists(
    st.tuples(st.sampled_from(["SET", "INC", "DEL"]), KEYS,
              st.integers(min_value=-5, max_value=5)),
    min_size=1, max_size=8)


@settings(max_examples=300, deadline=None)
@given(STATEMENTS, SHARD_COUNTS)
def test_split_update_loses_nothing(statements, num_shards):
    router = KeyRangeRouter(num_shards)
    fragments = router.split_update(statements)
    # Every fragment is homed where its statements' keys live...
    for shard, stmts in fragments.items():
        assert stmts, "empty fragment"
        for stmt in stmts:
            assert router.shard_for_key(statement_key(stmt)) == shard
    # ...per-shard statement order is the submission order...
    for shard, stmts in fragments.items():
        expected = [tuple(stmt) for stmt in statements
                    if router.shard_for_key(statement_key(stmt)) == shard]
        assert [tuple(stmt) for stmt in stmts] == expected
    # ...and the union is exactly the original statement multiset.
    total = sum(len(stmts) for stmts in fragments.values())
    assert total == len(statements)
    assert router.is_local(statements) == (len(fragments) == 1)
    assert router.shards_for_update(statements) == sorted(fragments)


def test_single_statement_update_routes_without_nesting():
    router = KeyRangeRouter(2)
    assert router.split_update(("SET", "a", 1)) == {1: (("SET", "a", 1),)}
    assert router.is_local(("INC", "b", 1))


def test_call_statements_route_by_first_string_argument():
    router = KeyRangeRouter(2)
    assert statement_key(("CALL", "proc", ["a", 1])) == "a"
    assert router.shards_for_update(("CALL", "proc", ["a", 1])) == [1]


def test_unroutable_statements_raise():
    with pytest.raises(RouterError):
        statement_key(())
    with pytest.raises(RouterError):
        statement_key(("SET",))
    with pytest.raises(RouterError):
        statement_key(("NOOP",))
    with pytest.raises(RouterError):
        statement_key(("CALL", "proc", [42]))


def test_router_rejects_degenerate_shard_counts():
    with pytest.raises(ValueError):
        KeyRangeRouter(0)
