"""Unit tests for ComputeKnowledge (A.7) and the retransmission plan."""

import pytest

from repro.core import (EngineStateMsg, PrimComponent, Vulnerable,
                        compute_knowledge, plan_retransmission,
                        retransmission_complete)
from repro.core.records import VALID
from repro.db import ActionId
from repro.gcs import ViewId


def report(server, green=0, red_cut=None, prim=(0, 0, (1, 2, 3)),
           attempt=0, vulnerable=None, yellow_valid=False, yellow=()):
    prim_component = PrimComponent(prim[0], prim[1], tuple(prim[2]))
    return EngineStateMsg(
        server_id=server, conf_id=ViewId(1, 1), green_count=green,
        red_cut=dict(red_cut or {}), green_lines={},
        attempt_index=attempt, prim_component=prim_component,
        vulnerable=vulnerable or Vulnerable(),
        yellow_valid=yellow_valid, yellow_ids=tuple(yellow))


def vulnerable(prim_index, attempt, members, me, bits=None):
    record = Vulnerable()
    record.make_valid(prim_index, attempt, tuple(members), me)
    if bits:
        record.bits.update(bits)
    return record


class TestComputeKnowledge:
    def test_adopts_maximal_prim_component(self):
        reports = {
            1: report(1, prim=(2, 1, (1, 2))),
            2: report(2, prim=(3, 1, (2, 3))),
            3: report(3, prim=(3, 1, (2, 3))),
        }
        knowledge = compute_knowledge(reports)
        assert knowledge.prim_component.prim_index == 3
        assert knowledge.updated_group == (2, 3)

    def test_attempt_index_from_updated_group(self):
        reports = {
            1: report(1, prim=(3, 1, (1, 2)), attempt=9),
            2: report(2, prim=(2, 1, (1, 2)), attempt=50),
        }
        knowledge = compute_knowledge(reports)
        assert knowledge.attempt_index == 9

    def test_yellow_intersection_ordered(self):
        ids = [ActionId(5, 1), ActionId(6, 1), ActionId(7, 1)]
        reports = {
            1: report(1, prim=(1, 1, (1, 2)), yellow_valid=True,
                      yellow=(ids[0], ids[1], ids[2])),
            2: report(2, prim=(1, 1, (1, 2)), yellow_valid=True,
                      yellow=(ids[0], ids[2])),
        }
        knowledge = compute_knowledge(reports)
        assert knowledge.yellow.is_valid
        assert knowledge.yellow.set == [ids[0], ids[2]]

    def test_yellow_invalid_when_no_valid_group(self):
        reports = {1: report(1), 2: report(2)}
        knowledge = compute_knowledge(reports)
        assert not knowledge.yellow.is_valid

    def test_yellow_only_from_updated_group(self):
        # Server 1 has a valid yellow but a stale prim: not in the
        # updated group, so its yellow does not count.
        reports = {
            1: report(1, prim=(1, 1, (1, 2)), yellow_valid=True,
                      yellow=(ActionId(9, 1),)),
            2: report(2, prim=(2, 1, (1, 2))),
        }
        knowledge = compute_knowledge(reports)
        assert not knowledge.yellow.is_valid

    def test_vulnerable_invalidated_when_not_in_max_prim(self):
        reports = {
            1: report(1, prim=(5, 1, (2, 3)),
                      vulnerable=vulnerable(4, 1, (1, 2), 1)),
            2: report(2, prim=(5, 1, (2, 3))),
        }
        knowledge = compute_knowledge(reports)
        valid, _bits = knowledge.vulnerable_resolution[1]
        assert not valid

    def test_vulnerable_invalidated_by_mismatched_member(self):
        # Server 2, a member of server 1's attempt, reports an invalid
        # vulnerable record: it knows the outcome of that attempt.
        reports = {
            1: report(1, vulnerable=vulnerable(0, 1, (1, 2), 1)),
            2: report(2),  # invalid vulnerable
        }
        knowledge = compute_knowledge(reports)
        valid, _bits = knowledge.vulnerable_resolution[1]
        assert not valid
        assert not knowledge.any_vulnerable()

    def test_vulnerable_resolved_when_all_members_present(self):
        reports = {
            1: report(1, vulnerable=vulnerable(0, 1, (1, 2, 3), 1)),
            2: report(2, vulnerable=vulnerable(0, 1, (1, 2, 3), 2)),
            3: report(3, vulnerable=vulnerable(0, 1, (1, 2, 3), 3)),
        }
        knowledge = compute_knowledge(reports)
        assert not knowledge.any_vulnerable()
        for server in (1, 2, 3):
            valid, bits = knowledge.vulnerable_resolution[server]
            assert not valid
            assert all(bits.values())

    def test_vulnerable_stays_with_absent_member(self):
        # Member 3 of the attempt is not here: it may have installed
        # and processed actions we cannot see.  Stay vulnerable.
        reports = {
            1: report(1, vulnerable=vulnerable(0, 1, (1, 2, 3), 1)),
            2: report(2, vulnerable=vulnerable(0, 1, (1, 2, 3), 2)),
        }
        knowledge = compute_knowledge(reports)
        assert knowledge.any_vulnerable()
        valid, bits = knowledge.vulnerable_resolution[1]
        assert valid
        assert bits == {1: True, 2: True, 3: False}

    def test_bits_accumulate_across_exchanges(self):
        # Server 1 already carries server 3's bit from a previous
        # exchange; meeting server 2 now completes the set.
        reports = {
            1: report(1, vulnerable=vulnerable(0, 1, (1, 2, 3), 1,
                                               bits={3: True})),
            2: report(2, vulnerable=vulnerable(0, 1, (1, 2, 3), 2)),
        }
        knowledge = compute_knowledge(reports)
        assert not knowledge.any_vulnerable()

    def test_empty_reports_rejected(self):
        with pytest.raises(ValueError):
            compute_knowledge({})


class TestRetransmissionPlan:
    def test_green_holder_is_most_updated(self):
        reports = {
            1: report(1, green=5),
            2: report(2, green=9),
            3: report(3, green=9),
        }
        plan = plan_retransmission(reports)
        assert plan.green_target == 9
        assert plan.green_start == 5
        assert plan.green_holder == 2  # tie broken by lowest id

    def test_red_holders_per_creator(self):
        reports = {
            1: report(1, red_cut={1: 4, 2: 0}),
            2: report(2, red_cut={1: 2, 2: 7}),
        }
        plan = plan_retransmission(reports)
        assert plan.red_targets == {1: 4, 2: 7}
        assert plan.red_holders == {1: 1, 2: 2}
        assert plan.red_floor == {1: 2, 2: 0}

    def test_noop_plan(self):
        reports = {
            1: report(1, green=3, red_cut={1: 1}),
            2: report(2, green=3, red_cut={1: 1}),
        }
        assert plan_retransmission(reports).is_noop()

    def test_retransmission_complete(self):
        reports = {
            1: report(1, green=5, red_cut={1: 4}),
            2: report(2, green=3, red_cut={1: 2}),
        }
        plan = plan_retransmission(reports)
        assert not retransmission_complete(plan, 3, {1: 2})
        assert not retransmission_complete(plan, 5, {1: 2})
        assert retransmission_complete(plan, 5, {1: 4})


class TestRemovedCreatorCompletion:
    def test_removed_creator_not_awaited(self):
        reports = {
            1: report(1, red_cut={1: 0, 2: 3}),   # still carries 2
            3: report(3, red_cut={1: 0}),          # removed 2 already
        }
        plan = plan_retransmission(reports)
        assert plan.red_targets[2] == 3
        # Member 3 (no key for creator 2) is complete without 2's tail.
        assert retransmission_complete(plan, 0, {1: 0})
        # Member 1 still awaits it.
        assert not retransmission_complete(plan, 0, {1: 0, 2: 0})
        assert retransmission_complete(plan, 0, {1: 0, 2: 3})
