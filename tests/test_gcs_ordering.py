"""Unit tests for per-view total ordering and stability."""

import pytest

from repro.gcs import ServiceLevel, ViewId, ViewOrdering
from repro.gcs.types import DataMsg


def make_ordering(members=(1, 2, 3), me=2):
    return ViewOrdering(ViewId(1, 1), frozenset(members), me)


def data(view, origin, fifo, service=ServiceLevel.SAFE):
    return DataMsg(view, origin, fifo, f"m{origin}.{fifo}", service, 200)


class TestIngestion:
    def test_sequencer_is_min_member(self):
        assert make_ordering().sequencer == 1

    def test_add_data_dedupes(self):
        ordering = make_ordering()
        msg = data(ordering.view_id, 2, 0)
        assert ordering.add_data(msg)
        assert not ordering.add_data(msg)

    def test_sequencer_stamps_in_fifo_order(self):
        ordering = make_ordering(me=1)
        # Out-of-fifo arrival: 3.1 before 3.0
        ordering.add_data(data(ordering.view_id, 3, 1))
        assert ordering.take_stamp_batch() == []
        ordering.add_data(data(ordering.view_id, 3, 0))
        batch = ordering.take_stamp_batch()
        assert [(o, f) for _s, o, f in batch] == [(3, 0), (3, 1)]
        assert [s for s, _o, _f in batch] == [0, 1]

    def test_non_sequencer_learns_stamps(self):
        ordering = make_ordering(me=2)
        ordering.add_stamps(((0, 3, 0), (1, 1, 0)))
        assert ordering.max_stamp == 1
        assert ordering.key_at[0] == (3, 0)

    def test_ack_advances_with_contiguous_stamp_and_data(self):
        ordering = make_ordering(me=2)
        ordering.add_stamps(((0, 3, 0), (1, 3, 1)))
        assert ordering.ack_seq == -1
        ordering.add_data(data(ordering.view_id, 3, 1))
        assert ordering.ack_seq == -1  # hole at 0
        ordering.add_data(data(ordering.view_id, 3, 0))
        assert ordering.ack_seq == 1


class TestStabilityAndDelivery:
    def test_safe_waits_for_all_acks(self):
        ordering = make_ordering(me=1)
        ordering.add_data(data(ordering.view_id, 1, 0))
        ordering.take_stamp_batch()
        assert ordering.pop_deliverable() == []
        ordering.add_ack(2, 0)
        assert ordering.pop_deliverable() == []
        ordering.add_ack(3, 0)
        delivered = ordering.pop_deliverable()
        assert [s for s, _m in delivered] == [0]

    def test_agreed_delivers_without_stability(self):
        ordering = make_ordering(me=1)
        ordering.add_data(data(ordering.view_id, 1, 0,
                               ServiceLevel.AGREED))
        ordering.take_stamp_batch()
        assert [s for s, _m in ordering.pop_deliverable()] == [0]

    def test_agreed_behind_safe_blocks(self):
        ordering = make_ordering(me=1)
        ordering.add_data(data(ordering.view_id, 1, 0, ServiceLevel.SAFE))
        ordering.add_data(data(ordering.view_id, 1, 1,
                               ServiceLevel.AGREED))
        ordering.take_stamp_batch()
        # Total order: the agreed message cannot jump the unstable safe.
        assert ordering.pop_deliverable() == []

    def test_delivery_in_seq_order(self):
        ordering = make_ordering(me=1)
        for fifo in range(5):
            ordering.add_data(data(ordering.view_id, 1, fifo,
                                   ServiceLevel.AGREED))
        ordering.take_stamp_batch()
        delivered = ordering.pop_deliverable()
        assert [s for s, _m in delivered] == [0, 1, 2, 3, 4]

    def test_stability_line_is_min_ack(self):
        ordering = make_ordering(me=1)
        ordering.acks[1] = 5
        ordering.add_ack(2, 3)
        ordering.add_ack(3, 7)
        assert ordering.stability_line == 3

    def test_ack_monotonic(self):
        ordering = make_ordering()
        ordering.add_ack(3, 5)
        ordering.add_ack(3, 2)
        assert ordering.acks[3] == 5

    def test_needs_ack_tracking(self):
        ordering = make_ordering(me=1)
        assert not ordering.needs_ack()
        ordering.add_data(data(ordering.view_id, 1, 0))
        ordering.take_stamp_batch()
        assert ordering.needs_ack()
        ordering.note_ack_sent()
        assert not ordering.needs_ack()


class TestGapRecovery:
    def test_missing_data_seqs(self):
        ordering = make_ordering(me=2)
        ordering.add_stamps(((0, 3, 0), (1, 3, 1)))
        ordering.add_data(data(ordering.view_id, 3, 1))
        assert ordering.missing_data_seqs() == [0]

    def test_stamp_gap_detection(self):
        ordering = make_ordering(me=2)
        ordering.add_stamps(((2, 3, 2),))
        assert ordering.has_stamp_gap()
        ordering.add_stamps(((0, 3, 0), (1, 3, 1)))
        assert not ordering.has_stamp_gap()

    def test_retrans_roundtrip(self):
        source = make_ordering(me=1)
        for fifo in range(3):
            source.add_data(data(source.view_id, 1, fifo))
        source.take_stamp_batch()
        items = source.retrans_items([0, 1, 2])
        assert len(items) == 3

        target = make_ordering(me=2)
        target.accept_retrans(tuple(items))
        assert target.ack_seq == 2
        assert target.missing_data_seqs() == []


class TestPruning:
    def build_delivered(self, count=10):
        ordering = make_ordering(me=1)
        for fifo in range(count):
            ordering.add_data(data(ordering.view_id, 1, fifo))
        ordering.take_stamp_batch()
        for member in (2, 3):
            ordering.add_ack(member, count - 1)
        ordering.pop_deliverable()
        return ordering

    def test_prune_discards_stable_delivered(self):
        ordering = self.build_delivered()
        pruned = ordering.prune_stable()
        assert pruned == 10
        assert ordering.data == {}
        assert ordering.pruned_below == 10

    def test_pruned_duplicates_rejected(self):
        ordering = self.build_delivered()
        ordering.prune_stable()
        assert not ordering.add_data(data(ordering.view_id, 1, 0))

    def test_prune_spares_undelivered(self):
        ordering = make_ordering(me=1)
        for fifo in range(4):
            ordering.add_data(data(ordering.view_id, 1, fifo))
        ordering.take_stamp_batch()
        for member in (2, 3):
            ordering.add_ack(member, 1)  # only 0..1 stable
        ordering.pop_deliverable()
        assert ordering.prune_stable() == 2
        assert len(ordering.data) == 2

    def test_stamps_below_prune_point_ignored(self):
        ordering = self.build_delivered()
        ordering.prune_stable()
        ordering.add_stamps(((0, 1, 0),))
        assert 0 not in ordering.key_at


class TestFlushSupport:
    def test_state_report_contents(self):
        ordering = make_ordering(me=1)
        for fifo in range(2):
            ordering.add_data(data(ordering.view_id, 1, fifo))
        ordering.take_stamp_batch()
        report = ordering.state_report(1, attempt=4)
        assert report.old_view_id == ordering.view_id
        assert len(report.stamps) == 2
        assert report.have_data == (0, 1)
        assert report.ack_seq == 1
        assert report.old_members == (1, 2, 3)

    def test_unstamped_own(self):
        ordering = make_ordering(me=2)  # not the sequencer
        ordering.add_data(data(ordering.view_id, 2, 0))
        ordering.add_data(data(ordering.view_id, 3, 0))
        unstamped = ordering.unstamped_own()
        assert [(m.origin, m.fifo_seq) for m in unstamped] == [(2, 0)]

    def test_undelivered_stamped(self):
        ordering = make_ordering(me=1)
        for fifo in range(3):
            ordering.add_data(data(ordering.view_id, 1, fifo))
        ordering.take_stamp_batch()
        for member in (2, 3):
            ordering.add_ack(member, 0)
        ordering.pop_deliverable()  # delivers seq 0 only
        assert ordering.undelivered_stamped() == [1, 2]
