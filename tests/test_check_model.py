"""Unit tests for the abstract Figure-4 model (`repro.check.model`)."""

import pytest

from repro.check.model import (Event, Model, ModelConfig,
                               ModelInternalError, canonicalize)
from repro.core.quorum import DynamicLinearVoting, StaticMajority
from repro.core.state_machine import (EDGES_BY_INPUT, EngineInput,
                                      EngineState, next_states)

S = EngineState
I = EngineInput


def settle(model, state, max_steps=200):
    """Drive the model to quiescence by always taking the first
    enabled protocol event (deterministic: enabled_events is ordered)."""
    for _ in range(max_steps):
        protocol = [e for e in model.enabled_events(state)
                    if e.kind in ("deliver", "ds", "retrans",
                                  "form_view")]
        if not protocol:
            return state
        state = model.apply_event(state, protocol[0])
        assert not model.violations, model.violations
    raise AssertionError("model did not settle")


def bootstrap(nodes=2):
    model = Model(ModelConfig(nodes=nodes, max_faults=0,
                              max_crashes=0, max_actions=1))
    state = settle(model, canonicalize(model.initial_state()))
    return model, state


class TestBootstrap:
    def test_initial_state_is_canonical(self):
        model = Model(ModelConfig(nodes=3))
        state = canonicalize(model.initial_state())
        assert all(n.state is S.NON_PRIM for n in state.nodes)
        assert state.comps == ((1, 2, 3),)
        # Identity fast path: a canonical state comes back unchanged.
        assert canonicalize(state) is state

    def test_full_view_installs_a_primary(self):
        model, state = bootstrap(nodes=2)
        assert all(n.state is S.REG_PRIM for n in state.nodes)
        # Install bumped the primary component index on every node.
        assert all(n.prim[0] == 1 and n.prim[2] == (1, 2)
                   for n in state.nodes)

    def test_client_action_goes_green_everywhere(self):
        model, state = bootstrap(nodes=2)
        client = next(e for e in model.enabled_events(state)
                      if e.kind == "client")
        state = settle(model, model.apply_event(state, client))
        assert all(n.green == ((client.arg[0], 1),)
                   for n in state.nodes)

    def test_edges_seen_are_all_declared(self):
        model, _state = bootstrap(nodes=2)
        declared = {(event, old, new)
                    for event, edges in EDGES_BY_INPUT.items()
                    for old, new in edges}
        assert model.edges_seen  # the bootstrap exercises real edges
        assert model.edges_seen <= declared


class TestDerivation:
    """The model cannot move off the declared Figure-4 table."""

    def test_step_accepts_every_declared_edge(self):
        model = Model(ModelConfig())
        for event, edges in EDGES_BY_INPUT.items():
            for old, new in edges:
                assert model._step(old, new, event) is new

    def test_step_rejects_undeclared_edges(self):
        model = Model(ModelConfig())
        for state in S:
            for event in I:
                for target in S:
                    if target is state:
                        continue  # self-loops are implicit no-ops
                    if target in next_states(state, event):
                        continue
                    with pytest.raises(ModelInternalError):
                        model._step(state, target, event)

    def test_memo_matches_next_states(self):
        from repro.check.model import _NEXT
        for state in S:
            for event in I:
                assert _NEXT[state, event] == next_states(state, event)


class TestCanonicalize:
    def test_epoch_shift_collapses(self):
        model, state = bootstrap(nodes=2)
        shift = 7
        shifted_nodes = tuple(
            node._replace(
                view=(node.view[0] + shift, node.view[1]),
                inbox=tuple(m[:-1] + (m[-1] + shift,)
                            for m in node.inbox))
            for node in state.nodes)
        shifted = state._replace(
            nodes=shifted_nodes,
            reports=tuple((e + shift, snap) for e, snap in state.reports),
            epoch_next=state.epoch_next + shift)
        assert shifted != state
        assert canonicalize(shifted) == state

    def test_dead_report_epochs_are_dropped(self):
        model, state = bootstrap(nodes=2)
        stale = state._replace(
            reports=state.reports + ((99, state.reports[0][1]),))
        collapsed = canonicalize(stale)
        assert collapsed == state


class TestQuorumDelegation:
    def test_policy_objects_are_the_real_ones(self):
        assert isinstance(Model(ModelConfig())._policy,
                          DynamicLinearVoting)
        assert isinstance(
            Model(ModelConfig(quorum="static-majority"))._policy,
            StaticMajority)

    def test_is_quorum_delegates(self):
        model = Model(ModelConfig(nodes=4))
        policy = DynamicLinearVoting()
        for members in [(1, 2, 3), (1, 2), (3, 4), (2,)]:
            assert model._is_quorum(members, (1, 2, 3, 4)) == \
                policy.is_quorum(members, (1, 2, 3, 4), (1, 2, 3, 4))

    def test_tie_breaker_mutation_vetoes_exact_half(self):
        fixed = Model(ModelConfig(nodes=4))
        broken = Model(ModelConfig(nodes=4, tie_breaker=False))
        # (1, 2) is the distinguished exact half of (1, 2, 3, 4).
        assert fixed._is_quorum((1, 2), (1, 2, 3, 4))
        assert not broken._is_quorum((1, 2), (1, 2, 3, 4))


class TestSafetyGating:
    def test_client_events_skip_all_checks(self):
        model, state = bootstrap(nodes=2)
        assert model.check_safety(state, "client") == []

    def test_gated_checks_agree_on_clean_states(self):
        model, state = bootstrap(nodes=2)
        for kind in (None, "deliver", "fault", "form_view"):
            assert model.check_safety(state, kind) == []

    def test_green_prefix_divergence_is_reported(self):
        model, state = bootstrap(nodes=2)
        nodes = list(state.nodes)
        nodes[0] = nodes[0]._replace(green=((1, 1),))
        nodes[1] = nodes[1]._replace(green=((2, 1),))
        bad = state._replace(nodes=tuple(nodes))
        findings = model.check_safety(bad)
        assert any(f.startswith("green-prefix") for f in findings)


class TestEventDescribe:
    def test_describe_is_stable(self):
        assert Event("deliver", (3,)).describe() == "deliver(3)"
        assert Event("fault", ("crash", 2)).describe() == "crash(2)"
        assert Event("form_view", ((1, 2),)).describe() == \
            "form_view([(1, 2)])"
