"""GCS daemon edge cases: crashes mid-protocol, idle-ring pacing,
heartbeat piggybacked stability."""

import pytest

from repro.gcs import DaemonState, GcsDaemon, GcsListener, GcsSettings
from repro.net import Network, Topology
from repro.sim import Simulator


def fast(**overrides):
    params = dict(heartbeat_interval=0.02, failure_timeout=0.08,
                  gather_settle=0.02, phase_timeout=0.15,
                  nack_timeout=0.01)
    params.update(overrides)
    return GcsSettings(**params)


class Recorder(GcsListener):
    def __init__(self):
        self.msgs = []

    def on_message(self, payload, origin, in_transitional, service):
        self.msgs.append(payload)


def build(nodes=(1, 2, 3), **overrides):
    sim = Simulator()
    topo = Topology(list(nodes))
    net = Network(sim, topo)
    daemons, recorders = {}, {}
    for node in nodes:
        daemon = GcsDaemon(sim, node, net, set(nodes), fast(**overrides))
        recorders[node] = Recorder()
        daemon.listener = recorders[node]
        daemon.start()
        daemons[node] = daemon
    for node in nodes:
        daemons[node].join()
    sim.run(until=1.0)
    return sim, topo, net, daemons, recorders


def test_coordinator_crash_mid_flush_recovers():
    sim, topo, _net, daemons, _recs = build()
    # Force a membership round, then kill the coordinator (node 1)
    # the instant it starts coordinating.
    daemons[2]._enter_gather(daemons[2].attempt + 1)
    sim.run(until=sim.now + 0.03)     # gather spreading
    topo.crash(1)
    daemons[1].crash()
    sim.run(until=sim.now + 2.0)
    assert daemons[2].view.members == frozenset({2, 3})
    assert daemons[2].state == DaemonState.OPERATIONAL


def test_member_crash_mid_flush_recovers():
    sim, topo, _net, daemons, _recs = build()
    daemons[1]._enter_gather(daemons[1].attempt + 1)
    sim.run(until=sim.now + 0.03)
    topo.crash(3)
    daemons[3].crash()
    sim.run(until=sim.now + 2.0)
    assert daemons[1].view.members == frozenset({1, 2})


def test_heartbeats_carry_stability_acks():
    """With the ack timer effectively disabled, heartbeat piggybacking
    alone must still let SAFE messages stabilize (slowly)."""
    sim, _topo, _net, daemons, recorders = build(ack_window=10.0)
    daemons[2].multicast("slow-but-sure")
    sim.run(until=sim.now + 1.0)
    for recorder in recorders.values():
        assert "slow-but-sure" in recorder.msgs


def test_leave_during_membership_settles():
    sim, _topo, _net, daemons, _recs = build()
    daemons[1]._enter_gather(daemons[1].attempt + 1)
    daemons[3].leave()
    sim.run(until=sim.now + 2.0)
    assert daemons[1].view.members == frozenset({1, 2})
    assert daemons[3].view is None


def test_detached_node_does_not_block_messaging():
    sim, topo, _net, daemons, recorders = build()
    topo.crash(2)
    daemons[2].crash()
    sim.run(until=sim.now + 1.0)
    daemons[1].multicast("without-2")
    sim.run(until=sim.now + 0.5)
    assert "without-2" in recorders[3].msgs
    assert "without-2" not in recorders[2].msgs


def test_message_counters_track_activity():
    sim, _topo, net, daemons, _recs = build()
    sent_before = net.datagrams_sent
    for i in range(5):
        daemons[1].multicast(("m", i))
    sim.run(until=sim.now + 0.5)
    assert daemons[1].messages_multicast == 5
    assert all(d.deliveries >= 5 for d in daemons.values())
    assert net.datagrams_sent > sent_before
