"""Dynamic replica instantiation and deactivation (Section 5.1/5.2)."""

import pytest

from repro.core import EngineState

from conftest import make_cluster


@pytest.fixture
def cluster():
    c = make_cluster(3)
    c.start_all(settle=1.0)
    client = c.client(1)
    for i in range(5):
        client.submit(("SET", f"base{i}", i))
    c.run_for(1.0)
    return c


class TestJoin:
    def test_new_replica_joins_and_converges(self, cluster):
        cluster.add_replica(4, peer=2)
        cluster.run_for(4.0)
        cluster.assert_converged()
        replica = cluster.replicas[4]
        assert replica.engine.state is EngineState.REG_PRIM
        assert replica.database.state["base4"] == 4

    def test_all_structures_extended(self, cluster):
        cluster.add_replica(4, peer=2)
        cluster.run_for(4.0)
        for replica in cluster.replicas.values():
            assert replica.engine.queue.servers == [1, 2, 3, 4]

    def test_joiner_green_line_set_at_join_action(self, cluster):
        cluster.add_replica(4, peer=2)
        cluster.run_for(4.0)
        engine = cluster.replicas[1].engine
        assert engine.queue.green_lines[4] > 0

    def test_new_replica_can_submit(self, cluster):
        cluster.add_replica(4, peer=2)
        cluster.run_for(4.0)
        client = cluster.client(4)
        client.submit(("SET", "from4", 44))
        cluster.run_for(1.0)
        assert client.completed == 1
        cluster.assert_converged()
        assert cluster.replicas[1].database.state["from4"] == 44

    def test_join_under_live_load(self, cluster):
        client = cluster.client(2)
        done = []

        def pump(*_args):
            if len(done) < 30:
                done.append(1)
                client.submit(("INC", "load", 1), on_complete=pump)

        pump()
        cluster.add_replica(4, peer=3)
        cluster.run_for(6.0)
        cluster.assert_converged()
        assert cluster.replicas[4].database.state["load"] == 30

    def test_join_counts_toward_quorum(self, cluster):
        cluster.add_replica(4, peer=2)
        cluster.run_for(4.0)
        # With last prim {1,2,3,4}, the {1,4} half holds exactly half
        # the votes plus the distinguished (lowest-id) member, so it
        # continues as primary under the linear tie-break; {2,3} — a
        # strict majority of the pre-join prim {1,2,3} — must not,
        # which proves the joiner's vote is counted.
        cluster.partition([1, 4], [2, 3])
        cluster.run_for(2.0)
        assert sorted(cluster.primary_members()) == [1, 4]

    def test_duplicate_persistent_join_ignored(self, cluster):
        """Only the first ordered PERSISTENT_JOIN defines the entry
        point; later announcements for the same server are ignored."""
        cluster.add_replica(4, peer=2)
        cluster.run_for(4.0)
        engine = cluster.replicas[1].engine
        before = dict(engine.queue.green_lines)
        from repro.db import join_action
        engine.submit_action(join_action(engine.next_action_id(), 4))
        cluster.run_for(1.0)
        assert engine.queue.green_lines[4] == before[4]
        cluster.assert_converged()

    def test_joiner_switches_representative_on_crash(self, cluster):
        """If the representative fails mid-transfer, the joiner
        reconnects to a different member (Section 5.1)."""
        replica = cluster.add_replica(4, peer=2, peers=[2, 3, 1])
        # Crash the representative immediately, before transfer ends.
        cluster.crash(2)
        cluster.run_for(8.0)
        assert replica.engine.state in (EngineState.REG_PRIM,
                                        EngineState.NON_PRIM)
        assert replica.database.state.get("base0") == 0
        cluster.recover(2)
        cluster.run_for(3.0)
        cluster.assert_converged()


class TestLeave:
    def test_voluntary_leave(self, cluster):
        cluster.replicas[3].leave()
        cluster.run_for(2.0)
        assert cluster.replicas[3].engine.exited
        for node in (1, 2):
            assert cluster.replicas[node].engine.queue.servers == [1, 2]

    def test_system_continues_after_leave(self, cluster):
        cluster.replicas[3].leave()
        cluster.run_for(2.0)
        client = cluster.client(1)
        client.submit(("SET", "post", 1))
        cluster.run_for(1.0)
        assert client.completed == 1

    def test_leave_shrinks_quorum_requirements(self, cluster):
        cluster.replicas[3].leave()
        cluster.run_for(2.0)
        # New primary is {1,2}.  Splitting it leaves each side exactly
        # half the votes: the linear tie-break lets the side with the
        # distinguished member 1 continue alone — server 2 must not.
        cluster.partition([1], [2, 3])
        cluster.run_for(2.0)
        assert cluster.primary_members() == [1]
        cluster.heal()
        cluster.run_for(2.0)
        assert sorted(cluster.primary_members()) == [1, 2]

    def test_administrative_removal_of_dead_replica(self, cluster):
        """A PERSISTENT_LEAVE can be inserted by a live member to
        remove a permanently failed replica, restoring availability."""
        cluster.crash(3)
        cluster.run_for(1.0)
        cluster.replicas[1].remove_dead_replica(3)
        cluster.run_for(1.5)
        for node in (1, 2):
            assert cluster.replicas[node].engine.queue.servers == [1, 2]
        # {1,2} is now the whole system; losing 2 leaves 1 of 2 ->
        # still no quorum, but removing 2 as well would unblock 1.
        assert sorted(cluster.primary_members()) == [1, 2]


class TestJoinLeaveInterplay:
    def test_leave_then_join_same_id_is_fresh(self, cluster):
        cluster.replicas[3].leave()
        cluster.run_for(2.0)
        cluster.client(1).submit(("SET", "between", 1))
        cluster.run_for(1.0)
        # A brand-new replica (new id) joins afterwards.
        cluster.add_replica(7, peer=1)
        cluster.run_for(4.0)
        assert cluster.replicas[7].database.state.get("between") == 1
        for node in (1, 2, 7):
            assert cluster.replicas[node].engine.queue.servers == [1, 2, 7]
