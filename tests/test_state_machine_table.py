"""Exhaustive check of the declared Figure-4 machine.

Every (state, input) pair is asserted against a hand-written copy of
the paper's Figure 4, so a drive-by edit to the declarative table in
``core/state_machine.py`` fails here with the exact cell named.
"""

import pytest

from repro.core.state_machine import (EDGES, EDGES_BY_INPUT, TRANSITIONS,
                                      EngineInput, EngineState,
                                      IllegalTransition, check_transition,
                                      next_states)

S = EngineState
I = EngineInput

#: Figure 4, cell by cell: (state, input) -> set of *new* states the
#: input may move to (the state itself is always additionally allowed —
#: any input may be a no-op).
FIGURE_4 = {
    (S.NON_PRIM, I.ACTION): set(),
    (S.NON_PRIM, I.REG_CONF): {S.EXCHANGE_STATES},
    (S.NON_PRIM, I.TRANS_CONF): set(),
    (S.NON_PRIM, I.STATE_MSG): set(),
    (S.NON_PRIM, I.CPC_MSG): set(),
    (S.NON_PRIM, I.CLIENT): set(),

    (S.REG_PRIM, I.ACTION): set(),
    # Extended virtual synchrony: a regular conf is always preceded by
    # a transitional conf, so RegPrim never sees reg_conf directly.
    (S.REG_PRIM, I.REG_CONF): set(),
    (S.REG_PRIM, I.TRANS_CONF): {S.TRANS_PRIM},
    (S.REG_PRIM, I.STATE_MSG): set(),
    (S.REG_PRIM, I.CPC_MSG): set(),
    (S.REG_PRIM, I.CLIENT): set(),

    (S.TRANS_PRIM, I.ACTION): set(),
    (S.TRANS_PRIM, I.REG_CONF): {S.EXCHANGE_STATES},
    (S.TRANS_PRIM, I.TRANS_CONF): set(),
    (S.TRANS_PRIM, I.STATE_MSG): set(),
    (S.TRANS_PRIM, I.CPC_MSG): set(),
    (S.TRANS_PRIM, I.CLIENT): set(),

    (S.EXCHANGE_STATES, I.ACTION): set(),
    (S.EXCHANGE_STATES, I.REG_CONF): set(),
    (S.EXCHANGE_STATES, I.TRANS_CONF): {S.NON_PRIM},
    (S.EXCHANGE_STATES, I.STATE_MSG): {S.EXCHANGE_ACTIONS},
    (S.EXCHANGE_STATES, I.CPC_MSG): set(),
    (S.EXCHANGE_STATES, I.CLIENT): set(),

    # A retransmitted action (or the last state message, when the plan
    # is already satisfied) ends the exchange either into Construct or,
    # lacking quorum, into NonPrim.
    (S.EXCHANGE_ACTIONS, I.ACTION): {S.CONSTRUCT, S.NON_PRIM},
    (S.EXCHANGE_ACTIONS, I.REG_CONF): {S.EXCHANGE_STATES},
    (S.EXCHANGE_ACTIONS, I.TRANS_CONF): {S.NON_PRIM},
    (S.EXCHANGE_ACTIONS, I.STATE_MSG): {S.CONSTRUCT, S.NON_PRIM},
    (S.EXCHANGE_ACTIONS, I.CPC_MSG): set(),
    (S.EXCHANGE_ACTIONS, I.CLIENT): set(),

    (S.CONSTRUCT, I.ACTION): set(),
    (S.CONSTRUCT, I.REG_CONF): {S.EXCHANGE_STATES},
    # Transition 4b of the paper: trans conf in Construct moves to No.
    (S.CONSTRUCT, I.TRANS_CONF): {S.NO},
    (S.CONSTRUCT, I.STATE_MSG): set(),
    (S.CONSTRUCT, I.CPC_MSG): {S.REG_PRIM},
    (S.CONSTRUCT, I.CLIENT): set(),

    (S.NO, I.ACTION): set(),
    (S.NO, I.REG_CONF): {S.EXCHANGE_STATES},
    (S.NO, I.TRANS_CONF): set(),
    (S.NO, I.STATE_MSG): set(),
    # Transition 2b: a CPC arriving in No proves the attempt went
    # through somewhere — the outcome is now unknown (Un).
    (S.NO, I.CPC_MSG): {S.UN},
    (S.NO, I.CLIENT): set(),

    (S.UN, I.ACTION): {S.TRANS_PRIM},
    (S.UN, I.REG_CONF): {S.EXCHANGE_STATES},
    (S.UN, I.TRANS_CONF): set(),
    (S.UN, I.STATE_MSG): set(),
    (S.UN, I.CPC_MSG): set(),
    (S.UN, I.CLIENT): set(),
}


def test_figure_4_is_total():
    assert set(FIGURE_4) == {(s, i) for s in S for i in I}


@pytest.mark.parametrize("state", list(S), ids=lambda s: s.name)
@pytest.mark.parametrize("event", list(I), ids=lambda i: i.name)
def test_every_cell_matches_figure_4(state, event):
    expected = FIGURE_4[(state, event)] | {state}
    assert next_states(state, event) == expected


def test_edges_by_input_matches_figure_4():
    for event in I:
        expected = {(s, new) for s in S
                    for new in FIGURE_4[(s, event)]}
        assert EDGES_BY_INPUT[event] == expected, event


def test_flat_edges_are_the_union():
    assert EDGES == frozenset(
        edge for edges in EDGES_BY_INPUT.values() for edge in edges)
    assert len(EDGES) == 15


def test_transitions_derived_consistently():
    assert set(TRANSITIONS) == set(S)
    for old in S:
        assert TRANSITIONS[old] == frozenset(
            new for o, new in EDGES if o is old)


def test_no_to_un_and_construct_to_no_edges_present():
    # The two easy-to-forget edges of the primary-component attempt.
    assert S.UN in next_states(S.NO, I.CPC_MSG)
    assert S.NO in next_states(S.CONSTRUCT, I.TRANS_CONF)


def test_check_transition_enforces_the_table():
    check_transition(S.CONSTRUCT, S.REG_PRIM)
    check_transition(S.NO, S.UN)
    check_transition(S.NO, S.NO)            # self-loops always legal
    with pytest.raises(IllegalTransition):
        check_transition(S.NON_PRIM, S.REG_PRIM)
    with pytest.raises(IllegalTransition):
        check_transition(S.REG_PRIM, S.EXCHANGE_STATES)
    with pytest.raises(IllegalTransition):
        check_transition(S.EXCHANGE_STATES, S.CONSTRUCT)
