"""Log compaction: disk rewrite primitive + engine checkpointing."""

import pytest

from repro.core import EngineConfig
from repro.sim import Simulator
from repro.storage import DiskProfile, LogRecord, SimulatedDisk, \
    WriteAheadLog

from conftest import fast_disk_profile, fast_gcs_settings, make_cluster


class TestDiskRewrite:
    def make_disk(self):
        sim = Simulator()
        return sim, SimulatedDisk(sim, 1,
                                  DiskProfile(forced_write_latency=0.01))

    def test_rewrite_replaces_durable(self):
        sim, disk = self.make_disk()
        disk.write("old-1")
        disk.write("old-2")
        sim.run()
        done = []
        disk.rewrite(["new-1"], callback=lambda: done.append(1))
        sim.run()
        assert done == [1]
        assert disk.durable == ["new-1"]

    def test_crash_mid_rewrite_keeps_old_contents(self):
        sim, disk = self.make_disk()
        disk.write("old")
        sim.run()
        disk.rewrite(["new"])
        sim.run(until=sim.now + 0.005)   # sync in flight
        disk.crash()
        sim.run()
        assert disk.recover() == ["old"]

    def test_appends_after_rewrite_follow_it(self):
        sim, disk = self.make_disk()
        disk.write("old")
        sim.run()
        disk.rewrite(["base"])
        disk.write("tail")
        sim.run()
        assert disk.durable == ["base", "tail"]

    def test_wal_rewrite_and_size(self):
        sim, disk = self.make_disk()
        wal = WriteAheadLog(disk)
        for i in range(5):
            wal.append("green", (i, f"a{i}"))
        sim.run()
        assert wal.durable_size == 5
        wal.rewrite([LogRecord("db_snapshot", {"state": {}})])
        sim.run()
        assert wal.durable_size == 1
        assert wal.last_of_kind("db_snapshot") is not None


class TestEngineCompaction:
    def compacting_cluster(self, threshold=60):
        return make_cluster(
            3, engine_config=EngineConfig(
                log_compaction_threshold=threshold,
                checkpoint_interval=0.2))

    def test_compaction_bounds_log_size(self):
        cluster = self.compacting_cluster(threshold=60)
        cluster.start_all(settle=1.0)
        client = cluster.client(1)
        for batch in range(6):
            for i in range(20):
                client.submit(("SET", f"k{batch}.{i}", i))
            cluster.run_for(0.6)
        size = cluster.replicas[1].wal.durable_size
        # 120 actions generated; without compaction the log would hold
        # well over 240 records (ongoing + green per action + kv).
        assert size < 200, size

    def test_recovery_after_compaction(self):
        cluster = self.compacting_cluster(threshold=60)
        cluster.start_all(settle=1.0)
        client = cluster.client(1)
        for i in range(80):
            client.submit(("SET", f"k{i}", i))
        cluster.run_for(2.0)
        assert client.completed == 80
        cluster.crash(1)
        cluster.run_for(0.5)
        cluster.recover(1)
        cluster.run_for(2.5)
        cluster.assert_converged()
        assert cluster.replicas[1].database.state["k79"] == 79

    def test_compaction_disabled_by_none(self):
        cluster = make_cluster(
            3, engine_config=EngineConfig(
                log_compaction_threshold=None,
                checkpoint_interval=0.2))
        cluster.start_all(settle=1.0)
        client = cluster.client(1)
        for i in range(60):
            client.submit(("SET", f"k{i}", i))
        cluster.run_for(2.0)
        tracer = cluster.tracer
        assert cluster.replicas[1].wal.durable_size > 60

    def test_compaction_preserves_red_actions_and_ongoing(self):
        """Compacting while partitioned (red actions live, own actions
        journaled) must not lose anything needed for recovery."""
        cluster = self.compacting_cluster(threshold=30)
        cluster.start_all(settle=1.0)
        client = cluster.client(1)
        for i in range(40):
            client.submit(("SET", f"k{i}", i))
        cluster.run_for(1.5)
        cluster.partition([1], [2, 3])
        cluster.run_for(1.0)
        cluster.replicas[1].submit(("SET", "red-one", 1))
        cluster.run_for(1.0)   # checkpoints run; compaction may fire
        cluster.crash(1)
        cluster.run_for(0.3)
        cluster.recover(1)
        cluster.run_for(1.0)
        reds = {a.action_id.server_id
                for a in cluster.replicas[1].engine.queue.red_actions()}
        assert 1 in reds
        cluster.heal()
        cluster.run_for(2.5)
        cluster.assert_converged()
        assert cluster.replicas[3].database.state.get("red-one") == 1
