"""Exporters: Prometheus text + lint, JSON snapshot, live HTTP server.

The lint test doubles as the scrape contract for CI: the live-cluster
example serves ``/metrics`` and the workflow asserts the exposition
lints clean, so the linter itself is pinned here against both good and
deliberately broken documents.
"""

import asyncio
import json

import pytest

from conftest import make_cluster
from repro.obs import (MetricsRegistry, MetricsServer, Observability,
                       fetch_http, lint_prometheus, prometheus_text,
                       snapshot_json)


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("repro_test_total", "A counter.",
                     labelnames=("server",)).labels(1).inc(3)
    registry.gauge("repro_test_depth", "A gauge.",
                   labelnames=("server",)).labels(1).set(2)
    histogram = registry.histogram(
        "repro_test_seconds", "A histogram.",
        labelnames=("server",), buckets=(0.001, 0.01)).labels(1)
    histogram.observe(0.0005)
    histogram.observe(0.005)
    histogram.observe(5.0)
    return registry


class TestPrometheusText:
    def test_renders_types_and_series(self):
        text = prometheus_text(populated_registry())
        assert "# TYPE repro_test_total counter" in text
        assert 'repro_test_total{server="1"} 3' in text
        assert "# TYPE repro_test_seconds histogram" in text
        # Buckets are cumulative; +Inf equals _count.
        assert 'repro_test_seconds_bucket{server="1",le="0.001"} 1' in text
        assert 'repro_test_seconds_bucket{server="1",le="0.01"} 2' in text
        assert 'repro_test_seconds_bucket{server="1",le="+Inf"} 3' in text
        assert 'repro_test_seconds_count{server="1"} 3' in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.gauge("repro_test_depth",
                       labelnames=("name",)).labels('a"b\\c\nd').set(1)
        text = prometheus_text(registry)
        assert r'name="a\"b\\c\nd"' in text
        assert lint_prometheus(text) == []

    def test_populated_registry_lints_clean(self):
        assert lint_prometheus(prometheus_text(populated_registry())) == []

    def test_cluster_run_lints_clean(self):
        obs = Observability()
        cluster = make_cluster(3, observability=obs)
        cluster.start_all(settle=1.0)
        cluster.client(1).submit(("SET", "k", 1))
        cluster.run_for(1.0)
        text = obs.prometheus()
        assert lint_prometheus(text) == []
        assert "repro_action_red_to_green_seconds_bucket" in text
        assert "repro_wal_appends_total" in text
        assert "repro_disk_forced_writes" in text


class TestLint:
    def test_catches_sample_without_type(self):
        problems = lint_prometheus("repro_orphan_total 3\n")
        assert any("no preceding # TYPE" in p for p in problems)

    def test_catches_non_cumulative_buckets(self):
        text = ("# TYPE repro_x histogram\n"
                'repro_x_bucket{le="1"} 5\n'
                'repro_x_bucket{le="2"} 3\n')
        problems = lint_prometheus(text)
        assert any("non-cumulative" in p for p in problems)

    def test_catches_bad_value_and_negative_counter(self):
        text = ("# TYPE repro_a_total counter\n"
                "repro_a_total -1\n"
                "# TYPE repro_b_total counter\n"
                "repro_b_total noodles\n")
        problems = lint_prometheus(text)
        assert any("negative" in p for p in problems)
        assert any("bad value" in p for p in problems)

    def test_catches_duplicate_type(self):
        text = ("# TYPE repro_a_total counter\n"
                "# TYPE repro_a_total counter\n")
        assert any("duplicate TYPE" in p for p in lint_prometheus(text))

    def test_catches_malformed_type_line(self):
        assert lint_prometheus("# TYPE repro_a\n")


class TestJsonSnapshot:
    def test_round_trips_through_json(self):
        doc = json.loads(snapshot_json(populated_registry()))
        assert doc["repro_test_total"]["1"] == 3.0
        assert doc["repro_test_seconds"]["1"]["count"] == 3


class TestMetricsServer:
    """The live endpoint serves exactly what the registry holds."""

    def test_http_metrics_matches_direct_export(self):
        registry = populated_registry()

        async def scenario():
            server = await MetricsServer(registry, port=0).start()
            try:
                body = await fetch_http("127.0.0.1", server.port,
                                        "/metrics")
            finally:
                server.close()
                await server.wait_closed()
            return body

        body = asyncio.run(scenario())
        assert body == prometheus_text(registry)
        assert lint_prometheus(body) == []

    def test_http_status_serves_the_status_fn(self):
        async def scenario():
            server = await MetricsServer(
                MetricsRegistry(),
                status_fn=lambda: {"state": "RegPrim", "green": 7},
                port=0).start()
            try:
                body = await fetch_http("127.0.0.1", server.port,
                                        "/status")
            finally:
                server.close()
                await server.wait_closed()
            return json.loads(body)

        assert asyncio.run(scenario()) == {"state": "RegPrim",
                                           "green": 7}

    def test_unknown_path_is_404(self):
        async def scenario():
            server = await MetricsServer(MetricsRegistry(),
                                         port=0).start()
            try:
                await fetch_http("127.0.0.1", server.port, "/nope")
            finally:
                server.close()
                await server.wait_closed()

        with pytest.raises(RuntimeError):
            asyncio.run(scenario())

    def test_scrape_sees_live_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total").labels()

        async def scrape_twice():
            server = await MetricsServer(registry, port=0).start()
            try:
                first = await fetch_http("127.0.0.1", server.port,
                                         "/metrics")
                counter.inc(5)
                second = await fetch_http("127.0.0.1", server.port,
                                          "/metrics")
            finally:
                server.close()
                await server.wait_closed()
            return first, second

        first, second = asyncio.run(scrape_twice())
        assert "repro_test_total 0" in first
        assert "repro_test_total 5" in second
