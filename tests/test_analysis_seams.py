"""Runtime-seam enforcer: fixture violations, exemptions, suppressions."""

from pathlib import Path

from repro.analysis import SeamEnforcer
from repro.analysis.seams import (RULE_BLOCKING_IO, RULE_FLIGHT_CLOCK,
                                  RULE_FRAMING, RULE_IMPORT,
                                  RULE_SHARD_ISOLATION)

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"
BAD_SOCKET = FIXTURES / "repro" / "gcs" / "bad_socket.py"
SUPPRESSED = FIXTURES / "repro" / "gcs" / "suppressed.py"
BAD_FRAMING = FIXTURES / "repro" / "runtime" / "bad_framing.py"
FIXTURE_CODEC = FIXTURES / "repro" / "net" / "codec.py"
BAD_CROSS_SHARD = FIXTURES / "repro" / "shard" / "bad_cross_shard.py"
FIXTURE_FABRIC = FIXTURES / "repro" / "shard" / "fabric.py"
BAD_FLIGHT = FIXTURES / "repro" / "obs" / "flight.py"


def test_fixture_socket_import_detected():
    findings = SeamEnforcer().check_paths([BAD_SOCKET])
    imports = [f for f in findings if f.rule == RULE_IMPORT]
    assert any("'socket'" in f.message for f in imports)
    assert any("'time'" in f.message for f in imports)


def test_fixture_blocking_io_detected():
    findings = SeamEnforcer().check_paths([BAD_SOCKET])
    blocking = [f for f in findings if f.rule == RULE_BLOCKING_IO]
    assert len(blocking) == 2
    assert any("open()" in f.message for f in blocking)
    assert any("os.fsync()" in f.message for f in blocking)


def test_suppressions_cover_fixture():
    findings = SeamEnforcer().check_paths([SUPPRESSED])
    assert findings, "suppressed findings should still be reported"
    assert all(f.suppressed for f in findings), \
        "\n".join(f.format() for f in findings if not f.suppressed)


def test_runtime_and_tools_are_exempt(tmp_path):
    for sub in ("runtime", "tools"):
        pkg = tmp_path / "repro" / sub
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "adapter.py").write_text("import asyncio\nimport socket\n")
    (tmp_path / "repro" / "__init__.py").write_text("")
    assert SeamEnforcer().check_paths([tmp_path]) == []


def test_relative_imports_allowed(tmp_path):
    pkg = tmp_path / "repro" / "core"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text("from . import records\n"
                                "from ..runtime.base import Runtime\n")
    assert SeamEnforcer().check_paths([tmp_path]) == []


def test_framing_rule_covers_exempt_packages():
    # runtime/ is exempt from the seam rules but not from framing: the
    # fixture imports struct twice (plain and from-import).
    findings = SeamEnforcer().check_paths([BAD_FRAMING])
    assert [f.rule for f in findings] == [RULE_FRAMING, RULE_FRAMING]
    assert all("repro.net.codec" in f.message for f in findings)


def test_framing_rule_exempts_the_codec():
    assert SeamEnforcer().check_paths([FIXTURE_CODEC]) == []


def test_framing_rule_in_protocol_code(tmp_path):
    pkg = tmp_path / "repro" / "gcs"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text("import struct\n")
    findings = SeamEnforcer().check_paths([tmp_path])
    assert [f.rule for f in findings] == [RULE_FRAMING]


def test_shard_isolation_fixture_detected():
    findings = [f for f in SeamEnforcer().check_paths([BAD_CROSS_SHARD])
                if f.rule == RULE_SHARD_ISOLATION]
    # import repro.core.engine / from repro.gcs / from ..core.replica /
    # from ..gcs.daemon — all four forms resolve and are flagged.
    assert len(findings) == 4, "\n".join(f.format() for f in findings)
    targets = sorted(f.message.split("'")[1] for f in findings)
    assert targets == ["repro.core.engine", "repro.core.replica",
                       "repro.gcs", "repro.gcs.daemon"]


def test_shard_composition_roots_are_exempt():
    findings = [f for f in SeamEnforcer().check_paths([FIXTURE_FABRIC])
                if f.rule == RULE_SHARD_ISOLATION]
    assert findings == [], "\n".join(f.format() for f in findings)


def test_shard_isolation_allows_sibling_imports(tmp_path):
    pkg = tmp_path / "repro" / "shard"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("from .router import route\n")
    (pkg / "router.py").write_text(
        "from .txn import prepare_update\n"
        "from ..db.partition import RangeMap\n"
        "from ..sim import Tracer\n")
    (pkg / "txn.py").write_text("prepare_update = None\n")
    findings = [f for f in SeamEnforcer().check_paths([tmp_path])
                if f.rule == RULE_SHARD_ISOLATION]
    assert findings == [], "\n".join(f.format() for f in findings)


def test_fixture_flight_clock_detected():
    findings = [f for f in SeamEnforcer().check_paths([BAD_FLIGHT])
                if f.rule == RULE_FLIGHT_CLOCK]
    assert any("'datetime'" in f.message for f in findings)
    assert any("'time'" in f.message for f in findings)
    # Both `self.runtime.now` and `datetime.datetime.now` evaluate a
    # `.now` attribute inside the recorder module.
    assert sum("'.now'" in f.message for f in findings) == 2


def test_flight_clock_rule_covers_only_the_recorder(tmp_path):
    # The same source outside repro/obs/flight.py is not in scope for
    # flight-clock (other rules may still apply).
    module = tmp_path / "repro" / "obs" / "other.py"
    module.parent.mkdir(parents=True)
    (module.parent / "__init__.py").write_text("")
    module.write_text(BAD_FLIGHT.read_text())
    findings = [f for f in SeamEnforcer().check_paths([module])
                if f.rule == RULE_FLIGHT_CLOCK]
    assert findings == []


def test_live_flight_recorder_takes_caller_timestamps():
    # The real recorder passes its own rule: no clock imports, no
    # `.now` — every timestamp is a parameter off the Runtime clock.
    src = Path(__file__).parent.parent / "src" / "repro" / "obs"
    findings = [f for f in SeamEnforcer().check_paths([src])
                if f.rule == RULE_FLIGHT_CLOCK]
    assert findings == [], "\n".join(f.format() for f in findings)


def test_live_shard_package_is_isolated():
    # The real policy modules (router, txn, coordinator) never import
    # the engine layers; only fabric/live do.
    src = Path(__file__).parent.parent / "src" / "repro" / "shard"
    findings = [f for f in SeamEnforcer().check_paths([src])
                if f.rule == RULE_SHARD_ISOLATION]
    assert findings == [], "\n".join(f.format() for f in findings)


def test_live_codec_is_the_only_struct_importer():
    src = Path(__file__).parent.parent / "src" / "repro"
    framing = [f for f in SeamEnforcer().check_paths([src])
               if f.rule == RULE_FRAMING]
    assert framing == [], "\n".join(f.format() for f in framing)


def test_live_tree_has_no_unsuppressed_violations():
    src = Path(__file__).parent.parent / "src" / "repro"
    findings = [f for f in SeamEnforcer().check_paths([src])
                if not f.suppressed]
    assert findings == [], "\n".join(f.format() for f in findings)


def test_live_tree_suppressions_are_exactly_the_known_set():
    # The sanctioned seam crossings: the metrics-export helpers and the
    # repro-check report/repro writers (developer-tool file output).
    src = Path(__file__).parent.parent / "src" / "repro"
    suppressed = [f for f in SeamEnforcer().check_paths([src])
                  if f.suppressed]
    assert suppressed
    sanctioned = ("obs/export.py", "check/cli.py", "check/shrink.py")
    assert all(f.path.endswith(sanctioned) for f in suppressed), \
        "\n".join(f.format() for f in suppressed)
