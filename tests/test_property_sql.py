"""Property-based tests of the statement language and snapshots."""

import json

from hypothesis import given, settings, strategies as st

from repro.db import (Database, SnapshotReceiver, SnapshotSender,
                      execute_statement, execute_update)
from repro.db.action import Action, ActionId

keys = st.text(alphabet="abcdef", min_size=1, max_size=3)
values = st.one_of(st.integers(-100, 100), st.text(max_size=5),
                   st.booleans())

statements = st.one_of(
    st.tuples(st.just("SET"), keys, values),
    st.tuples(st.just("INC"), keys, st.integers(-10, 10)),
    st.tuples(st.just("DEL"), keys),
    st.tuples(st.just("CAS"), keys, values, values),
)


def model_apply(model, stmt):
    """Reference semantics against a plain dict."""
    op = stmt[0]
    if op == "SET":
        model[stmt[1]] = stmt[2]
    elif op == "DEL":
        model.pop(stmt[1], None)
    elif op == "CAS":
        if model.get(stmt[1]) == stmt[2]:
            model[stmt[1]] = stmt[3]


@settings(max_examples=80, deadline=None)
@given(st.lists(st.one_of(
    st.tuples(st.just("SET"), keys, values),
    st.tuples(st.just("DEL"), keys),
    st.tuples(st.just("CAS"), keys, values, values)),
    max_size=40))
def test_statements_match_reference_model(script):
    state = {}
    model = {}
    for stmt in script:
        execute_statement(state, stmt)
        model_apply(model, stmt)
    assert state == model


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.just("INC"), keys,
                          st.integers(-10, 10)), max_size=30))
def test_inc_sequences_sum(script):
    state = {}
    totals = {}
    for stmt in script:
        execute_statement(state, stmt)
        totals[stmt[1]] = totals.get(stmt[1], 0) + stmt[2]
    assert state == {k: v for k, v in totals.items()}


@settings(max_examples=30, deadline=None)
@given(st.dictionaries(keys, st.one_of(st.integers(), st.text(max_size=5)),
                       max_size=30),
       st.integers(min_value=1, max_value=7))
def test_snapshot_transfer_roundtrip_any_state(state, chunk_items):
    db = Database()
    index = 0
    for key, value in sorted(state.items()):
        index += 1
        db.apply(Action(action_id=ActionId(1, index),
                        update=("SET", key, value)))
    snapshot = db.snapshot()
    sender = SnapshotSender("t", snapshot, chunk_items=chunk_items)
    receiver = SnapshotReceiver()
    receiver.begin("t", sender.header)
    # Deliver chunks in reverse order: reassembly must not care.
    for seq in reversed(range(sender.total)):
        receiver.accept(sender.chunk(seq))
    assembled = receiver.assemble()
    restored = Database()
    restored.restore(assembled)
    assert restored.state == db.state
    assert restored.digest() == db.digest()


@settings(max_examples=40, deadline=None)
@given(st.lists(statements, max_size=25))
def test_apply_is_deterministic(script):
    """Two databases applying the same actions agree exactly."""
    a, b = Database(), Database()
    for index, stmt in enumerate(script, start=1):
        action = Action(action_id=ActionId(1, index), update=stmt)
        a.apply(action)
        b.apply(action)
    assert a.state == b.state
    assert a.digest() == b.digest()
    assert a.applied_log == b.applied_log
