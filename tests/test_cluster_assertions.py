"""The cluster's executable consistency assertions must actually fire
on violations (tests of the test oracles)."""

import pytest

from repro.db import Action, ActionId

from conftest import make_cluster


@pytest.fixture
def cluster():
    c = make_cluster(3)
    c.start_all(settle=1.0)
    client = c.client(1)
    for i in range(3):
        client.submit(("SET", f"k{i}", i))
    c.run_for(1.0)
    return c


def test_assert_converged_passes_on_healthy_cluster(cluster):
    cluster.assert_converged()


def test_prefix_violation_detected(cluster):
    # Forge a divergent applied log at replica 2.
    log = cluster.replicas[2].database.applied_log
    log[0] = ActionId(99, 99)
    with pytest.raises(AssertionError, match="total order violated"):
        cluster.assert_prefix_consistent()


def test_count_divergence_detected(cluster):
    cluster.replicas[2].database.applied_log.append(ActionId(9, 9))
    cluster.replicas[2].database.applied_count += 1
    with pytest.raises(AssertionError, match="not converged"):
        cluster.assert_converged()


def test_digest_divergence_detected(cluster):
    cluster.replicas[2].database.state["k0"] = "corrupted"
    with pytest.raises(AssertionError, match="digests differ"):
        cluster.assert_converged()


def test_multiple_primaries_detected(cluster):
    # Forge two different views both claiming RegPrim.
    from repro.gcs import Configuration, ViewId
    cluster.replicas[1].engine.conf = Configuration(
        ViewId(99, 1), frozenset([1]))
    with pytest.raises(AssertionError, match="multiple primary"):
        cluster.assert_single_primary()


def test_crashed_replicas_excluded_from_checks(cluster):
    cluster.crash(3)
    cluster.run_for(1.0)
    client = cluster.client(1)
    client.submit(("SET", "after", 1))
    cluster.run_for(1.0)
    # Node 3's stale database must not fail the check while it is down.
    cluster.assert_converged()


def test_exited_replicas_excluded(cluster):
    cluster.replicas[3].leave()
    cluster.run_for(2.0)
    cluster.client(1).submit(("SET", "post", 1))
    cluster.run_for(1.0)
    cluster.assert_converged()


def test_applied_logs_only_running(cluster):
    cluster.crash(2)
    logs = cluster.applied_logs()
    assert set(logs) == {1, 3}
