"""Unit tests for timers, actors, and the CPU service queue."""

import pytest

from repro.sim import Actor, ServiceQueue, Simulator, Timer


class TestTimer:
    def test_one_shot_fires_once(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now), 1.0)
        timer.start()
        sim.run()
        assert fired == [1.0]

    def test_not_armed_until_started(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(1), 1.0)
        assert not timer.armed
        sim.run()
        assert fired == []

    def test_restart_replaces_pending(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now), 1.0)
        timer.start()
        sim.run(until=0.5)
        timer.restart()
        sim.run()
        assert fired == [1.5]

    def test_stop_disarms(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(1), 1.0)
        timer.start()
        timer.stop()
        sim.run()
        assert fired == []
        assert not timer.armed

    def test_periodic_fires_repeatedly(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now), 1.0,
                      periodic=True)
        timer.start()
        sim.run(until=3.5)
        timer.stop()
        assert fired == [1.0, 2.0, 3.0]

    def test_start_with_new_interval(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now), 1.0)
        timer.start(interval=0.25)
        sim.run()
        assert fired == [0.25]

    def test_negative_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Timer(sim, lambda: None, -1.0)


class TestActor:
    def test_make_timer_and_cancel_all(self):
        sim = Simulator()
        actor = Actor(sim, "a")
        fired = []
        actor.make_timer("t1", lambda: fired.append(1), 1.0).start()
        actor.make_timer("t2", lambda: fired.append(2), 2.0).start()
        actor.cancel_all()
        sim.run()
        assert fired == []

    def test_timer_lookup(self):
        sim = Simulator()
        actor = Actor(sim)
        timer = actor.make_timer("x", lambda: None, 1.0)
        assert actor.timer("x") is timer

    def test_after_schedules_raw_callback(self):
        sim = Simulator()
        actor = Actor(sim)
        fired = []
        actor.after(0.5, fired.append, "v")
        sim.run()
        assert fired == ["v"]


class TestServiceQueue:
    def test_take_when_idle(self):
        sim = Simulator()
        cpu = ServiceQueue(sim)
        assert cpu.take(0.1) == pytest.approx(0.1)

    def test_take_queues_fifo(self):
        sim = Simulator()
        cpu = ServiceQueue(sim)
        assert cpu.take(0.1) == pytest.approx(0.1)
        assert cpu.take(0.1) == pytest.approx(0.2)
        assert cpu.backlog == pytest.approx(0.2)

    def test_idle_gap_not_accumulated(self):
        sim = Simulator()
        cpu = ServiceQueue(sim)
        cpu.take(0.1)
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert cpu.take(0.1) == pytest.approx(1.1)

    def test_reset(self):
        sim = Simulator()
        cpu = ServiceQueue(sim)
        cpu.take(5.0)
        cpu.reset()
        assert cpu.backlog == 0.0
        assert cpu.take(0.1) == pytest.approx(0.1)

    def test_saturation_rate(self):
        """N jobs of cost c complete in exactly N*c seconds."""
        sim = Simulator()
        cpu = ServiceQueue(sim)
        last = 0.0
        for _ in range(100):
            last = cpu.take(0.01)
        assert last == pytest.approx(1.0)
