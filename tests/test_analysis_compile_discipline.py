"""Compile-discipline enforcer: fixture violations, scope, live tree."""

from pathlib import Path

from repro.accel.modules import ACCEL_MODULES
from repro.analysis import CompileDisciplineChecker
from repro.analysis.compile_discipline import (RULE_ANNOTATIONS,
                                               RULE_DYNAMIC, RULE_IMPORTS)

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"
SRC = Path(__file__).parent.parent / "src" / "repro"
BAD_ANNOTATIONS = FIXTURES / "repro" / "sim" / "kernel.py"
BAD_DYNAMIC = FIXTURES / "repro" / "net" / "network.py"
BAD_IMPORTS = FIXTURES / "repro" / "gcs" / "ordering.py"


def test_fixture_missing_annotations_detected():
    findings = CompileDisciplineChecker().check_paths([BAD_ANNOTATIONS])
    annotations = [f for f in findings if f.rule == RULE_ANNOTATIONS]
    # unannotated params of schedule(); missing returns on run() and
    # make_key(); the lambda.
    assert any("schedule()" in f.message and "delay" in f.message
               for f in annotations)
    assert any("run()" in f.message and "return annotation" in f.message
               for f in annotations)
    assert any("make_key()" in f.message for f in annotations)
    assert any("lambda" in f.message for f in annotations)
    # ``self`` never needs an annotation: the fully annotated __init__
    # must be clean.
    assert not any(f.line == 9 for f in annotations)


def test_fixture_dynamic_constructs_detected():
    findings = CompileDisciplineChecker().check_paths([BAD_DYNAMIC])
    dynamic = [f for f in findings if f.rule == RULE_DYNAMIC]
    flagged = " ".join(f.message for f in dynamic)
    for construct in ("getattr()", "setattr()", "vars()", "eval()",
                      "'__dict__'"):
        assert construct in flagged, construct
    # The fixture is otherwise fully annotated.
    assert not any(f.rule == RULE_ANNOTATIONS for f in findings)


def test_fixture_heavy_imports_detected():
    findings = CompileDisciplineChecker().check_paths([BAD_IMPORTS])
    imports = [f for f in findings if f.rule == RULE_IMPORTS]
    flagged = " ".join(f.message for f in imports)
    assert "repro.core.engine" in flagged          # heavyweight module
    assert "repro.obs" in flagged                  # off-limits subpackage
    assert "'repro.core'" in flagged               # resolved bare package
    # The TYPE_CHECKING-guarded daemon import is exempt.
    assert "daemon" not in flagged


def test_scope_is_exactly_the_accel_list(tmp_path):
    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    bad = "def f(x):\n    return x\n"
    (pkg / "kernel.py").write_text(bad)       # in ACCEL_MODULES
    (pkg / "process.py").write_text(bad)      # not in the list
    findings = CompileDisciplineChecker().check_paths([tmp_path])
    assert findings, "accel module violation must be reported"
    assert all(f.path.endswith("kernel.py") for f in findings)


def test_custom_module_list(tmp_path):
    pkg = tmp_path / "repro" / "net"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "extra.py").write_text("def f(x):\n    return x\n")
    default = CompileDisciplineChecker().check_paths([tmp_path])
    custom = CompileDisciplineChecker(
        modules=["repro.net.extra"]).check_paths([tmp_path])
    assert default == []
    assert {f.rule for f in custom} == {RULE_ANNOTATIONS}


def test_suppression_comment_covers_finding(tmp_path):
    pkg = tmp_path / "repro" / "net"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "codec.py").write_text(
        "def decode(raw: bytes) -> object:\n"
        "    # repro: allow[compile-dynamic] -- registry fallback\n"
        "    return getattr(raw, 'decode')()\n")
    findings = CompileDisciplineChecker().check_paths([tmp_path])
    assert findings and all(f.suppressed for f in findings)


def test_live_accel_modules_are_compile_clean():
    # The tentpole's acceptance gate: every module setup.py compiles
    # passes the discipline rules as shipped.
    findings = [f for f in CompileDisciplineChecker().check_paths([SRC])
                if not f.suppressed]
    assert findings == [], "\n".join(f.format() for f in findings)


def test_accel_list_matches_real_files():
    for name in ACCEL_MODULES:
        rel = Path(*name.split(".")[1:]).with_suffix(".py")
        assert (SRC / rel).exists(), f"{name} has no source file"
