"""White-line (garbage collection) behaviour across the live system."""

import pytest

from repro.core import EngineConfig

from conftest import make_cluster


def all_submit(cluster, rounds=4, nodes=(1, 2, 3)):
    clients = {n: cluster.client(n) for n in nodes}
    for _ in range(rounds):
        for client in clients.values():
            client.submit(("INC", "n", 1))
        cluster.run_for(0.4)
    return clients


def test_white_line_never_exceeds_any_green_line():
    cluster = make_cluster(3)
    cluster.start_all(settle=1.0)
    all_submit(cluster)
    for replica in cluster.replicas.values():
        queue = replica.engine.queue
        assert queue.white_line <= min(queue.green_lines.values())
        assert queue.green_offset <= queue.green_count


def test_truncation_disabled_keeps_everything():
    cluster = make_cluster(3, engine_config=EngineConfig(
        truncate_white=False))
    cluster.start_all(settle=1.0)
    all_submit(cluster)
    for replica in cluster.replicas.values():
        assert replica.engine.queue.green_offset == 0


def test_partitioned_member_pins_the_white_line():
    """An unreachable member's stale green line caps truncation, so
    the survivors retain what it will need at the merge."""
    cluster = make_cluster(3)
    cluster.start_all(settle=1.0)
    all_submit(cluster, rounds=2)
    cluster.partition([1], [2, 3])
    cluster.run_for(1.0)
    pinned = cluster.replicas[2].engine.queue.green_lines[1]
    client = cluster.client(2)
    for _ in range(10):
        client.submit(("INC", "n", 1))
    cluster.run_for(1.5)
    queue2 = cluster.replicas[2].engine.queue
    assert queue2.green_offset <= pinned
    # And the merge succeeds precisely because nothing was dropped.
    cluster.heal()
    cluster.run_for(2.5)
    cluster.assert_converged()


def test_exchange_advances_lines_of_quiet_members():
    """Members that never create actions still advance their lines via
    the exchange's green-line incorporation."""
    cluster = make_cluster(3)
    cluster.start_all(settle=1.0)
    client = cluster.client(1)           # only node 1 ever submits
    for _ in range(8):
        client.submit(("INC", "n", 1))
    cluster.run_for(1.0)
    # Without exchanges, lines for 2 and 3 stay at the install value.
    line_before = cluster.replicas[1].engine.queue.green_lines[2]
    cluster.partition([1], [2, 3])       # force an exchange round
    cluster.run_for(1.0)
    cluster.heal()
    cluster.run_for(2.0)
    line_after = cluster.replicas[1].engine.queue.green_lines[2]
    assert line_after > line_before
    # With the lines refreshed, truncation can finally progress.
    cluster.run_for(1.0)
    assert cluster.replicas[1].engine.queue.green_offset > 0
