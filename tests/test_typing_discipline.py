"""Local mirror of the CI mypy gate for the protocol layers.

CI runs ``mypy`` with ``disallow_untyped_defs`` on ``repro.core.*`` and
``repro.gcs.*`` (see pyproject.toml).  mypy is not a runtime dependency
of the test environment, so this test enforces the structural part of
that contract — every def fully annotated — by AST, keeping the
discipline visible locally instead of only on the CI matrix.
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).parent.parent / "src" / "repro"
STRICT_PACKAGES = ("core", "gcs")


def strict_files():
    for pkg in STRICT_PACKAGES:
        yield from sorted((SRC / pkg).rglob("*.py"))


@pytest.mark.parametrize("path", list(strict_files()),
                         ids=lambda p: f"{p.parent.name}/{p.name}")
def test_every_def_is_fully_annotated(path):
    tree = ast.parse(path.read_text(encoding="utf-8"))
    offenders = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = node.args
        every = args.posonlyargs + args.args + args.kwonlyargs
        if args.vararg is not None:
            every.append(args.vararg)
        if args.kwarg is not None:
            every.append(args.kwarg)
        missing = [a.arg for a in every
                   if a.annotation is None and a.arg not in ("self", "cls")]
        if node.returns is None:
            missing.append("return")
        if missing:
            offenders.append(f"{path.name}:{node.lineno} {node.name}: "
                             f"missing {', '.join(missing)}")
    assert not offenders, "\n".join(offenders)
