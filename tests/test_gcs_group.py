"""Tests for the Spread-like GroupChannel facade."""

import pytest

from repro.gcs import GcsDaemon, GcsSettings, GroupChannel, ServiceLevel
from repro.net import Network, Topology
from repro.sim import Simulator


def build_pair():
    sim = Simulator()
    topo = Topology([1, 2])
    net = Network(sim, topo)
    settings = GcsSettings(heartbeat_interval=0.02, failure_timeout=0.08,
                           gather_settle=0.02, phase_timeout=0.15)
    channels = {}
    for node in (1, 2):
        daemon = GcsDaemon(sim, node, net, {1, 2}, settings)
        daemon.start()
        channels[node] = GroupChannel(daemon)
    return sim, topo, channels


def test_join_and_current_view():
    sim, _topo, channels = build_pair()
    channels[1].join()
    channels[2].join()
    sim.run(until=1.0)
    assert channels[1].current_view is not None
    assert channels[1].current_view.members == frozenset({1, 2})


def test_message_and_conf_handlers():
    sim, _topo, channels = build_pair()
    events = []
    channels[2].message_handler = (
        lambda payload, origin, in_trans, service:
        events.append(("msg", payload, origin, service)))
    channels[2].conf_handler = (
        lambda conf: events.append(("conf", conf.transitional)))
    channels[1].join()
    channels[2].join()
    sim.run(until=1.0)
    channels[1].multicast("hello", ServiceLevel.SAFE)
    sim.run(until=1.5)
    kinds = [e[0] for e in events]
    assert "conf" in kinds and "msg" in kinds
    msg = next(e for e in events if e[0] == "msg")
    assert msg[1] == "hello"
    assert msg[2] == 1
    assert msg[3] is ServiceLevel.SAFE


def test_conf_handler_sees_transitional_and_regular():
    sim, topo, channels = build_pair()
    confs = []
    channels[1].conf_handler = lambda conf: confs.append(
        (conf.transitional, tuple(sorted(conf.members))))
    channels[1].join()
    channels[2].join()
    sim.run(until=1.0)
    topo.partition([[1], [2]])
    sim.run(until=2.0)
    # The split delivers a transitional conf then a regular singleton.
    assert (True, (1,)) in confs
    assert (False, (1,)) in confs


def test_leave_via_facade():
    sim, _topo, channels = build_pair()
    channels[1].join()
    channels[2].join()
    sim.run(until=1.0)
    channels[2].leave()
    sim.run(until=2.0)
    assert channels[2].current_view is None
    assert channels[1].current_view.members == frozenset({1})


def test_handlers_optional():
    """Without handlers assigned, deliveries must not crash."""
    sim, _topo, channels = build_pair()
    channels[1].join()
    channels[2].join()
    sim.run(until=1.0)
    channels[1].multicast("ignored")
    sim.run(until=1.5)
