"""Weighted dynamic linear voting on a live cluster.

The paper: "the component that contains a (weighted) majority of the
last primary component becomes the new primary component."  A heavy
data-center replica can keep the primary on its side of a split.
"""

import pytest

from repro.core import DynamicLinearVoting, EngineConfig

from conftest import fast_disk_profile, fast_gcs_settings, make_cluster


def weighted_cluster(weights):
    return make_cluster(
        3, engine_config=EngineConfig(
            quorum=DynamicLinearVoting(weights=weights)))


def test_heavy_replica_keeps_primary_alone():
    cluster = weighted_cluster({1: 5.0})
    cluster.start_all(settle=1.0)
    cluster.partition([1], [2, 3])
    cluster.run_for(1.5)
    # Node 1 weighs 5 of 7: alone it is still a weighted majority.
    assert cluster.primary_members() == [1]
    client = cluster.client(1)
    client.submit(("SET", "heavy", 1))
    cluster.run_for(1.0)
    assert client.completed == 1
    cluster.assert_single_primary()
    cluster.heal()
    cluster.run_for(2.0)
    cluster.assert_converged()


def test_light_majority_cannot_form_primary():
    cluster = weighted_cluster({1: 5.0})
    cluster.start_all(settle=1.0)
    cluster.partition([1], [2, 3])
    cluster.run_for(1.5)
    # Two of three nodes, but only 2 of 7 weight: not a quorum.
    states = cluster.states()
    assert states[2] == "NonPrim" and states[3] == "NonPrim"


def test_equal_weights_behave_like_plain_majority():
    cluster = weighted_cluster({1: 1.0, 2: 1.0, 3: 1.0})
    cluster.start_all(settle=1.0)
    cluster.partition([1], [2, 3])
    cluster.run_for(1.5)
    assert sorted(cluster.primary_members()) == [2, 3]
