"""Unit tests for randomness streams and structured tracing."""

from repro.sim import RandomStreams, Tracer


class TestRandomStreams:
    def test_same_seed_same_sequence(self):
        a = RandomStreams(42).stream("net")
        b = RandomStreams(42).stream("net")
        assert [a.random() for _ in range(10)] == \
            [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("net")
        b = RandomStreams(2).stream("net")
        assert [a.random() for _ in range(5)] != \
            [b.random() for _ in range(5)]

    def test_streams_are_independent(self):
        streams = RandomStreams(7)
        net = streams.stream("net")
        first = net.random()
        # Consuming another stream must not perturb this one.
        streams2 = RandomStreams(7)
        streams2.stream("workload").random()
        assert streams2.stream("net").random() == first

    def test_stream_identity_cached(self):
        streams = RandomStreams(0)
        assert streams.stream("x") is streams.stream("x")
        assert "x" in streams
        assert "y" not in streams


class TestTracer:
    def test_emit_and_select(self):
        tracer = Tracer()
        tracer.emit(1.0, 1, "cat.a", k=1)
        tracer.emit(2.0, 2, "cat.b", k=2)
        tracer.emit(3.0, 1, "cat.a", k=3)
        assert tracer.count("cat.a") == 2
        assert len(list(tracer.select("cat.a"))) == 2
        assert len(list(tracer.select("cat.a", node=1))) == 2
        assert len(list(tracer.select(node=2))) == 1

    def test_disabled_tracer_drops_records(self):
        tracer = Tracer(enabled=False)
        tracer.emit(1.0, 1, "cat")
        assert tracer.records == []
        assert tracer.count("cat") == 0

    def test_counting_without_keeping(self):
        tracer = Tracer(keep=False)
        tracer.emit(1.0, 1, "cat")
        assert tracer.records == []
        assert tracer.count("cat") == 1

    def test_subscribers_invoked(self):
        tracer = Tracer()
        seen = []
        tracer.subscribe(seen.append)
        tracer.emit(1.0, 1, "cat", value=9)
        assert len(seen) == 1
        assert seen[0].detail["value"] == 9

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(1.0, 1, "cat")
        tracer.clear()
        assert tracer.records == []
        assert tracer.count("cat") == 0

    def test_ring_buffer_caps_retention(self):
        tracer = Tracer(max_records=3)
        for i in range(5):
            tracer.emit(float(i), 1, "cat", i=i)
        # Oldest two discarded; counters stay exact.
        assert [r.detail["i"] for r in tracer.records] == [2, 3, 4]
        assert tracer.dropped == 2
        assert tracer.count("cat") == 5
        assert len(list(tracer.select("cat"))) == 3
        tracer.clear()
        assert len(tracer.records) == 0 and tracer.dropped == 0

    def test_unbounded_by_default(self):
        tracer = Tracer()
        for i in range(100):
            tracer.emit(float(i), 1, "cat")
        assert len(tracer.records) == 100 and tracer.dropped == 0

    def test_clear_reallocates_ring_buffer(self):
        # Regression: clear() must hand back a fresh ring with the same
        # capacity and a zeroed drop count, and continued emission must
        # window/drop exactly like a newly built tracer.
        tracer = Tracer(max_records=3)
        for i in range(5):
            tracer.emit(float(i), 1, "cat", i=i)
        pre_clear = tracer.records          # alias taken before clear()
        tracer.clear()
        assert tracer.dropped == 0
        assert tracer.count("cat") == 0
        # The alias keeps the pre-clear snapshot; the tracer starts fresh.
        assert [r.detail["i"] for r in pre_clear] == [2, 3, 4]
        assert len(tracer.records) == 0
        for i in range(10, 15):
            tracer.emit(float(i), 1, "cat", i=i)
        assert [r.detail["i"] for r in tracer.records] == [12, 13, 14]
        assert tracer.dropped == 2
        assert tracer.count("cat") == 5

    def test_clear_mid_select_iteration(self):
        # A select() generator obtained before clear() must not be
        # emptied under the reader.
        tracer = Tracer(max_records=4)
        for i in range(4):
            tracer.emit(float(i), 1, "cat", i=i)
        iterator = tracer.select("cat")
        first = next(iterator)
        tracer.clear()
        remaining = [first] + list(iterator)
        assert [r.detail["i"] for r in remaining] == [0, 1, 2, 3]
