"""Binary wire codec: differential round-trips and frame fuzzing."""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gcs.channel import ChanAck, ChanData
from repro.gcs.types import (AckMsg, DataMsg, HeartbeatMsg, NackMsg,
                             RetransDataMsg, ServiceLevel, StampMsg,
                             TokenMsg, ViewId)
from repro.net import codec
from repro.net.batching import Batch

VIEW = ViewId(3, 1)

#: One of every wire type the codec packs compactly, plus payloads that
#: must take the pickle escape hatch.
CORPUS = [
    DataMsg(VIEW, 2, 7, ("SET", "k", 1), ServiceLevel.SAFE, 180),
    DataMsg(VIEW, 14, 0, None, ServiceLevel.AGREED, 48),
    # trace-context field (wire v2): traced data and channel payloads
    DataMsg(VIEW, 2, 8, ("SET", "k", 2), ServiceLevel.SAFE, 180,
            (2 << 32) | 8),
    ChanData(1, 10, {"state": [4]}, 320, (1 << 62) | 12345),
    StampMsg(VIEW, ((5, 2, 7), (6, 3, 0))),
    StampMsg(VIEW, ()),
    AckMsg(VIEW, 4, 1234),
    HeartbeatMsg(9, VIEW, True, 55),
    HeartbeatMsg(9, None, False, -1),
    # namespaced heartbeats of a shard fabric (group != 0)
    HeartbeatMsg(109, VIEW, True, 55, 1),
    HeartbeatMsg(209, None, False, -1, 2),
    TokenMsg(VIEW, 42, ((1, 40), (2, 41))),
    NackMsg(VIEW, 3, (7, 9, 11), 5),
    NackMsg(VIEW, 3, (), 0),
    RetransDataMsg(VIEW, ((5, 2, 7, ("SET", "k", 1), ServiceLevel.SAFE,
                           180, (2 << 32) | 7),)),
    RetransDataMsg(VIEW, ()),
    ChanData(1, 9, {"state": [1, 2, 3]}, 320),
    ChanAck(2, 17),
    Batch([(AckMsg(VIEW, 4, 8), 64),
           (DataMsg(VIEW, 2, 7, "x", ServiceLevel.SAFE, 120), 120)]),
    # escape-hatch payloads: no dedicated encoder
    ("raw", "tuple"),
    {"a": 1},
    None,
]


@pytest.mark.parametrize("payload", CORPUS,
                         ids=lambda p: type(p).__name__)
def test_differential_roundtrip_vs_pickle(payload):
    """decode(encode(m)) must equal pickle's round-trip of m."""
    blob = codec.encode_frame(7, payload)
    src, decoded = codec.decode_frame(blob)
    assert src == 7
    assert decoded == pickle.loads(pickle.dumps(payload))


def test_compact_encoding_beats_pickle_for_hot_types():
    msg = DataMsg(VIEW, 2, 7, ("SET", "key", 1), ServiceLevel.SAFE, 180)
    assert len(codec.encode_frame(1, msg)) < len(pickle.dumps(msg))
    ack = AckMsg(VIEW, 4, 1234)
    assert len(codec.encode_frame(1, ack)) < len(pickle.dumps(ack))


def test_nested_batch_roundtrip():
    inner = Batch([(ChanAck(1, 3), 64), (("app", "payload"), 90)])
    outer = Batch([(inner, 200), (AckMsg(VIEW, 2, 5), 64)])
    _src, decoded = codec.decode_frame(codec.encode_frame(3, outer))
    assert decoded == outer


def test_out_of_range_field_takes_escape_hatch():
    # size exceeds the packed i32: the encoder must fall back to
    # pickle rather than corrupt or crash.
    msg = DataMsg(VIEW, 2, 7, "x", ServiceLevel.SAFE, 2 ** 40)
    blob = codec.encode_frame(1, msg)
    assert blob[codec._HEADER.size] == codec.TAG_PICKLE
    assert codec.decode_frame(blob)[1] == msg


def test_bad_magic_and_version_raise():
    blob = bytearray(codec.encode_frame(1, ("x",)))
    garbled = bytes([blob[0] ^ 0xFF]) + bytes(blob[1:])
    with pytest.raises(codec.CodecError):
        codec.decode_frame(garbled)
    bumped = bytes([blob[0], blob[1] + 1]) + bytes(blob[2:])
    with pytest.raises(codec.CodecError):
        codec.decode_frame(bumped)


def test_version1_frames_are_rejected():
    """Pre-trace (v1) frames must be refused, not mis-decoded: the v2
    DataMsg/ChanData bodies are 8 bytes wider, so a silent accept would
    shear every field after the header."""
    assert codec.VERSION == 2
    v1 = codec._HEADER.pack(codec.MAGIC, 1, 7) \
        + codec.encode_payload(("x",))
    with pytest.raises(codec.CodecError, match="wire version 1"):
        codec.decode_frame(v1)


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=-2 ** 63, max_value=2 ** 63 - 1))
def test_trace_field_roundtrips_any_64bit_value(trace):
    """The trace-context id survives the frame for the full signed
    64-bit range, on both traced wire types."""
    data = DataMsg(VIEW, 2, 7, ("SET", "k", 1), ServiceLevel.SAFE,
                   180, trace)
    assert codec.decode_frame(codec.encode_frame(1, data))[1] == data
    chan = ChanData(1, 9, "payload", 64, trace)
    assert codec.decode_frame(codec.encode_frame(1, chan))[1] == chan


def test_trace_field_out_of_range_takes_escape_hatch():
    msg = DataMsg(VIEW, 2, 7, "x", ServiceLevel.SAFE, 180, 2 ** 64)
    blob = codec.encode_frame(1, msg)
    assert blob[codec._HEADER.size] == codec.TAG_PICKLE
    assert codec.decode_frame(blob)[1] == msg


def test_untraced_messages_default_to_trace_zero():
    msg = DataMsg(VIEW, 2, 7, "x", ServiceLevel.SAFE, 180)
    assert codec.decode_frame(codec.encode_frame(1, msg))[1].trace == 0


def test_unknown_tag_raises():
    frame = codec._HEADER.pack(codec.MAGIC, codec.VERSION, 1) \
        + codec._ITEM.pack(250, 0)
    with pytest.raises(codec.CodecError):
        codec.decode_frame(frame)


def test_trailing_bytes_raise():
    blob = codec.encode_frame(1, AckMsg(VIEW, 4, 8))
    with pytest.raises(codec.CodecError):
        codec.decode_frame(blob + b"\x00")


@pytest.mark.parametrize("payload", CORPUS,
                         ids=lambda p: type(p).__name__)
def test_every_truncation_raises_cleanly(payload):
    blob = codec.encode_frame(5, payload)
    for cut in range(len(blob)):
        with pytest.raises(codec.CodecError):
            codec.decode_frame(blob[:cut])


@settings(max_examples=200, deadline=None)
@given(st.binary(max_size=300))
def test_random_bytes_never_crash(blob):
    """Arbitrary garbage must raise CodecError, never anything else."""
    try:
        codec.decode_frame(blob)
    except codec.CodecError:
        pass


@settings(max_examples=100, deadline=None)
@given(st.recursive(
    st.none() | st.booleans() | st.integers() | st.text(max_size=20)
    | st.binary(max_size=20),
    lambda children: st.lists(children, max_size=4).map(tuple)
    | st.dictionaries(st.text(max_size=5), children, max_size=4),
    max_leaves=10))
def test_random_payloads_roundtrip(payload):
    """Any picklable application payload survives the frame."""
    src, decoded = codec.decode_frame(codec.encode_frame(2, payload))
    assert src == 2
    assert decoded == payload


@settings(max_examples=100, deadline=None)
@given(st.integers(min_value=0, max_value=400), st.integers(0, 255))
def test_single_byte_corruption_is_contained(pos, value):
    """Flipping any byte either decodes (to *something*) or raises
    CodecError — never an unhandled exception."""
    msg = DataMsg(VIEW, 2, 7, ("SET", "k", 1), ServiceLevel.SAFE, 180)
    blob = bytearray(codec.encode_frame(1, msg))
    blob[pos % len(blob)] = value
    try:
        codec.decode_frame(bytes(blob))
    except codec.CodecError:
        pass
