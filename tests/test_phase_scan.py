"""Systematic fault-timing scan.

Partitions (and crashes) are injected at a fine-grained sweep of
offsets across the engine's most delicate window — the membership
change: exchange, retransmission, construct, install.  Every offset
must preserve the safety invariants, and after healing, liveness.

This is the deterministic complement to the randomized property tests:
it guarantees the partition lands *at every protocol phase*, including
sub-millisecond windows hypothesis rarely hits.
"""

import pytest

from conftest import make_cluster

# The first merge-exchange after a heal starts within ~60-80 ms
# (gather settle) of the heal; sweep offsets across the whole window.
OFFSETS = [0.001 * k for k in range(0, 200, 8)]


def build_loaded_cluster(seed):
    cluster = make_cluster(4, seed=seed)
    cluster.start_all(settle=1.0)
    clients = {n: cluster.client(n) for n in (1, 2, 3, 4)}
    for i in range(3):
        for client in clients.values():
            client.submit(("APPEND", "log", i))
    cluster.run_for(1.0)
    # Split, inject divergent knowledge, so the merge has real work.
    cluster.partition([1, 2], [3, 4])
    cluster.run_for(1.0)
    clients[1].submit(("SET", "minority", 1))
    clients[3].submit(("SET", "majority", 1))
    cluster.run_for(0.5)
    return cluster


@pytest.mark.parametrize("offset", OFFSETS)
def test_partition_mid_merge_is_safe(offset):
    cluster = build_loaded_cluster(seed=17)
    cluster.heal()
    cluster.run_for(offset)          # land inside the merge protocol
    cluster.partition([1, 3], [2, 4])
    cluster.run_for(1.0)
    cluster.assert_prefix_consistent()
    cluster.assert_single_primary()
    cluster.heal()
    cluster.run_for(4.0)
    cluster.assert_converged()
    assert len(cluster.primary_members()) == 4


@pytest.mark.parametrize("offset", OFFSETS[::2])
def test_crash_mid_merge_is_safe(offset):
    cluster = build_loaded_cluster(seed=23)
    cluster.heal()
    cluster.run_for(offset)
    cluster.crash(2)
    cluster.run_for(1.5)
    cluster.assert_prefix_consistent()
    cluster.assert_single_primary()
    cluster.recover(2)
    cluster.run_for(4.0)
    cluster.assert_converged()
