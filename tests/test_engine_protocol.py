"""Protocol-level tests of the Appendix A state machine, including the
corner states (No, Un, the 1b transition) that demand precisely-timed
cascaded view changes."""

import pytest

from repro.core import EngineState, PrimComponent, Vulnerable
from repro.core.messages import EngineCpcMsg, EngineStateMsg
from repro.db import ActionId

from engine_harness import EngineHarness


def exchange_to_construct(harness, members=(1, 2, 3)):
    """Drive the engine through a clean exchange into Construct."""
    conf = harness.reg_conf(members)
    assert harness.engine.state is EngineState.EXCHANGE_STATES
    harness.own_state_msg(conf)
    for member in members:
        if member != harness.engine.server_id:
            harness.state_msg(member, conf)
    assert harness.engine.state is EngineState.CONSTRUCT
    return conf


class TestExchangeStates:
    def test_reg_conf_triggers_state_message(self):
        harness = EngineHarness(1)
        harness.reg_conf((1, 2, 3))
        assert harness.engine.state is EngineState.EXCHANGE_STATES
        assert len(harness.channel.sent_of(EngineStateMsg)) == 1

    def test_stale_state_messages_ignored(self):
        harness = EngineHarness(1)
        old_conf = harness.reg_conf((1, 2, 3))
        new_conf = harness.reg_conf((1, 2))
        # A state message stamped with the old conf must not count.
        harness.state_msg(2, old_conf)
        assert harness.engine.state is EngineState.EXCHANGE_STATES

    def test_all_states_and_quorum_leads_to_cpc(self):
        harness = EngineHarness(1)
        conf = exchange_to_construct(harness)
        assert harness.engine.vulnerable.is_valid
        assert len(harness.channel.sent_of(EngineCpcMsg)) == 1

    def test_no_quorum_leads_to_nonprim(self):
        harness = EngineHarness(1, servers=(1, 2, 3, 4, 5))
        conf = harness.reg_conf((1, 2))  # 2 of 5: no quorum
        harness.own_state_msg(conf)
        harness.state_msg(2, conf)
        assert harness.engine.state is EngineState.NON_PRIM
        assert not harness.channel.sent_of(EngineCpcMsg)

    def test_vulnerable_reporter_blocks_quorum(self):
        harness = EngineHarness(1)
        conf = harness.reg_conf((1, 2))
        harness.own_state_msg(conf)
        # Server 2 is still vulnerable to an attempt with member 3,
        # who is absent: the attempt cannot be resolved.
        vulnerable = Vulnerable()
        vulnerable.make_valid(0, 1, (2, 3), self_id=2)
        harness.state_msg(2, conf, vulnerable=vulnerable)
        assert harness.engine.state is EngineState.NON_PRIM

    def test_trans_conf_during_exchange_returns_to_nonprim(self):
        harness = EngineHarness(1)
        harness.reg_conf((1, 2, 3))
        harness.trans_conf((1,))
        assert harness.engine.state is EngineState.NON_PRIM


class TestConstructAndInstall:
    def test_all_cpcs_install_primary(self):
        harness = EngineHarness(1)
        conf = exchange_to_construct(harness)
        harness.own_cpc(conf)
        harness.cpc(2, conf)
        assert harness.engine.state is EngineState.CONSTRUCT
        harness.cpc(3, conf)
        assert harness.engine.state is EngineState.REG_PRIM
        assert harness.engine.prim_component.prim_index == 1
        assert harness.engine.prim_component.servers == (1, 2, 3)

    def test_install_greens_red_actions_by_action_id(self):
        harness = EngineHarness(1)
        conf = harness.reg_conf((1, 2, 3))
        # Reds arrive during the exchange in arbitrary creator order.
        harness.action(3, 1, update=("SET", "c", 3))
        harness.action(2, 1, update=("SET", "b", 2))
        harness.own_state_msg(conf)
        harness.state_msg(2, conf, red_cut={2: 1, 3: 1})
        harness.state_msg(3, conf, red_cut={2: 1, 3: 1})
        harness.own_cpc(conf)
        harness.cpc(2, conf)
        harness.cpc(3, conf)
        assert harness.engine.state is EngineState.REG_PRIM
        # OR-2: reds greened ordered by action id -> (2,1) before (3,1).
        assert harness.database.applied_log == [ActionId(2, 1),
                                                ActionId(3, 1)]

    def test_regprim_greens_actions_immediately(self):
        harness = EngineHarness(1)
        conf = exchange_to_construct(harness)
        harness.own_cpc(conf)
        harness.cpc(2, conf)
        harness.cpc(3, conf)
        harness.action(2, 1, update=("SET", "x", 1))
        assert harness.engine.queue.green_count == 1
        assert harness.database.state == {"x": 1}


class TestTransPrimAndYellow:
    def build_primary(self, harness, members=(1, 2, 3)):
        conf = exchange_to_construct(harness, members)
        harness.own_cpc(conf)
        for member in members:
            if member != harness.engine.server_id:
                harness.cpc(member, conf)
        assert harness.engine.state is EngineState.REG_PRIM
        return conf

    def test_trans_conf_moves_to_transprim(self):
        harness = EngineHarness(1)
        self.build_primary(harness)
        harness.trans_conf((1, 2))
        assert harness.engine.state is EngineState.TRANS_PRIM

    def test_actions_in_transprim_marked_yellow(self):
        harness = EngineHarness(1)
        self.build_primary(harness)
        harness.trans_conf((1, 2))
        act = harness.action(2, 1, update=("SET", "y", 1),
                             in_transitional=True)
        assert act.action_id in harness.engine.yellow.set
        # Yellow actions are NOT applied (their order is not final).
        assert harness.database.state == {}

    def test_regconf_after_transprim_validates_yellow(self):
        harness = EngineHarness(1)
        self.build_primary(harness)
        harness.trans_conf((1, 2))
        harness.action(2, 1, in_transitional=True)
        assert harness.engine.vulnerable.is_valid
        harness.reg_conf((1, 2))
        # A.3: vulnerable invalidated, yellow becomes Valid.
        assert not harness.engine.vulnerable.is_valid
        # The engine is now exchanging; its state message must carry
        # the valid yellow set.
        msg = harness.channel.sent_of(EngineStateMsg)[-1]
        assert msg.yellow_valid
        assert ActionId(2, 1) in msg.yellow_ids


class TestNoAndUnStates:
    def drive_to_construct(self, harness):
        return exchange_to_construct(harness)

    def test_trans_conf_in_construct_goes_no(self):
        harness = EngineHarness(1)
        conf = self.drive_to_construct(harness)
        harness.trans_conf((1, 2))
        assert harness.engine.state is EngineState.NO

    def test_no_with_regconf_invalidates_vulnerable(self):
        harness = EngineHarness(1)
        conf = self.drive_to_construct(harness)
        harness.trans_conf((1, 2))
        assert harness.engine.vulnerable.is_valid
        harness.reg_conf((1, 2))
        # A.11: no server can have installed; drop the vulnerability.
        assert harness.engine.state is EngineState.EXCHANGE_STATES
        msg = harness.channel.sent_of(EngineStateMsg)[-1]
        assert not msg.vulnerable.is_valid

    def test_remaining_cpcs_in_trans_conf_move_to_un(self):
        harness = EngineHarness(1)
        conf = self.drive_to_construct(harness)
        harness.own_cpc(conf)
        harness.cpc(2, conf)
        harness.trans_conf((1, 2))
        assert harness.engine.state is EngineState.NO
        # The last CPC arrives in the transitional configuration:
        # someone may have received them all in the regular conf.
        harness.cpc(3, conf, in_transitional=True)
        assert harness.engine.state is EngineState.UN

    def test_un_with_regconf_stays_vulnerable(self):
        harness = EngineHarness(1)
        conf = self.drive_to_construct(harness)
        harness.own_cpc(conf)
        harness.cpc(2, conf)
        harness.trans_conf((1, 2))
        harness.cpc(3, conf, in_transitional=True)
        assert harness.engine.state is EngineState.UN
        harness.reg_conf((1, 2))
        # The '?' transition: the dilemma is unresolved; the server
        # remains vulnerable until a future exchange settles it.
        assert harness.engine.state is EngineState.EXCHANGE_STATES
        msg = harness.channel.sent_of(EngineStateMsg)[-1]
        assert msg.vulnerable.is_valid

    def test_un_receiving_action_installs_and_joins_1b(self):
        """Transition 1b: an action in Un proves some server installed
        the primary and generated actions; install, mark the action
        yellow, and join it in TransPrim."""
        harness = EngineHarness(1)
        conf = self.drive_to_construct(harness)
        harness.own_cpc(conf)
        harness.cpc(2, conf)
        harness.trans_conf((1, 2))
        harness.cpc(3, conf, in_transitional=True)
        assert harness.engine.state is EngineState.UN
        prim_before = harness.engine.prim_component.prim_index
        act = harness.action(3, 1, update=("SET", "proof", 1),
                             in_transitional=True)
        assert harness.engine.state is EngineState.TRANS_PRIM
        assert harness.engine.prim_component.prim_index \
            == prim_before + 1
        assert act.action_id in harness.engine.yellow.set


class TestClientBuffering:
    def test_client_requests_buffered_until_stable_state(self):
        harness = EngineHarness(1)
        conf = harness.reg_conf((1, 2, 3))
        harness.engine.submit(("SET", "k", 1))
        # ExchangeStates buffers (A.4): nothing multicast yet.
        from repro.core.messages import EngineActionMsg
        assert not [m for m in harness.channel.sent_of(EngineActionMsg)
                    if not m.retrans]
        harness.own_state_msg(conf)
        harness.state_msg(2, conf)
        harness.state_msg(3, conf)
        harness.own_cpc(conf)
        harness.cpc(2, conf)
        harness.cpc(3, conf)
        harness.run(0.01)
        sent = [m for m in harness.channel.sent_of(EngineActionMsg)
                if not m.retrans]
        assert len(sent) == 1

    def test_submit_after_exit_rejected(self):
        harness = EngineHarness(1)
        harness.engine.exited = True
        with pytest.raises(RuntimeError):
            harness.engine.submit(("SET", "k", 1))
