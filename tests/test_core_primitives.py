"""Unit tests for colors, records, quorum policies, state machine."""

import pytest

from repro.core import (Color, DynamicLinearVoting, EngineState,
                        IllegalTransition, PrimComponent, StaticMajority,
                        TRANSITIONS, Vulnerable, Yellow, check_transition)
from repro.core.colors import may_transition
from repro.db import ActionId


class TestColors:
    def test_lattice_order(self):
        assert Color.RED < Color.YELLOW < Color.GREEN < Color.WHITE

    def test_monotonic_transitions(self):
        assert may_transition(Color.RED, Color.GREEN)
        assert may_transition(Color.YELLOW, Color.YELLOW)
        assert not may_transition(Color.GREEN, Color.RED)
        assert not may_transition(Color.WHITE, Color.GREEN)


class TestPrimComponent:
    def test_key_ordering(self):
        older = PrimComponent(prim_index=1, attempt_index=5)
        newer = PrimComponent(prim_index=2, attempt_index=1)
        assert newer.key > older.key

    def test_same_as(self):
        a = PrimComponent(1, 2, (1, 2, 3))
        b = PrimComponent(1, 2, (1, 2, 3))
        c = PrimComponent(1, 2, (1, 2))
        assert a.same_as(b)
        assert not a.same_as(c)


class TestVulnerable:
    def test_starts_invalid(self):
        assert not Vulnerable().is_valid

    def test_make_valid_sets_own_bit(self):
        vulnerable = Vulnerable()
        vulnerable.make_valid(3, 7, (1, 2, 3), self_id=2)
        assert vulnerable.is_valid
        assert vulnerable.bits == {1: False, 2: True, 3: False}
        assert vulnerable.attempt_key() == (3, 7, (1, 2, 3))

    def test_all_bits_set(self):
        vulnerable = Vulnerable()
        vulnerable.make_valid(0, 1, (1, 2), self_id=1)
        assert not vulnerable.all_bits_set()
        vulnerable.bits[2] = True
        assert vulnerable.all_bits_set()

    def test_empty_set_never_all_bits(self):
        assert not Vulnerable().all_bits_set()

    def test_invalidate(self):
        vulnerable = Vulnerable()
        vulnerable.make_valid(0, 1, (1,), self_id=1)
        vulnerable.invalidate()
        assert not vulnerable.is_valid


class TestYellow:
    def test_lifecycle(self):
        yellow = Yellow()
        assert not yellow.is_valid
        yellow.make_valid()
        yellow.add(ActionId(1, 1))
        yellow.add(ActionId(1, 1))  # dedup
        yellow.add(ActionId(2, 1))
        assert yellow.set == [ActionId(1, 1), ActionId(2, 1)]
        yellow.invalidate()
        assert yellow.set == []


class TestQuorum:
    def test_dlv_majority_of_last_prim(self):
        policy = DynamicLinearVoting()
        assert policy.is_quorum({1, 2}, (1, 2, 3), [1, 2, 3, 4, 5])
        assert not policy.is_quorum({1}, (1, 2, 3), [1, 2, 3, 4, 5])

    def test_dlv_linear_tie_break(self):
        policy = DynamicLinearVoting()
        # Exactly half the votes: the side holding the distinguished
        # (lowest-id) member of the last primary wins the tie [Jajodia
        # & Mutchler 90]; the complementary half does not, so two
        # primaries can never coexist.
        assert policy.is_quorum({1, 2}, (1, 2, 3, 4), [1, 2, 3, 4])
        assert not policy.is_quorum({3, 4}, (1, 2, 3, 4), [1, 2, 3, 4])
        # Without the tie-break an even last primary could deadlock
        # forever, e.g. when the absent half left voluntarily and its
        # leave went green only at the leaver before it exited.
        assert policy.is_quorum({2}, (2, 3), [1, 2, 3])
        assert not policy.is_quorum({3}, (2, 3), [1, 2, 3])

    def test_dlv_bootstrap_uses_full_set(self):
        policy = DynamicLinearVoting()
        assert policy.is_quorum({1, 2}, (), [1, 2, 3])
        assert not policy.is_quorum({1}, (), [1, 2, 3])

    def test_dlv_weighted(self):
        policy = DynamicLinearVoting(weights={1: 3.0})
        # Node 1 alone outweighs 2+3.
        assert policy.is_quorum({1}, (1, 2, 3), [1, 2, 3])
        assert not policy.is_quorum({2, 3}, (1, 2, 3), [1, 2, 3])

    def test_dlv_ignores_nonmembers_of_last_prim(self):
        policy = DynamicLinearVoting()
        # 4 and 5 are connected but were not in the last primary.
        assert not policy.is_quorum({3, 4, 5}, (1, 2, 3), [1, 2, 3, 4, 5])

    def test_static_majority(self):
        policy = StaticMajority()
        assert policy.is_quorum({1, 2, 3}, (1, 2), [1, 2, 3, 4, 5])
        assert not policy.is_quorum({1, 2}, (1, 2), [1, 2, 3, 4, 5])

    def test_describe(self):
        assert "dynamic" in DynamicLinearVoting().describe()
        assert "static" in StaticMajority().describe()


class TestStateMachine:
    def test_self_loops_allowed(self):
        for state in EngineState:
            check_transition(state, state)

    def test_figure4_edges(self):
        check_transition(EngineState.REG_PRIM, EngineState.TRANS_PRIM)
        check_transition(EngineState.TRANS_PRIM,
                         EngineState.EXCHANGE_STATES)
        check_transition(EngineState.CONSTRUCT, EngineState.NO)
        check_transition(EngineState.NO, EngineState.UN)
        check_transition(EngineState.UN, EngineState.TRANS_PRIM)
        check_transition(EngineState.CONSTRUCT, EngineState.REG_PRIM)

    def test_illegal_edges_raise(self):
        with pytest.raises(IllegalTransition):
            check_transition(EngineState.NON_PRIM, EngineState.REG_PRIM)
        with pytest.raises(IllegalTransition):
            check_transition(EngineState.REG_PRIM,
                             EngineState.NON_PRIM)
        with pytest.raises(IllegalTransition):
            check_transition(EngineState.NO, EngineState.REG_PRIM)

    def test_every_state_has_entries(self):
        assert set(TRANSITIONS) == set(EngineState)
