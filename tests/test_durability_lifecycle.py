"""Durability across full lifecycles: join → compaction → crash →
recovery chains, each stage preserving the previous one's state."""

import pytest

from repro.core import EngineConfig

from conftest import make_cluster


def compacting_cluster(threshold=40):
    return make_cluster(3, engine_config=EngineConfig(
        log_compaction_threshold=threshold, checkpoint_interval=0.2))


def test_joiner_compacts_then_recovers():
    cluster = compacting_cluster()
    cluster.start_all(settle=1.0)
    client = cluster.client(1)
    for i in range(20):
        client.submit(("SET", f"base{i}", i))
    cluster.run_for(1.5)
    cluster.add_replica(4, peer=2)
    cluster.run_for(5.0)
    # More traffic so the joiner's checkpoint compacts its log.
    for i in range(40):
        client.submit(("SET", f"post{i}", i))
    cluster.run_for(2.0)
    cluster.crash(4)
    cluster.run_for(0.5)
    cluster.recover(4)
    cluster.run_for(3.0)
    cluster.assert_converged()
    state = cluster.replicas[4].database.state
    assert state["base0"] == 0
    assert state["post39"] == 39


def test_double_crash_recovery_chain():
    """Crash, recover, accumulate, crash again: the second recovery
    reads a log containing records from both incarnations."""
    cluster = compacting_cluster()
    cluster.start_all(settle=1.0)
    client = cluster.client(1)
    for i in range(15):
        client.submit(("SET", f"a{i}", i))
    cluster.run_for(1.5)
    cluster.crash(3)
    cluster.run_for(0.5)
    cluster.recover(3)
    cluster.run_for(2.0)
    for i in range(15):
        client.submit(("SET", f"b{i}", i))
    cluster.run_for(1.5)
    cluster.crash(3)
    cluster.run_for(0.5)
    cluster.recover(3)
    cluster.run_for(2.5)
    cluster.assert_converged()
    state = cluster.replicas[3].database.state
    assert state["a14"] == 14 and state["b14"] == 14


def test_recovery_during_partition_then_merge():
    cluster = compacting_cluster()
    cluster.start_all(settle=1.0)
    client = cluster.client(1)
    for i in range(25):
        client.submit(("SET", f"k{i}", i))
    cluster.run_for(1.5)
    cluster.partition([1, 2], [3])
    cluster.run_for(1.0)
    cluster.crash(3)
    cluster.run_for(0.5)
    cluster.recover(3)          # recovers alone, in its partition
    cluster.run_for(1.5)
    for i in range(10):
        client.submit(("SET", f"fresh{i}", i))
    cluster.run_for(1.0)
    cluster.heal()
    cluster.run_for(3.0)
    cluster.assert_converged()
    assert cluster.replicas[3].database.state["fresh9"] == 9


def test_whole_cluster_restart_from_disk():
    """Every replica crashes; the system restarts purely from stable
    storage and resumes serving."""
    cluster = compacting_cluster()
    cluster.start_all(settle=1.0)
    client = cluster.client(2)
    for i in range(30):
        client.submit(("SET", f"k{i}", i))
    cluster.run_for(2.0)        # checkpoints land
    digest_before = cluster.replicas[1].database.digest()
    for node in (1, 2, 3):
        cluster.crash(node)
    cluster.run_for(0.5)
    for node in (1, 2, 3):
        cluster.recover(node)
    cluster.run_for(4.0)
    cluster.assert_converged()
    assert len(cluster.primary_members()) == 3
    # Durable green history may trail the pre-crash state by at most
    # one checkpoint interval's worth; everything durable survived.
    state = cluster.replicas[1].database.state
    assert state.get("k0") == 0
    new_client = cluster.client(3)
    new_client.submit(("SET", "post-restart", True))
    cluster.run_for(1.0)
    assert new_client.completed == 1
