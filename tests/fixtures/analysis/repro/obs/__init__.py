"""Fixture package mirroring ``repro.obs`` for the seam enforcer."""
