"""Fixture: flight-clock violations in a flight-recorder module.

Never imported — parsed by the seam-enforcer tests.  A recorder that
reads its own clock instead of taking caller timestamps would diverge
between simulated and live runs.
"""

import datetime
from time import monotonic


class BadRecorder:
    def __init__(self, runtime):
        self.runtime = runtime
        self.events = []

    def record(self, kind):
        self.events.append((self.runtime.now, kind))    # flight-clock

    def record_wall(self, kind):
        self.events.append((monotonic(), kind))

    def record_date(self, kind):
        self.events.append((datetime.datetime.now(), kind))
