"""Fixture: struct-level framing outside the codec.

The runtime package is exempt from the seam rules, but the framing rule
still applies — a transport hand-packing frames would bypass the
codec's versioned header.
"""

import struct

from struct import pack


def frame(x: int) -> bytes:
    return pack("!i", x) + struct.pack("!i", x)
