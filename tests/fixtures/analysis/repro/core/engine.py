"""Fixture: engine-like class seeding state-machine violations.

Never imported — parsed by the state-machine cross-checker tests.
"""


class EngineState:          # stand-in so the file is at least parseable
    pass


class BrokenEngine:
    def _set_state(self, new):
        self.state = new

    def _on_backdoor(self, msg):
        # Seeded violation: NonPrim -> RegPrim skips the whole
        # exchange/construct path — not a Figure-4 edge.
        if self.state == EngineState.NON_PRIM:
            self._set_state(EngineState.REG_PRIM)

    def _on_unguarded(self, msg):
        # Seeded violation: no dominating state guard.
        self._set_state(EngineState.NO)

    def _on_computed(self, msg):
        # Seeded violation: target is not a literal member.
        if self.state == EngineState.NO:
            self._set_state(msg.pick_state())

    def _on_legal(self, msg):
        # Declared edge (Construct -> RegPrim): no finding expected.
        state = self.state
        if state == EngineState.CONSTRUCT:
            self._set_state(EngineState.REG_PRIM)
