"""Fixture: determinism hazards in a core-like module.

Never imported — parsed by the determinism-linter tests.
"""

import random
import time
from random import choice


def stamp_action(action):
    action.ts = time.time()                     # wall-clock


def pick_representative(members):
    return choice(sorted(members))              # global-random (alias)


def jitter():
    return random.uniform(0.0, 1.0)             # global-random


def broadcast(members, send):
    for member in set(members):                 # unordered-iteration
        send(member)


def index_by_identity(table, obj):
    table[id(obj)] = obj                        # id-key


def is_settled(progress):
    return progress == 1.0                      # float-equality


def safe_patterns(members, cut, others):
    # None of these may be flagged.
    ordered = [m for m in sorted(set(members))]
    count = len(set(members))
    same = set(members) == set(others)
    if count == 2 and cut == 3:
        ordered.append(max(set(members)))
    return ordered, same
