"""Fixture: accel module using dynamic constructs (compile-dynamic).

Named ``repro.net.network`` so it falls inside the
``CompileDisciplineChecker`` scope (the ACCEL_MODULES list).
"""

from typing import Any


class Network:
    def __init__(self) -> None:
        self.handlers: Any = {}

    def dispatch(self, target: Any, name: str) -> Any:
        handler = getattr(target, name, None)          # dynamic lookup
        setattr(target, "last_dispatch", name)         # dynamic store
        return handler

    def snapshot(self, target: Any) -> Any:
        state = vars(target)                           # instance dict
        state.update(target.__dict__)                  # __dict__ access
        return eval("state")                           # dynamic eval
