"""Fixture: the codec module itself may import struct."""

import struct

FRAME = struct.Struct("!BBi")
