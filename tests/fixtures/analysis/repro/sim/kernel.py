"""Fixture: accel module with missing annotations (compile-annotations).

Named ``repro.sim.kernel`` so it falls inside the
``CompileDisciplineChecker`` scope (the ACCEL_MODULES list).
"""


class Simulator:
    def __init__(self) -> None:
        self.now = 0.0

    def schedule(self, delay, callback) -> None:      # unannotated params
        callback(delay)

    def run(self, until: float):                      # missing return
        self.now = until


def make_key():                                       # missing return
    return lambda entry: entry[0]                     # lambda, unannotatable
