"""Fixture: runtime-seam violations in a gcs-like module.

Never imported — parsed by the seam-enforcer tests.
"""

import os
import socket
from time import monotonic


def connect(host, port):
    sock = socket.create_connection((host, port))
    started = monotonic()
    return sock, started


def persist(path, payload):
    fh = open(path, "wb")                       # seam-blocking-io
    try:
        fh.write(payload)
        os.fsync(fh.fileno())                   # seam-blocking-io
    finally:
        fh.close()
