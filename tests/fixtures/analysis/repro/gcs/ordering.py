"""Fixture: accel module importing heavyweight layers (compile-imports).

Named ``repro.gcs.ordering`` so it falls inside the
``CompileDisciplineChecker`` scope (the ACCEL_MODULES list).  The
TYPE_CHECKING-guarded import at the bottom must NOT be flagged.
"""

from typing import TYPE_CHECKING, Any

import repro.core.engine                       # heavyweight module
from repro.obs.metrics import Histogram        # off-limits subpackage
from ..core import engine                      # bare package (resolved)

if TYPE_CHECKING:
    from repro.gcs.daemon import GcsDaemon     # type-only: allowed


def order(daemon: Any) -> Any:
    return repro.core.engine, Histogram, engine
