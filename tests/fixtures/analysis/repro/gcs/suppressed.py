"""Fixture: violations silenced by inline suppressions.

Never imported — parsed by the suppression tests.
"""

# repro: allow[seam-import] -- fixture: next-line suppression
import socket


def trace(clock):
    import time  # repro: allow[seam-import] -- fixture: same-line
    return time.time()  # repro: allow[wall-clock] -- fixture
