"""Bad abstract model: forks the Figure-4 table instead of deriving it.

Trips both model-sync rules: no derivation import from
``repro.core.state_machine`` (``model-derivation``) and a hand-written
edge-table literal plus a dict-shaped copy (``model-edge-copy``).
"""

from repro.core.state_machine import EngineState

_S = EngineState

# A pasted copy of "the interesting edges" — exactly the drift hazard
# the rule exists to catch.
MY_EDGES = frozenset({
    (_S.EXCHANGE_STATES, _S.EXCHANGE_ACTIONS),
    (_S.EXCHANGE_ACTIONS, _S.CONSTRUCT),
    (_S.CONSTRUCT, _S.REG_PRIM),
})

# Dict-shaped variant of the same copy.
NEXT_BY_STATE = {
    _S.NON_PRIM: (_S.EXCHANGE_STATES, _S.NON_PRIM),
    _S.REG_PRIM: (_S.TRANS_PRIM,),
}

# A membership tuple — must NOT be flagged; it tests states, it does
# not declare transitions.
QUIET_STATES = (_S.REG_PRIM, _S.TRANS_PRIM, _S.NON_PRIM)


def step(state):
    return state in QUIET_STATES
