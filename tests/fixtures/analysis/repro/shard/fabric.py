"""Fixture: the composition root may import the engine layers."""

from repro.core import ReplicaCluster

from ..gcs.daemon import GcsDaemon


def build() -> object:
    return ReplicaCluster, GcsDaemon
