"""Fixture: a shard policy module reaching into the engine layers.

Every import below is a shard-isolation violation — absolute, dotted
absolute, and relative forms all resolve to repro.core / repro.gcs.
"""

import repro.core.engine
from repro.gcs import GcsDaemon

from ..core.replica import Replica
from ..gcs.daemon import GcsDaemon as _Daemon


def route(engine: object) -> object:
    return Replica, GcsDaemon, _Daemon, repro.core.engine
