"""Unit tests for reliable FIFO point-to-point channels."""

import pytest

from repro.gcs import ReliableChannelEndpoint
from repro.net import Network, NetworkProfile, Topology
from repro.sim import RandomStreams, Simulator


def make_pair(loss_rate=0.0, seed=0):
    sim = Simulator()
    topo = Topology([1, 2])
    net = Network(sim, topo, NetworkProfile(loss_rate=loss_rate,
                                            jitter=0.0),
                  rng=RandomStreams(seed).stream("network"))
    inbox = {1: [], 2: []}
    endpoints = {}
    for node in (1, 2):
        endpoint = ReliableChannelEndpoint(
            sim, node, net,
            lambda peer, payload, node=node: inbox[node].append(
                (peer, payload)),
            retransmit_interval=0.05)
        endpoints[node] = endpoint
    for node in (1, 2):
        net.attach(node, endpoints[node].on_datagram)
        endpoints[node].start()
    return sim, topo, net, endpoints, inbox


def test_in_order_delivery():
    sim, _t, _n, endpoints, inbox = make_pair()
    for i in range(10):
        endpoints[1].send(2, f"m{i}")
    sim.run(until=1.0)
    assert [p for _peer, p in inbox[2]] == [f"m{i}" for i in range(10)]


def test_bidirectional():
    sim, _t, _n, endpoints, inbox = make_pair()
    endpoints[1].send(2, "ping")
    endpoints[2].send(1, "pong")
    sim.run(until=1.0)
    assert inbox[2] == [(1, "ping")]
    assert inbox[1] == [(2, "pong")]


def test_retransmission_under_heavy_loss():
    sim, _t, _n, endpoints, inbox = make_pair(loss_rate=0.4, seed=5)
    for i in range(20):
        endpoints[1].send(2, i)
    sim.run(until=10.0)
    assert [p for _peer, p in inbox[2]] == list(range(20))


def test_no_duplicates_despite_retransmits():
    sim, topo, _n, endpoints, inbox = make_pair()
    endpoints[1].send(2, "once")
    # Force several retransmit periods by delaying the ack path.
    topo.partition([[1], [2]])
    sim.run(until=0.3)
    topo.heal()
    sim.run(until=2.0)
    assert [p for _peer, p in inbox[2]] == ["once"]


def test_unacked_tracking():
    sim, topo, _n, endpoints, _inbox = make_pair()
    topo.partition([[1], [2]])
    endpoints[1].send(2, "x")
    sim.run(until=0.2)
    assert endpoints[1].unacked(2) == 1
    topo.heal()
    sim.run(until=1.0)
    assert endpoints[1].unacked(2) == 0


def test_stopped_endpoint_ignores_traffic():
    sim, _t, _n, endpoints, inbox = make_pair()
    endpoints[2].stop()
    endpoints[1].send(2, "late")
    sim.run(until=1.0)
    assert inbox[2] == []


def test_stopped_sender_drops_sends():
    sim, _t, _n, endpoints, inbox = make_pair()
    endpoints[1].stop()
    endpoints[1].send(2, "never")
    sim.run(until=1.0)
    assert inbox[2] == []
