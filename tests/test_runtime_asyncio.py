"""AsyncioRuntime timer semantics: cancel, reschedule, ordering.

The protocol stack relies on a handful of runtime behaviours the kernel
guarantees (handle ``active`` lifecycle, cancellation, call_soon FIFO,
negative-delay rejection).  These tests pin the asyncio implementation
to the same contract.  No pytest-asyncio: each test drives its own loop
with ``asyncio.run``.
"""

import asyncio

import pytest

from repro.runtime import (AsyncioRuntime, Handle, MemoryTransport,
                           PartitionFilter, Runtime, SimRuntime, Transport)
from repro.sim.kernel import SimulationError


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# protocol conformance (structural)
# ----------------------------------------------------------------------

def test_both_runtimes_satisfy_the_protocol():
    async def check():
        return isinstance(AsyncioRuntime(), Runtime)
    assert run(check())
    assert isinstance(SimRuntime(), Runtime)


def test_transports_satisfy_the_protocol():
    async def check():
        return isinstance(MemoryTransport(AsyncioRuntime()), Transport)
    assert run(check())
    from repro.core import ReplicaCluster
    assert isinstance(ReplicaCluster(n=2).network, Transport)


# ----------------------------------------------------------------------
# timers
# ----------------------------------------------------------------------

def test_post_fires_after_delay():
    async def scenario():
        rt = AsyncioRuntime()
        fired = []
        rt.post(0.01, fired.append, "a")
        rt.post(0.0, fired.append, "b")
        await asyncio.sleep(0.05)
        return fired, rt.events_processed

    fired, processed = run(scenario())
    assert fired == ["b", "a"]
    assert processed == 2


def test_schedule_handle_lifecycle():
    async def scenario():
        rt = AsyncioRuntime()
        fired = []
        handle = rt.schedule(0.005, fired.append, "x")
        assert isinstance(handle, Handle)
        states = [(handle.active, handle.cancelled)]
        await asyncio.sleep(0.03)
        states.append((handle.active, handle.cancelled))
        return fired, states

    fired, states = run(scenario())
    assert fired == ["x"]
    # active before firing; inactive (but not cancelled) after.
    assert states == [(True, False), (False, False)]


def test_cancel_prevents_firing():
    async def scenario():
        rt = AsyncioRuntime()
        fired = []
        handle = rt.schedule(0.005, fired.append, "x")
        handle.cancel()
        handle.cancel()      # idempotent
        await asyncio.sleep(0.03)
        return fired, handle.active, handle.cancelled, rt.events_processed

    fired, active, cancelled, processed = run(scenario())
    assert fired == []
    assert not active and cancelled
    assert processed == 0


def test_reschedule_pattern_replaces_expiry():
    """The Timer helper's start() pattern: cancel the old handle, arm a
    new one.  Only the final expiry fires."""
    async def scenario():
        rt = AsyncioRuntime()
        fired = []
        handle = rt.schedule(0.005, fired.append, "old")
        handle.cancel()
        handle = rt.schedule(0.01, fired.append, "new")
        await asyncio.sleep(0.05)
        return fired

    assert run(scenario()) == ["new"]


def test_timer_helper_runs_on_asyncio():
    """repro.sim.Timer (used by every protocol actor) is runtime-
    agnostic: periodic fire + stop on the live loop."""
    from repro.sim import Timer

    async def scenario():
        rt = AsyncioRuntime()
        ticks = []
        timer = Timer(rt, lambda: ticks.append(rt.now), 0.005,
                      periodic=True)
        timer.start()
        await asyncio.sleep(0.04)
        timer.stop()
        count = len(ticks)
        assert count >= 3
        await asyncio.sleep(0.02)
        return count, len(ticks)

    count, after = run(scenario())
    assert after == count   # no ticks after stop


def test_call_soon_fifo_ordering():
    async def scenario():
        rt = AsyncioRuntime()
        order = []
        rt.call_soon(order.append, 1)
        rt.call_soon(order.append, 2)
        rt.call_soon(order.append, 3)
        await asyncio.sleep(0.01)
        return order

    assert run(scenario()) == [1, 2, 3]


def test_call_soon_cancellable_before_tick():
    async def scenario():
        rt = AsyncioRuntime()
        order = []
        keep = rt.call_soon(order.append, "keep")
        drop = rt.call_soon(order.append, "drop")
        drop.cancel()
        await asyncio.sleep(0.01)
        return order, keep.active

    order, keep_active = run(scenario())
    assert order == ["keep"]
    assert not keep_active


def test_negative_delay_rejected_like_kernel():
    async def scenario():
        rt = AsyncioRuntime()
        with pytest.raises(SimulationError):
            rt.post(-0.1, lambda: None)
        with pytest.raises(SimulationError):
            rt.schedule(-0.1, lambda: None)

    run(scenario())


def test_past_absolute_time_clamps_to_now():
    """Divergence from the kernel, by design: wall clocks drift, so a
    stale absolute deadline fires immediately instead of raising."""
    async def scenario():
        rt = AsyncioRuntime()
        fired = []
        await asyncio.sleep(0.01)
        rt.post_at(0.0, fired.append, "past")
        rt.schedule_at(0.0, fired.append, "past2")
        await asyncio.sleep(0.01)
        return fired

    assert sorted(run(scenario())) == ["past", "past2"]


def test_now_is_monotonic_and_rebased():
    async def scenario():
        rt = AsyncioRuntime()
        first = rt.now
        await asyncio.sleep(0.01)
        second = rt.now
        return first, second

    first, second = run(scenario())
    assert first < 0.005          # rebased to ~zero at creation
    assert second > first


def test_stop_sets_the_stopped_event():
    async def scenario():
        rt = AsyncioRuntime()
        assert not rt.stopped.is_set()
        rt.post(0.005, rt.stop)
        await asyncio.wait_for(rt.wait_stopped(), timeout=1.0)
        return rt.stopped.is_set()

    assert run(scenario())


# ----------------------------------------------------------------------
# partition filter
# ----------------------------------------------------------------------

def test_partition_filter_components():
    f = PartitionFilter()
    assert f.allows(1, 2)
    f.partition([[1, 2], [3]])
    assert f.allows(1, 2) and not f.allows(2, 3)
    assert f.allows(3, 3)          # self always reachable
    # a node listed in no group is its own singleton
    assert not f.allows(1, 4) and not f.allows(4, 5)
    f.heal()
    assert f.allows(2, 3) and f.allows(4, 5)


def test_memory_transport_partition_cuts_in_flight():
    async def scenario():
        rt = AsyncioRuntime()
        net = MemoryTransport(rt, latency=0.01)
        got = []
        net.attach(1, lambda d: got.append(d.payload))
        net.attach(2, lambda d: got.append(d.payload))
        net.send(1, 2, "before")       # in flight when the cut lands
        net.partition([[1], [2]])
        net.send(1, 2, "during")       # dropped at send time
        await asyncio.sleep(0.05)
        net.heal()
        net.send(1, 2, "after")
        await asyncio.sleep(0.05)
        return got, net.datagrams_dropped

    got, dropped = run(scenario())
    assert got == ["after"]
    assert dropped == 2
