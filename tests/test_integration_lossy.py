"""Full-stack integration under packet loss and at larger scale.

The engine never sees the loss — the GCS NACK/flush machinery repairs
it — but end-to-end correctness under a lossy fabric is exactly what
"seamless integration over unreliable networks" promises.
"""

import pytest

from repro.core import EngineState
from repro.net import NetworkProfile

from conftest import fast_disk_profile, fast_gcs_settings, make_cluster


def lossy_cluster(n=3, loss=0.05, seed=0):
    profile = NetworkProfile(loss_rate=loss)
    # Generous failure/phase timers so loss exercises retransmission,
    # not membership churn.
    settings = fast_gcs_settings(failure_timeout=0.6, phase_timeout=0.5,
                                 heartbeat_interval=0.05)
    return make_cluster(n, seed=seed, network_profile=profile,
                        gcs_settings=settings)


class TestLossyFabric:
    def test_commits_through_five_percent_loss(self):
        cluster = lossy_cluster(loss=0.05, seed=3)
        cluster.start_all(settle=3.0)
        client = cluster.client(1)
        for i in range(20):
            client.submit(("INC", "n", 1))
        cluster.run_for(5.0)
        assert client.completed == 20
        cluster.assert_converged()
        assert cluster.replicas[3].database.state["n"] == 20

    def test_partition_merge_through_loss(self):
        cluster = lossy_cluster(loss=0.03, seed=5)
        cluster.start_all(settle=3.0)
        client = cluster.client(2)
        client.submit(("SET", "pre", 1))
        cluster.run_for(2.0)
        cluster.partition([1], [2, 3])
        cluster.run_for(3.0)
        client.submit(("SET", "mid", 2))
        cluster.run_for(2.0)
        cluster.heal()
        cluster.run_for(5.0)
        cluster.assert_converged()
        assert cluster.replicas[1].database.state.get("mid") == 2

    def test_loss_inflates_messages_not_results(self):
        clean = lossy_cluster(loss=0.0, seed=7)
        lossy = lossy_cluster(loss=0.05, seed=7)
        results = {}
        for name, cluster in (("clean", clean), ("lossy", lossy)):
            cluster.start_all(settle=3.0)
            client = cluster.client(1)
            for i in range(10):
                client.submit(("INC", "n", 1))
            cluster.run_for(5.0)
            cluster.assert_converged()
            results[name] = (client.completed,
                             cluster.replicas[2].database.state["n"],
                             cluster.network.datagrams_dropped)
        assert results["clean"][0] == results["lossy"][0] == 10
        assert results["clean"][1] == results["lossy"][1] == 10
        assert results["lossy"][2] > results["clean"][2]


class TestLargerScale:
    def test_seven_replica_lifecycle(self):
        cluster = make_cluster(7, seed=11)
        cluster.start_all(settle=1.5)
        clients = {n: cluster.client(n) for n in range(1, 8)}
        for i in range(3):
            for client in clients.values():
                client.submit(("INC", "total", 1))
        cluster.run_for(1.5)
        assert all(c.completed == 3 for c in clients.values())

        # 4-3 split: the 4-side keeps the primary.
        cluster.partition([1, 2, 3, 4], [5, 6, 7])
        cluster.run_for(2.0)
        assert sorted(cluster.primary_members()) == [1, 2, 3, 4]
        clients[1].submit(("INC", "total", 1))
        cluster.run_for(1.0)

        # Further split of the primary: 3 of the last prim {1,2,3,4}.
        cluster.partition([1, 2, 3], [4, 5, 6, 7])
        cluster.run_for(2.0)
        assert sorted(cluster.primary_members()) == [1, 2, 3]

        cluster.heal()
        cluster.run_for(4.0)
        cluster.assert_converged()
        assert cluster.replicas[7].database.state["total"] == 22
        assert len(cluster.primary_members()) == 7

    def test_seven_replicas_rolling_crashes(self):
        cluster = make_cluster(7, seed=13)
        cluster.start_all(settle=1.5)
        client = cluster.client(1)
        busy = [True]

        def again(_a=None, _p=None, _r=None):
            if busy[0]:
                client.submit(("INC", "n", 1), on_complete=again)
        again()
        for node in (7, 6, 5):           # roll through three crashes
            cluster.crash(node)
            cluster.run_for(1.0)
        assert sorted(cluster.primary_members()) == [1, 2, 3, 4]
        for node in (5, 6, 7):
            cluster.recover(node)
            cluster.run_for(1.5)
        busy[0] = False
        cluster.run_for(3.0)
        cluster.assert_converged()
        assert client.completed > 50
