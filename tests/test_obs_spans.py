"""Span tracking: unit semantics, plus a partition/remerge scenario.

The integration test is the observability layer's end-to-end contract:
run a real cluster through steady state, a partition, and a remerge,
and check that every span the trackers closed is internally consistent
(monotonic timestamps), that membership spans closed on the primary
install, that vulnerable windows are not left dangling, and that the
batched zero-gap green count folds into the histogram exactly.
"""

import pytest

from conftest import make_cluster
from repro.obs import MetricsRegistry, Observability
from repro.obs.spans import SpanTracker


# ----------------------------------------------------------------------
# unit: tracker semantics against a bare registry
# ----------------------------------------------------------------------

def make_tracker():
    registry = MetricsRegistry()
    return registry, SpanTracker(registry, node=1)


class TestSpanTrackerUnit:
    def test_submit_red_green_closes_a_span(self):
        _, tracker = make_tracker()
        tracker.on_submit("a1", 1.0)
        tracker.on_red("a1", 2.0)
        tracker.on_green("a1", 5.0)
        span = tracker.completed[-1]
        assert span.closed
        assert (span.submitted, span.red, span.green) == (1.0, 2.0, 5.0)
        assert span.red_to_green == pytest.approx(3.0)
        assert span.submit_to_green == pytest.approx(4.0)
        assert not tracker.open

    def test_duplicate_submit_and_red_keep_first_timestamp(self):
        _, tracker = make_tracker()
        tracker.on_red("a1", 2.0)
        tracker.on_red("a1", 3.0)
        tracker.on_green("a1", 4.0)
        assert tracker.completed[-1].red == 2.0

    def test_green_without_red_is_zero_gap(self):
        _, tracker = make_tracker()
        tracker.on_green("a1", 7.0)
        span = tracker.completed[-1]
        assert span.red == 7.0
        assert span.red_to_green == 0.0
        assert span.submitted is None
        assert span.submit_to_green is None

    def test_open_property_materializes_both_maps(self):
        _, tracker = make_tracker()
        tracker.on_submit("a1", 1.0)
        tracker.on_red("a1", 2.0)
        tracker.on_red("a2", 3.0)
        spans = tracker.open
        assert spans["a1"].submitted == 1.0 and spans["a1"].red == 2.0
        assert spans["a2"].submitted is None and spans["a2"].red == 3.0
        assert not spans["a1"].closed

    def test_instant_greens_flush_into_zero_bucket(self):
        registry, tracker = make_tracker()
        tracker.on_red("a1", 1.0)
        tracker.on_green("a1", 1.5)     # one observed span
        tracker.instant_greens += 3     # the engine's batched count
        assert tracker.greens_total == 4
        registry.collect()              # collect hook flushes
        assert tracker.instant_greens == 0
        assert tracker.greens_total == 4
        histogram = registry.get_sample(
            "repro_action_red_to_green_seconds", 1)
        assert histogram.count == 4
        assert histogram.counts[0] == 3          # zero-gap bucket
        assert histogram.sum == pytest.approx(0.5)

    def test_latency_percentiles_flush_first(self):
        _, tracker = make_tracker()
        tracker.instant_greens += 10
        p50, p95, p99 = tracker.latency_percentiles("red_to_green")
        assert tracker.instant_greens == 0
        # All mass in the first bucket: quantiles stay sub-bucket.
        assert p99 <= 0.0005

    def test_membership_span_is_idempotent_until_install(self):
        _, tracker = make_tracker()
        tracker.on_membership_start(1.0)
        tracker.on_membership_start(2.0)    # repeated exchange
        assert tracker.membership_open.started == 1.0
        tracker.on_install(4.0)
        assert tracker.membership_open is None
        assert tracker.membership_durations() == [pytest.approx(3.0)]

    def test_install_closes_the_vulnerable_window(self):
        _, tracker = make_tracker()
        tracker.on_membership_start(1.0)
        tracker.open_vulnerable(2.0)
        tracker.open_vulnerable(2.5)        # second vote, same window
        tracker.on_install(3.0)
        assert tracker.vulnerable_open is None
        assert list(tracker.vulnerable_completed) == [(2.0, 3.0)]

    def test_invalidated_attempt_closes_window_without_install(self):
        _, tracker = make_tracker()
        tracker.open_vulnerable(2.0)
        tracker.close_vulnerable(2.4)
        assert tracker.vulnerable_open is None
        assert tracker.membership_open is None


# ----------------------------------------------------------------------
# integration: partition / remerge on a live 5-node cluster
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def partitioned_run():
    """Steady load, a 3/2 partition, more load, heal, settle."""
    obs = Observability()
    cluster = make_cluster(5, seed=11, observability=obs)
    cluster.start_all(settle=1.0)
    for i in range(20):
        cluster.client(1 + i % 5).submit(("SET", f"k{i}", i))
    cluster.run_for(1.0)
    cluster.partition([1, 2, 3], [4, 5])
    cluster.run_for(1.5)
    for i in range(10):
        cluster.client(1 + i % 3).submit(("SET", f"p{i}", i))
    cluster.run_for(1.0)
    cluster.heal()
    cluster.run_for(3.0)
    cluster.assert_converged()
    return cluster, obs


class TestPartitionRemergeSpans:
    def test_every_tracker_saw_every_green(self, partitioned_run):
        cluster, obs = partitioned_run
        totals = {node: obs.trackers[node].greens_total
                  for node in cluster.server_ids}
        assert len(set(totals.values())) == 1, totals
        assert next(iter(totals.values())) >= 30

    def test_completed_spans_have_monotonic_timestamps(self,
                                                       partitioned_run):
        _, obs = partitioned_run
        for tracker in obs.trackers.values():
            assert tracker.completed
            last_green = 0.0
            for span in tracker.completed:
                assert span.closed
                if span.submitted is not None:
                    assert span.submitted <= span.green
                assert span.red is not None
                assert span.red <= span.green
                # Greens close in order at each node.
                assert span.green >= last_green
                last_green = span.green

    def test_membership_spans_closed_on_install(self, partitioned_run):
        cluster, obs = partitioned_run
        for node in cluster.server_ids:
            tracker = obs.trackers[node]
            # Initial install, plus the partition and/or the remerge.
            assert len(tracker.membership_completed) >= 2
            assert tracker.membership_open is None
            for span in tracker.membership_completed:
                assert span.installed is not None
                assert span.installed >= span.started
        # The majority side installed without the minority, then again
        # on the merge: at least one more change than the minority saw.
        majority = len(obs.trackers[1].membership_completed)
        assert majority >= 3

    def test_vulnerable_windows_all_closed(self, partitioned_run):
        cluster, obs = partitioned_run
        for node in cluster.server_ids:
            tracker = obs.trackers[node]
            assert tracker.vulnerable_open is None
            assert tracker.vulnerable_completed
            for opened, closed in tracker.vulnerable_completed:
                assert closed >= opened

    def test_histogram_count_matches_greens_after_collect(
            self, partitioned_run):
        cluster, obs = partitioned_run
        totals = {node: obs.trackers[node].greens_total
                  for node in cluster.server_ids}
        doc = obs.snapshot()                 # collect() flushes trackers
        for node in cluster.server_ids:
            assert obs.trackers[node].instant_greens == 0
            entry = doc["repro_action_red_to_green_seconds"][str(node)]
            assert entry["count"] == totals[node]

    def test_submit_spans_only_at_originators(self, partitioned_run):
        cluster, obs = partitioned_run
        originated = 0
        for tracker in obs.trackers.values():
            originated += sum(1 for span in tracker.completed
                              if span.submitted is not None)
        assert originated == 30              # one span per client submit

    def test_report_percentiles_are_finite_and_ordered(self,
                                                       partitioned_run):
        _, obs = partitioned_run
        for tracker in obs.trackers.values():
            p50, p95, p99 = \
                tracker.latency_percentiles("submit_to_green")
            assert 0.0 <= p50 <= p95 <= p99 < 60.0
