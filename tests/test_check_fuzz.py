"""Fuzzer, shrinker, and the scenario-spec extensions they ride on."""

import pytest

from repro.check.fuzz import (FAST_DISK, FAST_GCS, FuzzCase,
                              classify_failure, generate_schedule,
                              render_spec, run_campaign, run_case,
                              run_schedule)
from repro.check.mutations import BothHalvesQuorum
from repro.check.shrink import shrink
from repro.tools.scenario import ScenarioError, run_scenario

INJECTED = FuzzCase(seed=38, quorum="both-halves")


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        case = FuzzCase(seed=7)
        assert generate_schedule(case) == generate_schedule(case)

    def test_different_seeds_differ(self):
        assert generate_schedule(FuzzCase(seed=1)) != \
            generate_schedule(FuzzCase(seed=2))

    def test_same_schedule_same_verdict(self):
        case = FuzzCase(seed=3)
        schedule = generate_schedule(case)
        first = run_schedule(case, schedule)
        second = run_schedule(case, schedule)
        assert first.failure == second.failure
        assert first.detail == second.detail


class TestRenderSpec:
    def test_spec_embeds_timers_and_quorum(self):
        case = FuzzCase(seed=0)
        spec = render_spec(case, generate_schedule(case))
        assert spec["replicas"] == case.nodes
        assert spec["gcs"] == FAST_GCS
        assert spec["disk"] == FAST_DISK
        assert spec["quorum"] == "dynamic-linear"

    def test_fixed_tail_heals_and_checks(self):
        case = FuzzCase(seed=5)
        ops = render_spec(case, generate_schedule(case))["steps"]
        kinds = [s.get("kind") for s in ops if s["op"] == "check"]
        assert kinds[:4] == ["prefix", "single_primary", "converged",
                             "all_primary"]
        heal_at = max(i for i, s in enumerate(ops) if s["op"] == "heal")
        assert all(s["op"] in ("run", "check")
                   for s in ops[heal_at + 1:])

    def test_crash_without_recover_is_recovered_in_tail(self):
        case = FuzzCase(seed=0, nodes=3)
        schedule = [(0.5, "crash", 2)]
        ops = render_spec(case, schedule)["steps"]
        assert {"op": "recover", "node": 2, "settle": 0.0} in ops

    def test_crashed_submitters_lower_expected_completions(self):
        case = FuzzCase(seed=0, nodes=3)
        schedule = [
            (0.5, "submit", [1, ["SET", "a", 1]]),
            (0.6, "submit", [2, ["SET", "b", 2]]),
            (0.7, "crash", 2),  # node 2's callback dies with it
        ]
        ops = render_spec(case, schedule)["steps"]
        completions = [s for s in ops
                       if s.get("kind") == "completions"]
        assert completions == [{"op": "check", "kind": "completions",
                                "at_least": 1}]


class TestCleanCampaign:
    def test_first_seeds_pass_on_the_real_simulator(self):
        campaign = run_campaign(seeds=3)
        assert campaign.ok, [r.to_dict() for r in campaign.failures]
        assert len(campaign.results) == 3


class TestInjectedBug:
    def test_both_halves_policy_grants_conflicting_quorums(self):
        policy = BothHalvesQuorum()
        assert policy.is_quorum((1, 2), (1, 2, 3, 4), (1, 2, 3, 4))
        assert policy.is_quorum((3, 4), (1, 2, 3, 4), (1, 2, 3, 4))
        assert "bug" in policy.describe()

    def test_fuzzer_finds_the_divergence(self):
        result = run_case(INJECTED)
        assert result.failure == "check:prefix", result.detail

    def test_clean_policy_passes_the_same_schedule(self):
        clean = FuzzCase(seed=38)
        result = run_schedule(clean, generate_schedule(INJECTED))
        assert result.ok, result.detail


class TestShrink:
    @pytest.fixture(scope="class")
    def failing(self):
        return run_case(INJECTED)

    def test_shrink_is_smaller_and_still_failing(self, failing):
        minimized = shrink(failing)
        assert minimized is not None
        assert len(minimized.schedule) < minimized.original_steps
        replay = run_schedule(INJECTED, minimized.schedule)
        assert replay.failure == failing.failure

    def test_shrink_is_byte_deterministic(self, failing):
        first = shrink(failing)
        second = shrink(failing)
        assert first.schedule == second.schedule
        assert first.runs == second.runs
        assert first.spec_json() == second.spec_json()

    def test_emitted_spec_replays_to_the_same_failure(self, failing):
        minimized = shrink(failing)
        with pytest.raises(ScenarioError) as excinfo:
            run_scenario(minimized.spec)
        name, _detail = classify_failure(excinfo.value)
        assert name == failing.failure

    def test_shrink_of_a_passing_run_is_none(self):
        assert shrink(run_case(FuzzCase(seed=0))) is None


class TestScenarioExtensions:
    """The spec keys and check kinds this PR added to tools/scenario."""

    BASE = {
        "replicas": 3, "seed": 1, "settle": 1.0,
        "gcs": dict(FAST_GCS), "disk": dict(FAST_DISK),
    }

    def test_quorum_key_accepts_known_policies(self):
        for name in ("dynamic-linear", "static-majority",
                     "both-halves"):
            spec = dict(self.BASE, quorum=name, steps=[
                {"op": "run", "seconds": 1.0},
                {"op": "check", "kind": "single_primary"},
            ])
            run_scenario(spec)

    def test_unknown_quorum_is_rejected(self):
        spec = dict(self.BASE, quorum="coin-flip", steps=[])
        with pytest.raises(ScenarioError):
            run_scenario(spec)

    def test_all_primary_and_completions_pass_when_settled(self):
        spec = dict(self.BASE, steps=[
            {"op": "run", "seconds": 1.0},
            {"op": "submit", "node": 1, "update": ["SET", "k", 1]},
            {"op": "run", "seconds": 1.0},
            {"op": "check", "kind": "all_primary"},
            {"op": "check", "kind": "completions", "at_least": 1},
        ])
        run_scenario(spec)

    def test_completions_check_fails_when_short(self):
        spec = dict(self.BASE, steps=[
            {"op": "run", "seconds": 1.0},
            {"op": "check", "kind": "completions", "at_least": 1},
        ])
        with pytest.raises(ScenarioError, match="completions"):
            run_scenario(spec)

    def test_all_primary_fails_under_partition(self):
        spec = dict(self.BASE, steps=[
            {"op": "run", "seconds": 1.0},
            {"op": "partition", "groups": [[1, 2], [3]],
             "settle": 1.0},
            {"op": "check", "kind": "all_primary"},
        ])
        with pytest.raises(ScenarioError, match="all_primary"):
            run_scenario(spec)
