"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench import render_chart, throughput_chart
from repro.bench.metrics import RunResult


def test_empty_series():
    assert render_chart({}) == "(no data)"


def test_single_point():
    text = render_chart({"solo": [(1.0, 5.0)]})
    assert "s" in text
    assert "legend: s = solo" in text


def test_markers_and_collisions():
    text = render_chart({
        "alpha": [(0, 0), (10, 10)],
        "beta": [(0, 0), (10, 5)],
    }, width=20, height=8)
    assert "a" in text
    assert "b" in text
    assert "*" in text  # both series share the origin point


def test_dimensions():
    text = render_chart({"x": [(0, 0), (5, 100)]}, width=30, height=10)
    lines = text.splitlines()
    # height rows + axis + ticks + footer lines
    assert len(lines) >= 12
    plot_rows = lines[:10]
    assert all("|" in line for line in plot_rows)


def test_axis_labels_present():
    text = render_chart({"x": [(1, 1), (2, 200)]}, y_label="acts/s",
                        x_label="clients")
    assert "y: acts/s" in text
    assert "x: clients" in text
    assert "200" in text  # max y label on the axis


def test_monotone_series_rises_left_to_right():
    text = render_chart({"up": [(i, i * 10) for i in range(1, 8)]},
                        width=40, height=10)
    rows = [line.split("|", 1)[1] for line in text.splitlines()
            if "|" in line]
    first_marks = [row.find("u") for row in rows if "u" in row]
    # Higher rows (earlier lines) hold the rightmost (larger x) points.
    assert first_marks == sorted(first_marks, reverse=False) or \
        all(m >= 0 for m in first_marks)
    top_row = next(row for row in rows if "u" in row)
    bottom_row = [row for row in rows if "u" in row][-1]
    assert top_row.rindex("u") > bottom_row.index("u")


def test_throughput_chart_from_results():
    series = {
        "engine": [RunResult("engine", c, 1.0, c * 10, c * 10.0,
                             0.01, 0.01, 0.01) for c in (1, 7, 14)],
        "corel": [RunResult("corel", c, 1.0, c * 5, c * 5.0,
                            0.01, 0.01, 0.01) for c in (1, 7, 14)],
    }
    text = throughput_chart(series)
    assert "e = engine" in text
    assert "c = corel" in text
    assert "actions/second" in text
