"""Unit tests for the storage substrate: disk, WAL, stable store."""

import pytest

from repro.sim import Simulator
from repro.storage import (DiskProfile, LogRecord, SimulatedDisk,
                           StableStore, WriteAheadLog)


def make_disk(**profile_overrides):
    sim = Simulator()
    params = dict(forced_write_latency=0.010, async_write_latency=0.001)
    params.update(profile_overrides)
    return sim, SimulatedDisk(sim, 1, DiskProfile(**params))


class TestSimulatedDisk:
    def test_forced_write_takes_sync_latency(self):
        sim, disk = make_disk()
        done = []
        disk.write("a", callback=lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(0.010)]
        assert disk.durable == ["a"]

    def test_group_commit_batches_queued_writes(self):
        sim, disk = make_disk()
        done = []
        for i in range(5):
            disk.write(i, callback=lambda i=i: done.append((i, sim.now)))
        sim.run()
        # First write starts a sync; the other four share the second.
        assert done[0][1] == pytest.approx(0.010)
        assert all(t == pytest.approx(0.020) for _i, t in done[1:])
        assert disk.syncs == 2

    def test_max_batch_one_serializes(self):
        sim, disk = make_disk(max_batch=1)
        done = []
        for i in range(3):
            disk.write(i, callback=lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(0.010), pytest.approx(0.020),
                        pytest.approx(0.030)]
        assert disk.syncs == 3

    def test_async_write_is_volatile(self):
        sim, disk = make_disk()
        done = []
        disk.write("a", callback=lambda: done.append(sim.now),
                   forced=False)
        sim.run()
        assert done == [pytest.approx(0.001)]
        assert disk.volatile == ["a"]
        assert disk.durable == []

    def test_flush_makes_async_durable(self):
        sim, disk = make_disk()
        disk.write("a", forced=False)
        disk.flush()
        sim.run()
        assert disk.durable == ["a"]
        assert disk.volatile == []

    def test_crash_loses_cache_and_pending(self):
        sim, disk = make_disk()
        done = []
        disk.write("durable-before")
        sim.run()
        disk.write("pending", callback=lambda: done.append("pending"))
        disk.write("cached", forced=False)
        disk.crash()
        sim.run()
        assert done == []
        assert disk.recover() == ["durable-before"]

    def test_crash_mid_sync_loses_batch(self):
        sim, disk = make_disk()
        disk.write("x")
        sim.run(until=0.005)
        disk.crash()
        sim.run()
        assert disk.durable == []

    def test_write_after_crash_recovery_works(self):
        sim, disk = make_disk()
        disk.crash()
        done = []
        disk.write("y", callback=lambda: done.append(1))
        sim.run()
        assert done == [1]
        assert disk.durable == ["y"]

    def test_counters(self):
        sim, disk = make_disk()
        disk.write("a")
        disk.write("b", forced=False)
        sim.run()
        assert disk.forced_writes == 1
        assert disk.async_writes == 1
        assert disk.mean_sync_wait > 0


class TestWriteAheadLog:
    def test_append_and_recover_kinds(self):
        sim, disk = make_disk()
        wal = WriteAheadLog(disk)
        wal.append("green", (0, "a"))
        wal.append("ongoing", "b")
        wal.append("green", (1, "c"))
        sim.run()
        assert [r.data for r in wal.recover_kind("green")] == \
            [(0, "a"), (1, "c")]
        assert wal.last_of_kind("green").data == (1, "c")
        assert wal.last_of_kind("missing") is None

    def test_unforced_append_needs_sync(self):
        sim, disk = make_disk()
        wal = WriteAheadLog(disk)
        wal.append("k", 1, forced=False)
        sim.run()
        assert list(wal.recover()) == []
        wal.sync()
        sim.run()
        assert [r.data for r in wal.recover()] == [1]


class TestStableStore:
    def make_store(self):
        sim, disk = make_disk()
        return sim, disk, StableStore(WriteAheadLog(disk))

    def test_put_visible_immediately_durable_after_sync(self):
        sim, disk, store = self.make_store()
        store.put("k", 1)
        assert store.get("k") == 1
        store.crash()
        assert store.recover() == {}
        store.put("k", 2)
        store.sync()
        sim.run()
        store.crash()
        assert store.recover() == {"k": 2}

    def test_latest_value_wins(self):
        sim, disk, store = self.make_store()
        store.put("k", 1)
        store.put("k", 2)
        store.sync()
        sim.run()
        assert store.recover()["k"] == 2

    def test_put_sync_callback(self):
        sim, disk, store = self.make_store()
        done = []
        store.put_sync("k", 5, callback=lambda: done.append(sim.now))
        sim.run()
        assert done and store.get("k") == 5

    def test_deepcopy_isolation(self):
        sim, disk, store = self.make_store()
        value = {"nested": [1, 2]}
        store.put("k", value)
        value["nested"].append(3)
        assert store.get("k") == {"nested": [1, 2]}

    def test_get_default(self):
        _sim, _disk, store = self.make_store()
        assert store.get("missing", "fallback") == "fallback"
