"""Regression tests for protocol bugs found by the soak/property suites.

Each test distills one failure mode to its minimal scenario:

1. availability deadlock: a departed server kept counting toward the
   dynamic-linear-voting majority of the last primary component;
2. stranded in-flight actions: an action multicast into a dying view
   and re-delivered between the exchange and the CPC round was dropped
   at every member, never completing;
3. red-set divergence: a recovered server could reject (FIFO gap) an
   action that other members accepted mid-exchange, installing with a
   different red set.
"""

import pytest

from repro.core import EngineState

from conftest import make_cluster


class TestRemovalAwareQuorum:
    def test_leave_ordered_in_subset_unblocks_quorum(self):
        """Distilled deadlock: {2,3} is primary; 2 leaves and exits;
        3 alone must retain the primary (majority of {2,3} minus the
        removed 2 = majority of {3})."""
        cluster = make_cluster(3)
        cluster.start_all(settle=1.0)
        cluster.partition([1], [2, 3])
        cluster.run_for(1.5)
        assert sorted(cluster.primary_members()) == [2, 3]
        cluster.replicas[2].leave()
        cluster.run_for(2.0)
        assert cluster.replicas[2].engine.exited
        assert cluster.primary_members() == [3]
        client = cluster.client(3)
        client.submit(("SET", "alone", 1))
        cluster.run_for(1.0)
        assert client.completed == 1

    def test_removal_knowledge_spreads_on_merge(self):
        cluster = make_cluster(3)
        cluster.start_all(settle=1.0)
        cluster.partition([1], [2, 3])
        cluster.run_for(1.5)
        cluster.replicas[2].leave()
        cluster.run_for(2.0)
        # Node 1 does not know about the removal yet.
        assert 2 not in cluster.replicas[1].engine.removed_servers
        cluster.heal()
        cluster.run_for(3.0)
        assert 2 in cluster.replicas[1].engine.removed_servers
        assert sorted(cluster.primary_members()) == [1, 3]
        cluster.assert_converged()

    def test_removal_survives_crash_recovery(self):
        cluster = make_cluster(3)
        cluster.start_all(settle=1.0)
        cluster.replicas[3].leave()
        cluster.run_for(2.0)
        cluster.crash(1)
        cluster.run_for(0.5)
        cluster.recover(1)
        cluster.run_for(2.5)
        assert 3 in cluster.replicas[1].engine.removed_servers
        cluster.assert_converged()


class TestInFlightActionsAcrossViewChanges:
    def test_action_submitted_at_view_change_completes(self):
        """Submit exactly at the instant of a partition: whether the
        multicast lands in the dying view, the exchange window, or the
        construct window, the client must eventually complete."""
        for offset in (0.0, 0.002, 0.01, 0.05, 0.12):
            cluster = make_cluster(3, seed=31)
            cluster.start_all(settle=1.0)
            client = cluster.client(2)
            cluster.partition([1], [2, 3])
            cluster.run_for(offset)
            client.submit(("SET", "in-flight", offset))
            cluster.run_for(3.0)
            assert client.completed == 1, f"lost at offset {offset}"
            cluster.heal()
            cluster.run_for(3.0)
            cluster.assert_converged()

    def test_continuous_load_across_repeated_view_changes(self):
        cluster = make_cluster(3, seed=37)
        cluster.start_all(settle=1.0)
        client = cluster.client(1)
        busy = [True]

        def again(_a=None, _p=None, _r=None):
            if busy[0]:
                client.submit(("INC", "n", 1), on_complete=again)
        again()
        for _ in range(4):
            cluster.partition([1, 2], [3])
            cluster.run_for(0.7)
            cluster.heal()
            cluster.run_for(0.7)
        busy[0] = False
        cluster.run_for(3.0)
        cluster.assert_converged()
        # No stranded actions: everything completed got applied, and
        # the pump never stalled for a whole fault cycle.
        assert client.completed > 50
        assert cluster.replicas[3].database.state["n"] >= client.completed


class TestRecoveredNodeFifoGaps:
    def test_recovered_node_accepts_live_traffic_mid_exchange(self):
        """A recovered node's red cut lags the cluster; live actions
        re-delivered during its catch-up exchange must be parked and
        drained, not dropped — else its red set diverges at install."""
        cluster = make_cluster(3, seed=41)
        cluster.start_all(settle=1.0)
        client = cluster.client(1)
        busy = [True]

        def again(_a=None, _p=None, _r=None):
            if busy[0]:
                client.submit(("INC", "n", 1), on_complete=again)
        again()
        cluster.run_for(1.0)
        cluster.crash(3)
        cluster.run_for(1.0)     # cluster moves on without 3
        cluster.recover(3)
        cluster.run_for(3.0)     # catch-up exchange under live load
        busy[0] = False
        cluster.run_for(2.0)
        cluster.assert_converged()
        assert cluster.replicas[3].engine.state is EngineState.REG_PRIM


class TestProcedureDurability:
    def test_recovered_replica_keeps_registered_procedures(self):
        """Regression: a recovered replica's fresh database silently
        no-opped CALL actions because procedure registrations were
        lost — identical actions then produced different states."""
        cluster = make_cluster(3)
        cluster.start_all(settle=1.0)

        def bump(state, _args):
            state["c"] = state.get("c", 0) + 1
            return state["c"]

        for replica in cluster.replicas.values():
            replica.register_procedure("bump", bump)
        cluster.replicas[1].submit(("CALL", "bump", None))
        cluster.run_for(1.5)
        cluster.crash(2)
        cluster.run_for(0.5)
        cluster.recover(2)
        cluster.run_for(2.0)
        cluster.replicas[1].submit(("CALL", "bump", None))
        cluster.run_for(1.5)
        cluster.assert_converged()
        assert cluster.replicas[2].database.state["c"] == 2
