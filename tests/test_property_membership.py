"""Property-based tests of dynamic membership under faults.

Random interleavings of joins, leaves, partitions, and workload must
preserve the dynamic theorems (Section 5.2): total order and FIFO with
joins ("or inherited a database state which incorporated the effect"),
and liveness once the final set stabilizes.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import EngineState

from conftest import make_cluster

BASE = [1, 2, 3]

membership_step = st.one_of(
    st.tuples(st.just("submit"), st.sampled_from(BASE)),
    st.tuples(st.just("join"), st.sampled_from([4, 5])),
    st.tuples(st.just("leave"), st.sampled_from([2, 3])),
    st.tuples(st.just("partition"), st.none()),
    st.tuples(st.just("heal"), st.none()),
)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(st.lists(membership_step, min_size=1, max_size=8))
def test_membership_churn_preserves_theorems(scenario):
    cluster = make_cluster(3)
    cluster.start_all(settle=1.0)
    joined = set()
    left = set()
    counter = [0]

    for kind, arg in scenario:
        if kind == "submit":
            replica = cluster.replicas.get(arg)
            if replica and replica.running and not replica.engine.exited:
                counter[0] += 1
                replica.submit(("APPEND", "log", counter[0]))
            cluster.run_for(0.1)
        elif kind == "join":
            if arg not in cluster.replicas:
                peers = [n for n in BASE
                         if n not in left and
                         cluster.replicas[n].running]
                if peers:
                    cluster.add_replica(arg, peer=peers[0],
                                        peers=peers)
                    joined.add(arg)
                    cluster.run_for(3.0)
        elif kind == "leave":
            # Keep at least two of the base replicas around.
            if arg not in left and len(left) < 1:
                replica = cluster.replicas[arg]
                if replica.running and not replica.engine.exited:
                    replica.leave()
                    left.add(arg)
                    cluster.run_for(1.5)
        elif kind == "partition":
            alive = [n for n, r in cluster.replicas.items()
                     if cluster.topology.is_alive(n)]
            if len(alive) >= 2:
                cluster.partition(alive[:1], alive[1:])
                cluster.run_for(0.5)
        elif kind == "heal":
            cluster.heal()
            cluster.run_for(0.5)
        cluster.assert_prefix_consistent()
        cluster.assert_single_primary()

    cluster.heal()
    cluster.run_for(6.0)
    cluster.assert_prefix_consistent()
    running = cluster.running_replicas()
    # Liveness: whoever remains converges to one green sequence.
    counts = {r.node: r.database.applied_count for r in running}
    assert len(set(counts.values())) == 1, counts
    # FIFO per creator holds at every survivor, allowing for inherited
    # prefixes (a joiner's log starts where its snapshot ended).
    for replica in running:
        per_creator = {}
        for action_id in replica.database.applied_log:
            creator = action_id.server_id
            if creator in per_creator:
                assert action_id.index == per_creator[creator] + 1
            per_creator[creator] = action_id.index
