"""The model-sync analyzer: derivation proven, edge copies flagged."""

from pathlib import Path

from repro.analysis import ModelSyncChecker, model_modules, run_analyzers
from repro.analysis.model_sync import RULE_DERIVATION, RULE_EDGE_COPY

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"
FIXTURE_MODEL = FIXTURES / "repro" / "check" / "model.py"
REAL_SRC = Path(__file__).parent.parent / "src" / "repro"
REAL_MODEL = REAL_SRC / "check" / "model.py"


def rules_for(path):
    return [(f.rule, f.line)
            for f in ModelSyncChecker().check_paths([path])]


class TestDiscovery:
    def test_finds_the_real_model_module(self):
        assert model_modules(REAL_SRC) == [REAL_MODEL]

    def test_finds_the_fixture_model_module(self):
        assert model_modules(FIXTURES) == [FIXTURE_MODEL]

    def test_a_file_root_outside_check_is_ignored(self):
        engine = REAL_SRC / "core" / "engine.py"
        assert model_modules(engine) == []

    def test_a_model_file_root_is_accepted(self):
        assert model_modules(REAL_MODEL) == [REAL_MODEL]


class TestFixtureFindings:
    def test_missing_derivation_import_is_flagged(self):
        rules = [r for r, _line in rules_for(FIXTURE_MODEL)]
        assert RULE_DERIVATION in rules

    def test_edge_table_literals_are_flagged(self):
        findings = rules_for(FIXTURE_MODEL)
        copies = [line for rule, line in findings
                  if rule == RULE_EDGE_COPY]
        # Both the frozenset-of-pairs and the dict-shaped copy.
        assert len(copies) == 2

    def test_membership_tuples_are_not_flagged(self):
        source = FIXTURE_MODEL.read_text(encoding="utf-8")
        quiet_line = next(
            i for i, text in enumerate(source.splitlines(), start=1)
            if text.startswith("QUIET_STATES"))
        flagged = {line for _rule, line in rules_for(FIXTURE_MODEL)}
        assert quiet_line not in flagged


class TestRealModelIsClean:
    def test_no_findings_on_the_shipped_model(self):
        assert rules_for(REAL_MODEL) == []

    def test_suite_integration_stays_clean(self):
        findings = [f for f in run_analyzers([REAL_SRC])
                    if f.analyzer == "model-sync" and not f.suppressed]
        assert findings == []

    def test_suite_integration_reports_the_fixture(self):
        findings = [f for f in run_analyzers([FIXTURES])
                    if f.analyzer == "model-sync"]
        assert {f.rule for f in findings} == {RULE_DERIVATION,
                                              RULE_EDGE_COPY}
