#!/usr/bin/env python
"""A partition-tolerant inventory with commutative updates (Section 6).

Two warehouses keep selling during a network split because stock
increments/decrements commute: "consider an inventory model (where
temporary negative stock is allowed); all operations on the stock
would be commutative."  One-copy serializability is relaxed during the
partition; after the merge the stock converges to the true total.

Also demonstrates an *interactive transaction* (read + certify-write)
used for a non-commutative operation — reserving the last item —
which correctly aborts everywhere when the read set changed.

Run:  python examples/inventory_store.py
"""

from repro.core import ReplicaCluster
from repro.semantics import (InteractiveTransaction, InventoryStore,
                             QueryService, ReplicatedService)


def banner(text):
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)))


def main():
    cluster = ReplicaCluster(n=4, seed=11)
    cluster.start_all()
    services = {n: ReplicatedService(r)
                for n, r in cluster.replicas.items()}
    shops = {n: InventoryStore(services[n]) for n in services}

    banner("stock up while connected")
    shops[1].add_stock("widget", 100)
    cluster.run_for(1.0)
    print(f"widget stock at every replica: "
          f"{shops[3].stock('widget', QueryService.WEAK)}")

    banner("partition: two warehouses keep selling independently")
    cluster.partition([1, 2], [3, 4])
    cluster.run_for(2.0)
    shops[1].take_stock("widget", 30)   # east warehouse (non-primary!)
    shops[3].take_stock("widget", 45)   # west warehouse
    cluster.run_for(1.0)
    print(f"east's dirty view:  {shops[1].stock('widget')}  "
          "(its own sales only)")
    print(f"west's view:        {shops[3].stock('widget')}")

    banner("merge: commutative sales reconcile to the true stock")
    cluster.heal()
    cluster.run_for(3.0)
    cluster.assert_converged()
    print(f"converged stock everywhere: "
          f"{shops[2].stock('widget', QueryService.WEAK)} "
          "(100 - 30 - 45)")

    banner("interactive transaction: reserving the last crate")
    shops[1].add_stock("rare-crate", 1)
    cluster.run_for(1.0)

    # Two buyers read "1 available" concurrently, then both try to buy.
    buyer_a = InteractiveTransaction(services[2])
    buyer_b = InteractiveTransaction(services[4])
    a_sees = buyer_a.read("inv:rare-crate")
    b_sees = buyer_b.read("inv:rare-crate")
    print(f"buyer A reads {a_sees}; buyer B reads {b_sees}")

    outcomes = {}
    buyer_a.commit({"inv:rare-crate": 0, "crate-owner": "A"},
                   on_done=lambda ok: outcomes.__setitem__("A", ok))
    buyer_b.commit({"inv:rare-crate": 0, "crate-owner": "B"},
                   on_done=lambda ok: outcomes.__setitem__("B", ok))
    cluster.run_for(1.0)
    print(f"outcomes: {outcomes} — exactly one buyer won")
    owner = cluster.replicas[1].database.state["crate-owner"]
    print(f"every replica agrees the crate belongs to {owner!r}")
    assert list(outcomes.values()).count(True) == 1
    cluster.assert_converged()


if __name__ == "__main__":
    main()
