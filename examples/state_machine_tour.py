#!/usr/bin/env python
"""Watch the replication state machine work (Figure 4, live).

Runs a traced cluster through a partition and a merge, then renders
the per-replica state timeline — RegPrim, the exchange states, and the
primary re-installation are all visible — plus how long each replica
spent in each state.

Run:  python examples/state_machine_tour.py
"""

from repro.core import ReplicaCluster
from repro.tools import render_timeline, summarize_time_in_state


def main():
    cluster = ReplicaCluster(n=3, seed=21, trace=True)
    cluster.start_all()
    client = cluster.client(1)
    for i in range(3):
        client.submit(("INC", "work", 1))
    cluster.run_for(1.0)

    print("=== a partition hits: {1} vs {2,3} ===")
    cluster.partition([1], [2, 3])
    cluster.run_for(2.0)
    client2 = cluster.client(2)
    client2.submit(("INC", "work", 1))
    cluster.run_for(1.0)

    print("=== the network heals ===")
    cluster.heal()
    cluster.run_for(2.0)
    cluster.assert_converged()

    print("\nPer-replica state timeline "
          "(every line = one state change):\n")
    print(render_timeline(cluster.tracer))

    print("\nTime in each state (replica 1):")
    totals = summarize_time_in_state(cluster.tracer, 1,
                                     until=cluster.sim.now)
    for state, seconds in sorted(totals.items(),
                                 key=lambda kv: -kv[1]):
        bar = "#" * max(1, int(40 * seconds / cluster.sim.now))
        print(f"  {state:>16}  {seconds:7.3f}s  {bar}")

    print(f"\nfinal database: {cluster.replicas[3].database.state}")
    print("note how the exchange states occupy milliseconds — the "
          "paper's point: end-to-end coordination happens only at "
          "membership changes.")


if __name__ == "__main__":
    main()
