#!/usr/bin/env python
"""Quickstart: a replicated database in one file.

Builds a 5-replica simulated cluster, forms a primary component,
commits globally ordered actions, survives a partition (the minority
buffers red actions; the majority keeps serving), and converges after
the merge — the whole lifecycle of Amir & Tutu's replication engine.

Run:  python examples/quickstart.py
"""

from repro.core import ReplicaCluster


def banner(text):
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)))


def show(cluster, label):
    print(f"{label:>28}: states={cluster.states()}")
    greens = {n: r.green_count for n, r in cluster.replicas.items()
              if r.running}
    print(f"{'green actions':>28}: {greens}")


def main():
    banner("1. build and start a 5-replica cluster")
    cluster = ReplicaCluster(n=5, seed=42)
    cluster.start_all()          # runs the simulation until views settle
    show(cluster, "after start")

    banner("2. submit actions from two different replicas")
    alice = cluster.client(1, name="alice")
    bob = cluster.client(4, name="bob")
    for i in range(3):
        alice.submit(("SET", f"alice-key-{i}", i))
        bob.submit(("INC", "counter", 10))
    cluster.run_for(1.0)
    print(f"alice completed {alice.completed} actions, "
          f"mean latency {alice.mean_latency * 1e3:.1f} ms")
    print(f"database at replica 3: {cluster.replicas[3].database.state}")
    cluster.assert_converged()
    print("all five replicas hold identical databases")

    banner("3. partition: {1,2} (minority) vs {3,4,5} (majority)")
    cluster.partition([1, 2], [3, 4, 5])
    cluster.run_for(2.0)
    show(cluster, "during partition")
    bob.submit(("SET", "served-by", "majority"))     # commits
    carol = cluster.client(1, name="carol")
    carol.submit(("SET", "buffered-by", "minority"))  # stays red
    cluster.run_for(1.0)
    print(f"bob's action completed: {bob.completed == 4}")
    print(f"carol's action completed: {carol.completed == 1} "
          "(red: order unknown in a non-primary component)")

    banner("4. merge: the exchange protocol reconciles everything")
    cluster.heal()
    cluster.run_for(3.0)
    show(cluster, "after merge")
    print(f"carol's action now completed: {carol.completed == 1}")
    cluster.assert_converged()
    print(f"final database: {cluster.replicas[2].database.state}")
    print("\nGlobal Total Order, FIFO order and Liveness held throughout.")


if __name__ == "__main__":
    main()
