#!/usr/bin/env python
"""Location tracking with timestamp (last-writer-wins) semantics.

Section 6's motivating example for timestamp updates: trackers report
positions from wherever they are — including from replicas cut off
from the primary component — and every reader wants only the *newest*
fix.  Updates need no global order; after a merge the databases
converge on the highest timestamp, and dirty queries serve the latest
locally known position with no waiting.

Run:  python examples/location_tracking.py
"""

from repro.core import ReplicaCluster
from repro.semantics import (QueryService, ReplicatedService,
                             TimestampStore)


def banner(text):
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)))


def main():
    cluster = ReplicaCluster(n=4, seed=3)
    cluster.start_all()
    services = {n: ReplicatedService(r)
                for n, r in cluster.replicas.items()}
    trackers = {n: TimestampStore(services[n]) for n in services}

    banner("normal operation: fixes flow through the primary")
    trackers[1].set("truck-17", ("39.29N", "76.61W"), timestamp=100.0)
    cluster.run_for(1.0)
    print(f"replica 3 sees truck-17 at "
          f"{trackers[3].get('truck-17', QueryService.WEAK)}")

    banner("the network partitions: {1} alone vs {2,3,4}")
    cluster.partition([1], [2, 3, 4])
    cluster.run_for(2.0)

    # The isolated field gateway (replica 1) keeps receiving fixes.
    trackers[1].set("truck-17", ("39.10N", "76.80W"), timestamp=200.0)
    # Meanwhile HQ gets an older, delayed report through the majority.
    trackers[2].set("truck-17", ("39.25N", "76.65W"), timestamp=150.0)
    cluster.run_for(1.0)

    print("during the partition:")
    print(f"  isolated replica 1 (dirty read, latest local fix): "
          f"{trackers[1].get('truck-17')}")  # DIRTY by default
    print(f"  majority replica 3: {trackers[3].get('truck-17')}")
    print("  (each side answers immediately from its best knowledge)")

    banner("the partition heals: newest timestamp wins everywhere")
    cluster.heal()
    cluster.run_for(3.0)
    cluster.assert_converged()
    for n in (1, 2, 3, 4):
        position, stamp = trackers[n].get_with_timestamp(
            "truck-17", QueryService.WEAK)
        print(f"  replica {n}: {position} @ t={stamp}")
    assert all(trackers[n].get("truck-17", QueryService.WEAK)
               == ("39.10N", "76.80W") for n in (1, 2, 3, 4))
    print("\nthe t=200 fix from the minority beat the t=150 fix that")
    print("was globally ordered *after* it — order-insensitive LWW.")


if __name__ == "__main__":
    main()
