#!/usr/bin/env python
"""Dynamic replica instantiation and deactivation (Section 5.1/5.2).

A running 3-replica system grows online: a new replica announces
itself through a representative, is ordered into the global history
via a PERSISTENT_JOIN action, receives a database transfer, and joins
the group — all while clients keep committing.  Later a replica leaves
permanently with a PERSISTENT_LEAVE, and a crashed replica is removed
administratively, shrinking the quorum requirements.

Run:  python examples/dynamic_membership.py
"""

from repro.core import ReplicaCluster


def banner(text):
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)))


def main():
    cluster = ReplicaCluster(n=3, seed=7)
    cluster.start_all()

    banner("seed some data")
    client = cluster.client(1)
    for i in range(5):
        client.submit(("SET", f"item-{i}", f"value-{i}"))
    cluster.run_for(1.0)
    print(f"committed {client.completed} actions on replicas "
          f"{cluster.replicas[1].engine.queue.servers}")

    banner("replica 4 joins through representative 2, under load")
    pumping = {"count": 0}

    def pump(*_args):
        if pumping["count"] < 20:
            pumping["count"] += 1
            client.submit(("INC", "load", 1), on_complete=pump)

    pump()
    cluster.add_replica(4, peer=2)
    cluster.run_for(6.0)
    replica4 = cluster.replicas[4]
    print(f"replica 4 state: {replica4.engine.state}")
    print(f"replica 4 inherited item-0 = "
          f"{replica4.database.state['item-0']}")
    print(f"replica 4 saw the live load too: load = "
          f"{replica4.database.state['load']}")
    cluster.assert_converged()
    print(f"server sets everywhere: "
          f"{ {n: r.engine.queue.servers for n, r in cluster.replicas.items()} }")

    banner("the new replica serves clients immediately")
    newbie = cluster.client(4)
    newbie.submit(("SET", "from-the-new-replica", True))
    cluster.run_for(1.0)
    print(f"completed: {newbie.completed == 1}")

    banner("replica 1 leaves permanently (PERSISTENT_LEAVE)")
    cluster.replicas[1].leave()
    cluster.run_for(2.0)
    print(f"replica 1 exited: {cluster.replicas[1].engine.exited}")
    print(f"remaining servers: "
          f"{cluster.replicas[2].engine.queue.servers}")

    banner("replica 3 dies for good; replica 2 removes it")
    cluster.crash(3)
    cluster.run_for(1.0)
    cluster.replicas[2].remove_dead_replica(3)
    cluster.run_for(2.0)
    print(f"servers after administrative removal: "
          f"{cluster.replicas[2].engine.queue.servers}")
    print(f"primary members: {sorted(cluster.primary_members())} "
          "(quorum shrank with the membership)")

    survivor = cluster.client(2)
    survivor.submit(("SET", "the-system", "lives on"))
    cluster.run_for(1.0)
    print(f"post-removal commit works: {survivor.completed == 1}")


if __name__ == "__main__":
    main()
