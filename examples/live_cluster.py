#!/usr/bin/env python
"""A real three-process replicated database over UDP.

Everything else in ``examples/`` runs on the discrete-event simulator.
This one runs the *identical protocol stack* — engine, GCS daemon,
storage — on wall-clock time: three OS processes, one replica each,
talking over loopback UDP sockets.  The cluster forms a primary
component, commits actions, survives a network partition (injected as
a software filter on every process, on a shared wall-clock schedule),
and converges to the same green action order on all three nodes after
the merge.

Run:  python examples/live_cluster.py            # three processes, UDP
      python examples/live_cluster.py --in-process   # one process
      python examples/live_cluster.py --metrics-port 9100   # + /metrics
      python examples/live_cluster.py --wire-batch 16   # coalesced wire
      python examples/live_cluster.py --shards 2     # shard fabric, 2 groups
      python examples/live_cluster.py --trace-out traces/   # flight dumps

The multi-process mode binds all UDP sockets in the parent and forks,
so children never race for ports.  Exit code 0 means every node
reported the same green order and database digest.

``--shards N`` runs a live shard fabric instead: N independent
replication groups (global node ids ``shard*100 + 1..3``) share one
UDP loopback namespace, each group runs the full partition/merge
script, and the verdict checks convergence *per shard*.  Multi-process
mode forks ``3 × N`` processes, one per replica; in-process mode
additionally commits a cross-shard transaction through the 2PC-style
coordinator and verifies both fragments applied.

``--metrics-port`` additionally serves each hosting process's metrics
registry over HTTP (``/metrics`` Prometheus text, ``/status`` JSON) —
port 0 binds OS-assigned ports.  Before reporting, every node scrapes
its own endpoint and structurally lints the exposition text, so a run
with metrics enabled also validates the export path end to end.
"""

import argparse
import asyncio
import multiprocessing
import os
import socket
import sys

SERVER_IDS = [1, 2, 3]
MAJORITY = [1, 2]
MINORITY = [3]

# Wall-clock script, seconds after the shared start barrier.  Generous
# spacing so loaded CI machines still fit every phase.
T_PARTITION = 3.0
T_HEAL = 6.0
T_DEADLINE = 25.0


def banner(text):
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)), flush=True)


def cluster_settings(wire_batch):
    """Live-tuned GCS settings, with wire batching when requested."""
    if wire_batch is None or wire_batch <= 1:
        return None       # cluster default: unbatched datapath
    from repro.net import WireBatchConfig
    from repro.runtime import live_gcs_settings
    return live_gcs_settings(wire=WireBatchConfig(max_batch=wire_batch))


def tracing_obs(trace_out):
    """An Observability bundle with the flight recorder on when
    ``--trace-out`` was given (None otherwise: cluster default)."""
    if trace_out is None:
        return None
    from repro.obs import Observability
    return Observability(flight=True, staleness=True)


def dump_traces(obs, trace_out, label):
    """Write the per-node flight rings to ``trace_out`` (merge the
    JSONL files afterwards with ``repro-trace``)."""
    if obs is None:
        return
    from repro.tools.tracecli import dump_flight
    paths = dump_flight(obs, trace_out)
    print(f"{label}: wrote {len(paths)} flight dumps to {trace_out}",
          flush=True)


async def scrape_own_metrics(cluster, label):
    """Self-scrape the cluster's HTTP endpoint and lint the exposition
    text; raises if the scrape would not ingest cleanly."""
    from repro.obs import fetch_http, lint_prometheus

    server = cluster._metrics_server
    text = await fetch_http("127.0.0.1", server.port, "/metrics")
    problems = lint_prometheus(text)
    if problems:
        raise AssertionError(f"{label}: /metrics lint: {problems[:3]}")
    if "repro_engine_green_actions_total" not in text:
        raise AssertionError(f"{label}: /metrics missing engine counters")
    await fetch_http("127.0.0.1", server.port, "/status")
    print(f"{label}: scraped :{server.port}/metrics "
          f"({len(text.splitlines())} lines, lint clean)", flush=True)


async def drive_node(node, addresses, sockets, start_at, results,
                     metrics_port=None, wire_batch=None, trace_out=None):
    """One node's life: boot, serve, partition, merge, report."""
    from repro.core.state_machine import EngineState
    from repro.runtime import udp_cluster

    obs = tracing_obs(trace_out)
    cluster = udp_cluster(SERVER_IDS, hosted=[node],
                          addresses=addresses, sockets=sockets,
                          gcs_settings=cluster_settings(wire_batch),
                          observability=obs)
    if metrics_port is not None:
        # One endpoint per process; a fixed base port spreads out as
        # base+node-1, port 0 stays OS-assigned everywhere.
        port = 0 if metrics_port == 0 else metrics_port + node - 1
        server = await cluster.serve_metrics(port=port)
        print(f"node {node}: metrics on 127.0.0.1:{server.port}",
              flush=True)
    loop = asyncio.get_event_loop()

    # Shared start barrier: all processes begin their scripts at the
    # same wall-clock instant, so the partition windows line up.
    await asyncio.sleep(max(0.0, start_at - loop.time()))
    origin = loop.time()
    cluster.start_all()

    def submit_batch(tag, count):
        for i in range(count):
            cluster.submit(node, ("SET", f"{tag}-{node}-{i}", i))

    await cluster.wait_all_engine_state(EngineState.REG_PRIM, timeout=10)
    submit_batch("pre", 2)

    await asyncio.sleep(max(0.0, origin + T_PARTITION - loop.time()))
    cluster.partition(MAJORITY, MINORITY)
    # Both sides keep accepting actions: the majority commits (green),
    # the minority only buffers (red) until the merge.
    submit_batch("split", 2)

    await asyncio.sleep(max(0.0, origin + T_HEAL - loop.time()))
    cluster.heal()

    # Converge: all 3 nodes x (2 pre + 2 split) actions green everywhere.
    await cluster.wait_green(12, timeout=origin + T_DEADLINE - loop.time())
    if metrics_port is not None:
        await scrape_own_metrics(cluster, f"node {node}")
    order = [tuple(a) for a in cluster.green_order(node)]
    digest = cluster.replicas[node].database.digest()
    results.put((node, order, digest))
    dump_traces(obs, trace_out, f"node {node}")
    cluster.shutdown()


def node_process(node, addresses, sockets, start_at, results,
                 metrics_port=None, wire_batch=None, trace_out=None):
    try:
        asyncio.run(drive_node(node, addresses, sockets, start_at, results,
                               metrics_port, wire_batch, trace_out))
    except Exception as failure:  # pragma: no cover - report, don't hang
        results.put((node, "ERROR", repr(failure)))
        raise


def run_multiprocess(metrics_port=None, wire_batch=None, trace_out=None):
    banner("three processes, UDP loopback"
           + (f", wire batching x{wire_batch}"
              if wire_batch and wire_batch > 1 else ""))
    # Parent binds every socket, children inherit them: no port races,
    # and the address map is exact before any process starts.
    sockets = {}
    addresses = {}
    for node in SERVER_IDS:
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.bind(("127.0.0.1", 0))
        sockets[node] = sock
        addresses[node] = sock.getsockname()
    print(f"addresses: {addresses}", flush=True)

    import time
    ctx = multiprocessing.get_context("fork")
    results = ctx.Queue()
    start_at = time.monotonic() + 0.5
    workers = []
    for node in SERVER_IDS:
        proc = ctx.Process(
            target=node_process, name=f"replica-{node}",
            args=(node, addresses, {node: sockets[node]}, start_at,
                  results, metrics_port, wire_batch, trace_out))
        proc.start()
        workers.append(proc)
    for sock in sockets.values():
        sock.close()     # children hold their own copies

    reports = {}
    for _ in SERVER_IDS:
        node, order, digest = results.get(timeout=T_DEADLINE + 10)
        reports[node] = (order, digest)
        print(f"node {node}: {len(order) if order != 'ERROR' else order} "
              f"green actions, digest {str(digest)[:12]}", flush=True)
    for proc in workers:
        proc.join(timeout=10)
        if proc.is_alive():  # pragma: no cover - watchdog
            proc.terminate()
    return reports


async def drive_shard_node(node, server_ids, addresses, sockets, start_at,
                           results, wire_batch=None, trace_out=None):
    """One sharded node's life: same script as :func:`drive_node`, but
    against its own shard's replication group (global node ids)."""
    from repro.core.state_machine import EngineState
    from repro.runtime import udp_cluster
    from repro.shard.router import shard_of

    shard = shard_of(node)
    obs = tracing_obs(trace_out)
    cluster = udp_cluster(server_ids, hosted=[node],
                          addresses=addresses, sockets=sockets,
                          gcs_settings=cluster_settings(wire_batch),
                          shard=shard, observability=obs)
    loop = asyncio.get_event_loop()
    await asyncio.sleep(max(0.0, start_at - loop.time()))
    origin = loop.time()
    cluster.start_all()

    def submit_batch(tag, count):
        for i in range(count):
            cluster.submit(node, ("SET", f"{tag}-{node}-{i}", i))

    await cluster.wait_all_engine_state(EngineState.REG_PRIM, timeout=10)
    submit_batch("pre", 2)

    await asyncio.sleep(max(0.0, origin + T_PARTITION - loop.time()))
    cluster.partition(server_ids[:2], server_ids[2:])
    submit_batch("split", 2)

    await asyncio.sleep(max(0.0, origin + T_HEAL - loop.time()))
    cluster.heal()

    await cluster.wait_green(12, timeout=origin + T_DEADLINE - loop.time())
    order = [tuple(a) for a in cluster.green_order(node)]
    digest = cluster.replicas[node].database.digest()
    results.put((node, order, digest))
    dump_traces(obs, trace_out, f"node {node}")
    cluster.shutdown()


def shard_node_process(node, server_ids, addresses, sockets, start_at,
                       results, wire_batch=None, trace_out=None):
    try:
        asyncio.run(drive_shard_node(node, server_ids, addresses, sockets,
                                     start_at, results, wire_batch,
                                     trace_out))
    except Exception as failure:  # pragma: no cover - report, don't hang
        results.put((node, "ERROR", repr(failure)))
        raise


def run_shard_multiprocess(shards, wire_batch=None, trace_out=None):
    from repro.shard.router import shard_server_ids
    banner(f"{shards} shards x three processes, UDP loopback"
           + (f", wire batching x{wire_batch}"
              if wire_batch and wire_batch > 1 else ""))
    groups = {shard: shard_server_ids(shard, 3)
              for shard in range(shards)}
    all_nodes = [node for ids in groups.values() for node in ids]
    sockets = {}
    addresses = {}
    for node in all_nodes:
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.bind(("127.0.0.1", 0))
        sockets[node] = sock
        addresses[node] = sock.getsockname()
    print(f"addresses: {addresses}", flush=True)

    import time
    ctx = multiprocessing.get_context("fork")
    results = ctx.Queue()
    start_at = time.monotonic() + 0.5
    workers = []
    for shard, server_ids in groups.items():
        shard_addresses = {n: addresses[n] for n in server_ids}
        for node in server_ids:
            proc = ctx.Process(
                target=shard_node_process, name=f"replica-{node}",
                args=(node, server_ids, shard_addresses,
                      {node: sockets[node]}, start_at, results,
                      wire_batch, trace_out))
            proc.start()
            workers.append(proc)
    for sock in sockets.values():
        sock.close()     # children hold their own copies

    reports = {}
    for _ in all_nodes:
        node, order, digest = results.get(timeout=T_DEADLINE + 10)
        reports[node] = (order, digest)
        print(f"node {node}: {len(order) if order != 'ERROR' else order} "
              f"green actions, digest {str(digest)[:12]}", flush=True)
    for proc in workers:
        proc.join(timeout=10)
        if proc.is_alive():  # pragma: no cover - watchdog
            proc.terminate()
    return reports


def run_shard_in_process(shards, wire_batch=None, trace_out=None):
    banner(f"{shards} shards, one process, in-memory transport"
           + (f", wire batching x{wire_batch}"
              if wire_batch and wire_batch > 1 else ""))

    async def main():
        from repro.shard import LiveShardFabric
        obs = tracing_obs(trace_out)
        fabric = LiveShardFabric(
            shards, 3, gcs_settings=cluster_settings(wire_batch),
            observability=obs)
        fabric.start_all()
        await fabric.wait_all_primary(timeout=10)

        # Shard-local load, routed to each group directly.
        for shard in range(shards):
            for i in range(4):
                fabric.submit_local(shard, ("SET", f"s{shard}-k{i}", i))
        greens = {shard: 4 for shard in range(shards)}

        # One cross-shard transaction through the coordinator: its
        # prepare/decide/finish records are green actions too (3 at the
        # decider shard, 2 at the other participant).
        outcomes = {}
        if shards > 1:
            key_for = {}
            i = 0
            while 0 not in key_for or 1 not in key_for:
                key_for.setdefault(
                    fabric.router.shard_for_key(f"xk{i}"), f"xk{i}")
                i += 1
            fabric.submit([("SET", key_for[0], "x0"),
                           ("SET", key_for[1], "x1")],
                          lambda txn, outcome:
                          outcomes.__setitem__(txn, outcome))
            greens[0] += 3
            greens[1] += 2
        for shard, count in greens.items():
            await fabric.wait_green(shard, count, timeout=15)
        await fabric.wait_no_inflight(timeout=10)

        reports = {}
        for shard in range(shards):
            cluster = fabric.clusters[shard]
            for node in cluster.replicas:
                reports[node] = (
                    [tuple(a) for a in cluster.green_order(node)],
                    cluster.replicas[node].database.digest())
        if shards > 1:
            if list(outcomes.values()) != ["commit"]:
                raise AssertionError(
                    f"cross-shard txn outcome: {outcomes}")
            db = fabric.sharded_database()
            applied = (db.get(key_for[0]), db.get(key_for[1]))
            if applied != ("x0", "x1"):
                raise AssertionError(
                    f"cross-shard fragments not applied: {applied}")
            print(f"cross-shard txn committed atomically: "
                  f"{key_for[0]}={applied[0]!r} (shard 0), "
                  f"{key_for[1]}={applied[1]!r} (shard 1)", flush=True)
        dump_traces(obs, trace_out, "fabric")
        fabric.shutdown()
        return reports

    return asyncio.run(main())


def run_in_process(metrics_port=None, wire_batch=None, trace_out=None):
    banner("single process, in-memory transport"
           + (f", wire batching x{wire_batch}"
              if wire_batch and wire_batch > 1 else ""))

    async def main():
        from repro.core.state_machine import EngineState
        from repro.runtime import LiveCluster
        obs = tracing_obs(trace_out)
        cluster = LiveCluster(SERVER_IDS,
                              gcs_settings=cluster_settings(wire_batch),
                              observability=obs)
        if metrics_port is not None:
            server = await cluster.serve_metrics(port=metrics_port)
            print(f"metrics on 127.0.0.1:{server.port}", flush=True)
        cluster.start_all()
        await cluster.wait_all_engine_state(EngineState.REG_PRIM, timeout=10)
        for node in SERVER_IDS:
            for i in range(2):
                cluster.submit(node, ("SET", f"pre-{node}-{i}", i))
        await cluster.wait_green(6, timeout=10)

        cluster.partition(MAJORITY, MINORITY)
        await cluster.wait_all_engine_state(EngineState.REG_PRIM,
                                            timeout=10, nodes=MAJORITY)
        await cluster.wait_all_engine_state(EngineState.NON_PRIM,
                                            timeout=10, nodes=MINORITY)
        for node in SERVER_IDS:
            for i in range(2):
                cluster.submit(node, ("SET", f"split-{node}-{i}", i))
        cluster.heal()
        await cluster.wait_green(12, timeout=15)
        if metrics_port is not None:
            await scrape_own_metrics(cluster, "cluster")
        reports = {node: ([tuple(a) for a in cluster.green_order(node)],
                          cluster.replicas[node].database.digest())
                   for node in SERVER_IDS}
        dump_traces(obs, trace_out, "cluster")
        cluster.shutdown()
        return reports

    return asyncio.run(main())


def check(reports):
    banner("verdict")
    orders = {node: report[0] for node, report in reports.items()}
    digests = {node: report[1] for node, report in reports.items()}
    if any(order == "ERROR" for order in orders.values()):
        print(f"FAIL: node error: {reports}")
        return 1
    reference = orders[SERVER_IDS[0]]
    if any(orders[n] != reference for n in SERVER_IDS[1:]):
        print(f"FAIL: green orders diverge: {orders}")
        return 1
    if len(set(digests.values())) != 1:
        print(f"FAIL: database digests diverge: {digests}")
        return 1
    print(f"OK: {len(reference)} green actions, identical order and "
          f"database digest on all {len(SERVER_IDS)} nodes")
    print(f"green order: {reference}")
    return 0


def check_sharded(reports, shards):
    from repro.shard.router import shard_of
    banner("verdict (per shard)")
    if any(order == "ERROR" for order, _ in reports.values()):
        print(f"FAIL: node error: {reports}")
        return 1
    by_shard = {}
    for node, (order, digest) in reports.items():
        by_shard.setdefault(shard_of(node), {})[node] = (order, digest)
    total = 0
    for shard in range(shards):
        nodes = sorted(by_shard.get(shard, {}))
        if not nodes:
            print(f"FAIL: shard {shard} reported nothing")
            return 1
        orders = {n: by_shard[shard][n][0] for n in nodes}
        digests = {n: by_shard[shard][n][1] for n in nodes}
        reference = orders[nodes[0]]
        if any(orders[n] != reference for n in nodes[1:]):
            print(f"FAIL: shard {shard} green orders diverge: {orders}")
            return 1
        if len(set(digests.values())) != 1:
            print(f"FAIL: shard {shard} digests diverge: {digests}")
            return 1
        total += len(reference)
        print(f"shard {shard}: {len(reference)} green actions, "
              f"identical order and digest on nodes {nodes}")
    print(f"OK: {total} green actions across {shards} shards, each "
          f"shard internally convergent")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--in-process", action="store_true",
                        help="run all replicas on one event loop with the "
                             "in-memory transport (no sockets, no forks)")
    parser.add_argument("--metrics-port", type=int, default=None,
                        metavar="PORT",
                        help="serve /metrics and /status per hosting "
                             "process (0 = OS-assigned ports); each node "
                             "self-scrapes and lints before reporting")
    parser.add_argument("--wire-batch", type=int, default=None,
                        metavar="N",
                        help="coalesce up to N protocol payloads per "
                             "datagram (wire batching; <=1 = off, the "
                             "bit-identical unbatched datapath)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="run a shard fabric of N replication "
                             "groups (3 replicas each) instead of one "
                             "group; the verdict checks per shard")
    parser.add_argument("--trace-out", default=None, metavar="DIR",
                        help="enable distributed tracing and dump every "
                             "node's flight recorder into DIR as JSONL "
                             "(merge with repro-trace DIR)")
    args = parser.parse_args()
    if args.shards is not None:
        if args.in_process:
            reports = run_shard_in_process(args.shards, args.wire_batch,
                                           args.trace_out)
        else:
            reports = run_shard_multiprocess(args.shards, args.wire_batch,
                                             args.trace_out)
        return check_sharded(reports, args.shards)
    if args.in_process:
        reports = run_in_process(args.metrics_port, args.wire_batch,
                                 args.trace_out)
    else:
        reports = run_multiprocess(args.metrics_port, args.wire_batch,
                                   args.trace_out)
    return check(reports)


if __name__ == "__main__":
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    raise SystemExit(main())
