#!/usr/bin/env python
"""Survivability tour: crashes, cascaded partitions, total blackout.

Exercises the scenarios that make partition-aware replication hard —
the ones Section 4 shows plain Total Order cannot survive — and shows
the engine's answers: dynamic-linear-voting quorums, the vulnerable
record after a total primary crash, and recovery from stable storage.

Run:  python examples/surviving_disasters.py
"""

from repro.core import ReplicaCluster


def banner(text):
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)))


def main():
    cluster = ReplicaCluster(n=5, seed=99)
    cluster.start_all()
    client = cluster.client(1)
    for i in range(10):
        client.submit(("SET", f"record-{i}", i))
    cluster.run_for(1.0)
    print(f"baseline: {client.completed} actions committed on 5 replicas")

    banner("disaster 1: cascading partitions")
    cluster.partition([1, 2, 3], [4, 5])
    cluster.run_for(1.5)
    print(f"primary shrank to {sorted(cluster.primary_members())}")
    cluster.partition([1, 2], [3], [4, 5])
    cluster.run_for(1.5)
    print(f"primary shrank again to {sorted(cluster.primary_members())} "
          "(2 of the last primary {1,2,3} — dynamic linear voting)")
    survivor = cluster.client(2)
    survivor.submit(("SET", "still-serving", True))
    cluster.run_for(1.0)
    print(f"the 2-node primary still commits: {survivor.completed == 1}")

    banner("disaster 2: the whole primary component crashes")
    cluster.crash(1)
    cluster.crash(2)
    cluster.run_for(1.5)
    print(f"primary members now: {cluster.primary_members()} — none;")
    print("  {3},{4,5} cannot prove what {1,2} may have committed")
    blocked = cluster.client(4)
    blocked.submit(("SET", "hopeful", 1))
    cluster.run_for(1.0)
    print(f"  a hopeful action stays red: completed={blocked.completed}")

    banner("recovery: stable storage + the vulnerable record")
    cluster.recover(1)
    cluster.recover(2)
    cluster.heal()
    cluster.run_for(4.0)
    print(f"primary restored: {sorted(cluster.primary_members())}")
    print(f"the blocked action finally committed: "
          f"{blocked.completed == 1}")
    cluster.assert_converged()
    print("all replicas converged — including 'still-serving' from the")
    print("2-node primary and the pre-crash records.")
    db = cluster.replicas[5].database.state
    print(f"replica 5 database has {len(db)} keys; record-9 = "
          f"{db['record-9']}, still-serving = {db['still-serving']}")


if __name__ == "__main__":
    main()
