#!/usr/bin/env python
"""Exactly-once banking with client failover.

A payment client must never double-charge and never lose a payment —
even when the replica it talks to crashes with the payment in flight.
``SessionClient`` layers exactly-once semantics over the replication
engine: every payment carries a (session, sequence) identity, a
replicated in-database guard suppresses duplicates identically at
every replica, and the client retries across replicas until the global
order confirms its sequence.

Run:  python examples/exactly_once_banking.py
"""

from repro.core import ReplicaCluster
from repro.semantics import SessionClient


def banner(text):
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)))


def main():
    cluster = ReplicaCluster(n=4, seed=33)
    cluster.start_all()
    replicas = [cluster.replicas[n] for n in sorted(cluster.replicas)]

    banner("open an account")
    teller = SessionClient(replicas, name="teller", retry_interval=0.6)
    teller.submit(("SET", "balance:alice", 1000))
    cluster.run_for(1.0)
    print(f"alice's balance: "
          f"{cluster.replicas[1].database.state['balance:alice']}")

    banner("a payment races a replica crash")
    payment = SessionClient(replicas, name="payment-gw",
                            retry_interval=0.6)
    confirmations = []
    payment.submit(("INC", "balance:alice", -100),
                   on_applied=confirmations.append)
    # The attached replica dies immediately — the payment's fate is
    # unknown to the client.
    cluster.crash(1)
    cluster.run_for(3.0)
    print(f"confirmed: {bool(confirmations)} after "
          f"{payment.failovers} failover(s)")
    print(f"balance at replica 2: "
          f"{cluster.replicas[2].database.state['balance:alice']}")

    banner("the crashed replica returns — still exactly once")
    cluster.recover(1)
    cluster.run_for(3.0)
    cluster.assert_converged()
    balance = cluster.replicas[1].database.state["balance:alice"]
    print(f"balance everywhere: {balance}")
    assert balance == 900, "the payment must apply exactly once"
    print(f"duplicates suppressed by the guard: "
          f"{payment.duplicates_suppressed}")

    banner("a burst of payments through a partition")
    done = []

    def pump(_result=None):
        if len(done) < 10:
            done.append(1)
            payment.submit(("INC", "balance:alice", -10),
                           on_applied=pump)
    pump()
    cluster.run_for(0.5)
    cluster.partition([1, 2], [3, 4])
    cluster.run_for(2.0)
    cluster.heal()
    cluster.run_for(4.0)
    cluster.assert_converged()
    final = cluster.replicas[3].database.state["balance:alice"]
    print(f"after 10 x -10 through a partition: {final}")
    assert final == 800
    print("\nno payment lost, none double-applied — the guard's "
          "high-water mark rides the global total order.")


if __name__ == "__main__":
    main()
