"""Experiment E9 (ablation) — scalability in the number of replicas.

Not a paper figure, but the paper's cost model predicts it: the
engine's per-action cost is one forced write and one multicast *in
total*, while COReL pays one forced write and one acknowledgment
multicast *per replica* per action.  At moderate load the difference
shows up as per-action resource consumption (system headroom), not yet
as throughput — COReL sits on its disk floor at every cluster size,
while the engine's throughput stays flat as the replica set grows 7x.
"""

import pytest

from bench_common import paper_disk, write_report
from repro.baselines import CorelSystem, EngineSystem
from repro.bench import format_table, run_closed_loop
from repro.net import lan_profile

REPLICAS = [3, 7, 14, 21]
CLIENTS = 6


def engine_at(n):
    def build():
        return EngineSystem(n, network_profile=lan_profile(),
                            disk_profile=paper_disk())
    return build


def corel_at(n):
    def build():
        return CorelSystem(n, network_profile=lan_profile(),
                           disk_profile=paper_disk())
    return build


def run_scaling():
    rows = {}
    for n in REPLICAS:
        engine = run_closed_loop(engine_at(n), CLIENTS, duration=3.0,
                                 warmup=1.0)
        corel = run_closed_loop(corel_at(n), CLIENTS, duration=3.0,
                                warmup=1.0)
        rows[n] = (engine, corel)
    return rows


def test_per_action_cost_scales_o1_vs_on(benchmark):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)

    # Throughput: the engine stays flat as replicas grow 7x (compare
    # within the one-client-per-node regime, n >= 7).
    engine7 = rows[7][0].throughput
    engine21 = rows[21][0].throughput
    assert engine21 > 0.9 * engine7

    # Resource cost per action: COReL's forced writes grow linearly
    # with n (one per replica); the engine's stay O(1).
    for n in REPLICAS:
        engine, corel = rows[n]
        assert corel.per_action("forced_writes") > 0.8 * n
        assert engine.per_action("forced_writes") < 3
    corel_dg_small = rows[REPLICAS[0]][1].per_action("datagrams")
    corel_dg_large = rows[REPLICAS[-1]][1].per_action("datagrams")
    assert corel_dg_large > 3 * corel_dg_small  # ~O(n) ack multicasts

    table_rows = []
    for n in REPLICAS:
        engine, corel = rows[n]
        table_rows.append([
            n,
            f"{engine.throughput:8.1f}", f"{corel.throughput:8.1f}",
            f"{engine.per_action('forced_writes'):5.1f}",
            f"{corel.per_action('forced_writes'):5.1f}",
            f"{engine.per_action('datagrams'):5.1f}",
            f"{corel.per_action('datagrams'):5.1f}",
        ])
    lines = [
        f"Ablation E9: scalability in replicas ({CLIENTS} clients)",
        "",
        format_table(["replicas", "engine act/s", "corel act/s",
                      "eng fw/act", "corel fw/act",
                      "eng dg/act", "corel dg/act"], table_rows),
        "",
        "engine cost per action is O(1) in the replica count; COReL",
        "pays one forced write + one ack multicast per replica per",
        "action (O(n)) — the headroom difference behind Figure 5(a).",
        "(the n=3 rows co-locate two clients per node, which adds disk",
        "queueing for both systems; from n=7 up it is one client/node)",
    ]
    write_report("scalability", lines)
