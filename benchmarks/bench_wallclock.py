#!/usr/bin/env python
"""Wall-clock benchmark harness for the simulation core.

Every paper figure in this repository is produced by the single-threaded
discrete-event simulator, so the *wall-clock* speed of the sim core —
not any simulated-time number — caps how many replicas, clients, and
seconds of protocol time the test suites can afford.  This harness runs
two representative scenarios and records how fast the simulator chews
through them:

* ``fig5a_throughput`` — the engine half of the Figure 5(a) sweep
  (14 replicas, closed-loop clients at every paper client count), the
  hottest steady-state workload in the suite;
* ``membership_cost``  — the Experiment E6 fault schedule (partitions
  and heals with traffic), which exercises view changes, flush, and
  recovery paths;
* ``runtime_adapter``  — guards the zero-cost-abstraction claim of the
  runtime layer: a structural check that ``SimRuntime`` overrides
  nothing on the kernel ``Simulator`` (the exact claim), plus a
  dispatch microbenchmark that fails on gross wall-clock regressions.

For each scenario it records wall seconds, total events dispatched,
events/sec, total simulated seconds, and the peak kernel heap size,
then merges the measurement into ``BENCH_wallclock.json`` at the repo
root under a label (``--label baseline`` before an optimisation,
``--label current`` after).  When both labels are present the file also
carries the fig5a events/sec speedup, giving subsequent PRs a perf
trajectory to beat.

Wall-clock numbers are machine-dependent; the *simulated-time* results
are not — ``--check-determinism`` runs a scenario twice and asserts the
event counts and throughput numbers are identical (same seed ⇒
bit-identical traces).

Usage::

    python benchmarks/bench_wallclock.py --label baseline   # full run
    python benchmarks/bench_wallclock.py --smoke            # CI smoke
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import os
import subprocess
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

_HERE = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, _HERE)
try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without `pip install -e .`
    sys.path.insert(0, os.path.join(os.path.dirname(_HERE), "src"))

from bench_common import (BENCH_WALLCLOCK_PATH, CLIENT_COUNTS,
                          RESULTS_DIR, SCENARIO_REGISTRY, engine_factory,
                          open_loop_burst, record_wallclock, scenario)
from repro import accel
from repro.bench import sweep_clients
from repro.core import ReplicaCluster
from repro.gcs import GcsSettings
from repro.net import WireBatchConfig
from repro.obs import Observability
from repro.runtime import SimRuntime
from repro.shard import ShardFabric, shard_server_ids
from repro.sim import Simulator
from repro.storage import DiskProfile


def _capturing(factory: Callable[[], Any]) -> Tuple[Callable[[], Any],
                                                    List[Any]]:
    """Wrap a system factory so the built systems (and their simulators)
    stay reachable for post-run event accounting."""
    systems: List[Any] = []

    def build() -> Any:
        system = factory()
        systems.append(system)
        return system

    return build, systems


def _stats(wall: float, sims: List[Any],
           extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    events = sum(s.events_processed for s in sims)
    peak = max((getattr(s, "peak_heap", 0) for s in sims), default=0)
    stats: Dict[str, Any] = {
        "wall_seconds": round(wall, 3),
        "events": events,
        "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
        "sim_seconds": round(sum(s.now for s in sims), 3),
        # None, not 0, when the kernel heap was never sampled.
        "peak_heap": peak if peak else None,
    }
    if extra:
        stats.update(extra)
    return stats


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------
@scenario("fig5a_throughput")
def scenario_fig5a(smoke: bool = False) -> Dict[str, Any]:
    counts = [1, 4] if smoke else CLIENT_COUNTS
    duration = 0.5 if smoke else 3.0
    warmup = 0.2 if smoke else 1.0
    build, systems = _capturing(engine_factory())
    start = time.perf_counter()
    results = sweep_clients(build, counts, duration=duration, warmup=warmup)
    wall = time.perf_counter() - start
    return _stats(wall, [s.sim for s in systems], extra={
        "clients": counts,
        "throughput": {str(r.clients): r.throughput for r in results},
    })


@scenario("membership_cost")
def scenario_membership(smoke: bool = False) -> Dict[str, Any]:
    partitions = 1 if smoke else 3
    actions = 20 if smoke else 60
    start = time.perf_counter()
    cluster = ReplicaCluster(
        n=5, seed=0,
        gcs_settings=GcsSettings(heartbeat_interval=0.02,
                                 failure_timeout=0.08,
                                 gather_settle=0.02, phase_timeout=0.15),
        disk_profile=DiskProfile(forced_write_latency=0.001))
    cluster.start_all(settle=1.5)
    client = cluster.client(1)
    for _ in range(actions):
        client.submit(("INC", "n", 1))
    cluster.run_for(2.0)
    for _ in range(partitions):
        cluster.partition([1, 2, 3], [4, 5])
        cluster.run_for(1.0)
        cluster.heal()
        cluster.run_for(1.0)
    cluster.assert_converged()
    wall = time.perf_counter() - start
    return _stats(wall, [cluster.sim], extra={
        "partitions": partitions, "actions": actions,
    })


#: max_batch sweep of the wire_batching scenario (1 = batching off).
WIRE_SWEEP = [1, 4, 16, 64]


def _wire_run(settings: GcsSettings,
              actions: int) -> Tuple[Dict[str, Any], str]:
    """The :func:`bench_common.open_loop_burst` workload on 5 replicas
    under the given wire settings."""
    start = time.perf_counter()
    cluster = ReplicaCluster(
        n=5, seed=0, gcs_settings=settings,
        disk_profile=DiskProfile(forced_write_latency=0.001))
    cluster.start_all(settle=1.5)
    open_loop_burst(cluster, actions, label="wire_batching")
    wall = time.perf_counter() - start
    stats = {
        "wall_seconds": round(wall, 3),
        "events": cluster.sim.events_processed,
        "sim_seconds": round(cluster.sim.now, 3),
        "datagrams": cluster.network.datagrams_sent,
        "bytes_sent": cluster.network.bytes_sent,
        "actions_per_wall_sec": round(actions / wall, 1),
    }
    return stats, cluster.replicas[1].database.digest()


@scenario("wire_batching")
def scenario_wire_batching(smoke: bool = False) -> Dict[str, Any]:
    """Wire-batching ablation: the burst workload across the
    ``max_batch`` sweep, plus an unbatched reference run.

    Guards in-scenario: ``max_batch = 1`` must be *bit-identical* to
    the unbatched default (no batcher object is even constructed), and
    every variant must converge to the same database digest — batching
    may only change datagram counts and wall clock, never the protocol.
    """
    actions = 200 if smoke else 2000
    sweep = [1, 16] if smoke else WIRE_SWEEP
    reference, ref_digest = _wire_run(GcsSettings(), actions)
    variants: Dict[str, Dict[str, Any]] = {}
    digests = {}
    for max_batch in sweep:
        stats, digest = _wire_run(
            GcsSettings(wire=WireBatchConfig(max_batch=max_batch)),
            actions)
        variants[str(max_batch)] = stats
        digests[max_batch] = digest
    if (variants["1"]["events"], variants["1"]["datagrams"]) \
            != (reference["events"], reference["datagrams"]):
        raise SystemExit(
            f"max_batch=1 diverged from the unbatched datapath: "
            f"{variants['1']['events']} events / "
            f"{variants['1']['datagrams']} datagrams vs reference "
            f"{reference['events']} / {reference['datagrams']}")
    if any(digest != ref_digest for digest in digests.values()):
        raise SystemExit(f"wire batching changed the replicated state: "
                         f"{digests} vs {ref_digest}")
    top = str(sweep[-1])
    wall = sum(v["wall_seconds"] for v in variants.values())
    events = sum(v["events"] for v in variants.values())
    return {
        "wall_seconds": round(wall, 3),
        "events": events,
        "events_per_sec": round(events / wall, 1) if wall else 0.0,
        "sim_seconds": round(sum(v["sim_seconds"]
                                 for v in variants.values()), 3),
        "peak_heap": None,
        "actions": actions,
        "variants": variants,
        "datagram_reduction": round(
            variants["1"]["datagrams"] / variants[top]["datagrams"], 2),
        "events_reduction": round(
            variants["1"]["events"] / variants[top]["events"], 2),
    }


# Maximum tolerated SimRuntime dispatch overhead vs the bare kernel.
# This is a *gross-wrap* budget, not a precision gate: measuring two
# different type objects in one process is exposed to import-set and
# memory-layout luck (the same unchanged code reads anywhere from -12%
# to +12% on a warm box depending on which modules were imported
# first), so a tight budget just gates on interpreter trivia.  Real
# wrapping — a delegating post() — costs ~2x and trips this instantly;
# the *exact* zero-cost claim is enforced structurally below: the
# scenario fails if SimRuntime overrides anything at all.
ADAPTER_OVERHEAD_LIMIT = 0.25


def _drive_dispatch(sim: Simulator, chains: int, depth: int) -> float:
    """Post/schedule/cancel churn shaped like protocol traffic: raw-tuple
    chains (the Network fast path) plus handle timers that get replaced
    (the GCS failure-detector pattern).  Returns wall seconds."""
    remaining = [chains * depth]

    def tick(chain: int) -> None:
        remaining[0] -= 1
        if remaining[0] <= 0:
            return
        sim.post(0.0001, tick, chain)
        if remaining[0] % 16 == 0:
            handle = sim.schedule(0.5, _noop)
            handle.cancel()

    def _noop() -> None:  # pragma: no cover - always cancelled
        pass

    for chain in range(chains):
        sim.post(0.0, tick, chain)
    start = time.perf_counter()
    sim.run()
    return time.perf_counter() - start


@scenario("runtime_adapter")
def scenario_runtime_adapter(smoke: bool = False) -> Dict[str, Any]:
    """SimRuntime must be free: same dispatch loop as the bare kernel.

    The exact claim — that the adapter wraps *nothing* — is checked
    structurally: ``SimRuntime`` may not define any attribute beyond
    metadata, so every ``post``/``schedule`` resolves to the kernel's
    own function object.  The interleaved best-of-N wall-clock
    comparison then only guards against a gross regression (real
    delegation costs ~2x); see ``ADAPTER_OVERHEAD_LIMIT``.
    """
    _METADATA = {"__module__", "__qualname__", "__doc__", "__slots__",
                 "__firstlineno__", "__static_attributes__"}
    overrides = sorted(set(vars(SimRuntime)) - _METADATA)
    if overrides:
        raise SystemExit(
            f"SimRuntime is no longer a zero-override subclass of the "
            f"kernel Simulator: it defines {overrides}.  The Runtime "
            f"seam must stay free on the simulator — move the logic "
            f"into the kernel or behind the seam instead of wrapping.")
    chains, depth = (8, 50_000) if smoke else (8, 125_000)
    rounds = 8
    walls = {"kernel": [], "adapter": []}
    sims = {}
    pair = [("kernel", Simulator), ("adapter", SimRuntime)]
    for round_index in range(rounds + 1):
        # Alternate which class runs first: whoever runs second in a
        # pair consistently pays the other's inline-cache and frequency
        # -ramp shadow, which alone shows up as a phantom ±2%.
        for key, sim_cls in (pair if round_index % 2 == 0
                             else list(reversed(pair))):
            sim = sim_cls()
            wall = _drive_dispatch(sim, chains, depth)
            if round_index > 0:       # round 0 is cache warmup, discarded
                walls[key].append(wall)
            sims[key] = sim
    if sims["kernel"].events_processed != sims["adapter"].events_processed:
        raise SystemExit(
            f"SimRuntime dispatched a different event count than the "
            f"kernel: {sims['adapter'].events_processed} vs "
            f"{sims['kernel'].events_processed}")
    kernel_wall = min(walls["kernel"])
    adapter_wall = min(walls["adapter"])
    overhead = adapter_wall / kernel_wall - 1.0
    if overhead > ADAPTER_OVERHEAD_LIMIT:
        raise SystemExit(
            f"SimRuntime adapter overhead {overhead * 100:.2f}% exceeds "
            f"the {ADAPTER_OVERHEAD_LIMIT * 100:.0f}% budget "
            f"(kernel {kernel_wall:.4f}s vs adapter {adapter_wall:.4f}s)")
    return _stats(adapter_wall, [sims["adapter"]], extra={
        "kernel_wall_seconds": round(kernel_wall, 4),
        "adapter_wall_seconds": round(adapter_wall, 4),
        "adapter_overhead_pct": round(overhead * 100, 2),
        "overhead_limit_pct": ADAPTER_OVERHEAD_LIMIT * 100,
    })


# Maximum tolerated slowdown of the fig5a workload with full
# observability (registry + spans + histograms) enabled.
OBS_OVERHEAD_LIMIT = 0.02
# The smoke variant times ~0.4s samples, where shared-runner phase
# noise alone reads as ±5-10% (measured; even the min-of-10-rounds
# floor swings that much).  Smoke therefore asserts simulation
# identity strictly but only trips on gross instrument regressions;
# the authoritative <2% budget is enforced by the full fig5a run.
OBS_OVERHEAD_SMOKE_LIMIT = 0.10


@scenario("obs_overhead")
def scenario_obs_overhead(smoke: bool = False) -> Dict[str, Any]:
    """Observability must be near-free: fig5a with metrics on vs off.

    Interleaved best-of-N (the ``runtime_adapter`` pattern) of the
    identical engine workload with a fresh enabled
    :class:`Observability` per run versus the default disabled one.
    The simulated protocol must be bit-identical either way — the run
    fails on any event-count difference — and the measured overhead
    must stay under ``OBS_OVERHEAD_LIMIT`` (full) /
    ``OBS_OVERHEAD_SMOKE_LIMIT`` (smoke; see the constants for why
    they differ).
    """
    # The full run uses the exact fig5a workload, so the asserted event
    # count matches fig5a_throughput's (3,362,977 at this seed).
    counts = [1, 4] if smoke else CLIENT_COUNTS
    duration = 0.5 if smoke else 3.0
    warmup = 0.2 if smoke else 1.0
    # Smoke runs are cheap (~0.4s each), so buy extra noise rejection
    # with more rounds; full runs are long enough to be stable at 3.
    rounds = 10 if smoke else 3

    def run_once(enabled: bool) -> Tuple[float, int, float]:
        obs = Observability() if enabled else None
        build, systems = _capturing(engine_factory(observability=obs))
        # CPU time, not wall clock: a paired relative comparison at the
        # 2% level drowns in scheduler preemption and cache-shadow
        # noise on a shared box (wall-clock min-of-N spreads ±5% here);
        # process_time with the collector quiesced is stable to <1%.
        gc.collect()
        gc.disable()
        start = time.process_time()
        try:
            sweep_clients(build, counts, duration=duration, warmup=warmup)
        finally:
            gc.enable()
        wall = time.process_time() - start
        events = sum(s.sim.events_processed for s in systems)
        sim_seconds = sum(s.sim.now for s in systems)
        return wall, events, sim_seconds

    walls = {"off": [], "on": []}
    observed = {}
    pair = [("off", False), ("on", True)]
    for round_index in range(rounds + 1):
        # Alternate run order (see scenario_runtime_adapter: whoever
        # runs second pays the other's cache shadow).
        for key, enabled in (pair if round_index % 2 == 0
                             else list(reversed(pair))):
            wall, events, sim_seconds = run_once(enabled)
            if round_index > 0:       # round 0 warms caches, discarded
                walls[key].append(wall)
            observed[key] = (events, sim_seconds)
    if observed["on"] != observed["off"]:
        raise SystemExit(
            f"observability changed the simulation: metrics-on ran "
            f"{observed['on']} (events, sim s) vs metrics-off "
            f"{observed['off']}")
    off_wall = min(walls["off"])
    on_wall = min(walls["on"])
    # Two estimators, each vulnerable to a different (one-sided —
    # contention only ever slows a run) noise pattern:
    #   * floor ratio min(on)/min(off): exact in quiet phases, fooled
    #     when one pool draws a lucky minimum the other never saw;
    #   * median of per-round paired ratios: order-alternated rounds
    #     cancel slow drifts, but sustained cache contention inflates
    #     every pair of a bad phase wholesale.
    # A real regression shifts BOTH (it moves the floor and every
    # pair), so gate on the smaller of the two.
    ratios = sorted(on / off for on, off in zip(walls["on"], walls["off"]))
    median_overhead = ratios[len(ratios) // 2] - 1.0
    floor_overhead = on_wall / off_wall - 1.0
    overhead = min(median_overhead, floor_overhead)
    limit = OBS_OVERHEAD_SMOKE_LIMIT if smoke else OBS_OVERHEAD_LIMIT
    if overhead > limit:
        raise SystemExit(
            f"observability overhead {overhead * 100:.2f}% exceeds the "
            f"{limit * 100:.0f}% budget (paired-ratio "
            f"median {median_overhead * 100:.2f}%, floor "
            f"{floor_overhead * 100:.2f}%: off {off_wall:.4f}s vs on "
            f"{on_wall:.4f}s)")
    events, sim_seconds = observed["on"]
    return {
        "wall_seconds": round(on_wall, 3),
        "events": events,
        "events_per_sec": round(events / on_wall, 1) if on_wall else 0.0,
        "sim_seconds": round(sim_seconds, 3),
        "peak_heap": None,
        "off_wall_seconds": round(off_wall, 4),
        "on_wall_seconds": round(on_wall, 4),
        "obs_overhead_pct": round(overhead * 100, 2),
        "obs_overhead_median_pct": round(median_overhead * 100, 2),
        "obs_overhead_floor_pct": round(floor_overhead * 100, 2),
        "overhead_limit_pct": limit * 100,
    }


# Maximum tolerated slowdown of the fig5a workload with distributed
# tracing (trace-context stamping + flight recorder + staleness
# probes) enabled on top of full observability.
TRACE_OVERHEAD_LIMIT = 0.03
# Same shared-runner noise argument as OBS_OVERHEAD_SMOKE_LIMIT.
TRACE_OVERHEAD_SMOKE_LIMIT = 0.12


@scenario("trace_overhead")
def scenario_trace_overhead(smoke: bool = False) -> Dict[str, Any]:
    """Tracing must be near-free: the flight recorder, trace-context
    stamping, and staleness probe on vs plain observability.

    Two parts.  **Determinism pin** (full mode): the exact fig5a
    workload runs once per variant and must process the identical
    (event count, sim seconds) stream — 3,362,977 events at this seed
    — proving the recorder never touches the clock or the RNG (the
    ``flight-clock`` analyzer rule, enforced end to end).

    **Overhead gate**: the baseline already carries the full
    metrics/spans instrumentation, so the delta isolates what the
    tracing tentpole added.  The true delta is well under 1% of
    engine CPU (cProfile puts it at ~0.7% at 14 clients), but this
    runner's noise floor is an order of magnitude above that:
    *identical* back-to-back runs spread over 20%.  A fixed-round
    protocol therefore gates on luck, not on the code.  Instead the
    gate samples short interleaved pairs *adaptively* and stops as
    soon as ``min(paired-ratio median, floor)`` clears the budget.
    The floor estimator — min over all samples per variant — is sound
    under one-sided noise: contention only ever adds time, so more
    samples only sharpen the floor, and a real regression shifts the
    tracing-on floor up persistently where no amount of sampling can
    get it back under the budget.  Failing runs exhaust
    ``max_rounds`` first.
    """
    # Gate at 14 clients: the densest instrumentation traffic (every
    # action costs ~29 ring appends across the cluster), i.e. the
    # worst case for tracing overhead, and short enough (~1.5s a
    # sample) that pairs interleave faster than the box's load drift.
    gate_counts = [14]
    duration = 0.5 if smoke else 1.0
    warmup = 0.2 if smoke else 0.3
    min_rounds = 4 if smoke else 6
    max_rounds = 12 if smoke else 24
    limit = TRACE_OVERHEAD_SMOKE_LIMIT if smoke else TRACE_OVERHEAD_LIMIT

    def run_once(tracing: bool, counts: List[int], run_duration: float,
                 run_warmup: float) -> Tuple[float, int, float]:
        obs = (Observability(flight=True, staleness=True) if tracing
               else Observability())
        build, systems = _capturing(engine_factory(observability=obs))
        gc.collect()
        gc.disable()
        start = time.process_time()
        try:
            sweep_clients(build, counts, duration=run_duration,
                          warmup=run_warmup)
        finally:
            gc.enable()
        wall = time.process_time() - start
        events = sum(s.sim.events_processed for s in systems)
        sim_seconds = sum(s.sim.now for s in systems)
        return wall, events, sim_seconds

    pin_events = 0
    pin_sim = 0.0
    if not smoke:
        off_pin = run_once(False, CLIENT_COUNTS, 3.0, 1.0)
        on_pin = run_once(True, CLIENT_COUNTS, 3.0, 1.0)
        if on_pin[1:] != off_pin[1:]:
            raise SystemExit(
                f"tracing changed the fig5a simulation: tracing-on ran "
                f"{on_pin[1:]} (events, sim s) vs tracing-off "
                f"{off_pin[1:]}")
        pin_events, pin_sim = on_pin[1], on_pin[2]

    walls: Dict[str, List[float]] = {"off": [], "on": []}
    identity: Dict[str, Tuple[int, float]] = {}
    pair = [("off", False), ("on", True)]
    median_overhead = floor_overhead = overhead = None
    passed = False
    rounds_used = 0
    for round_index in range(max_rounds + 1):
        for key, tracing in (pair if round_index % 2 == 0
                             else list(reversed(pair))):
            wall, events, sim_seconds = run_once(
                tracing, gate_counts, duration, warmup)
            # Every run of the gate workload must replay the same
            # stream — within a variant (determinism) and across the
            # variants (tracing changes nothing).
            signature = (events, sim_seconds)
            prior = identity.setdefault(key, signature)
            if signature != prior:
                raise SystemExit(
                    f"nondeterministic gate workload: tracing-{key} "
                    f"ran {signature} (events, sim s) vs {prior}")
            if round_index > 0:       # round 0 warms caches, discarded
                walls[key].append(wall)
        if round_index == 0:
            continue
        rounds_used = round_index
        if round_index < min_rounds:
            continue
        ratios = sorted(on / off
                        for on, off in zip(walls["on"], walls["off"]))
        median_overhead = ratios[len(ratios) // 2] - 1.0
        floor_overhead = min(walls["on"]) / min(walls["off"]) - 1.0
        overhead = min(median_overhead, floor_overhead)
        if overhead < limit:
            passed = True
            break
    if identity["on"] != identity["off"]:
        raise SystemExit(
            f"tracing changed the simulation: tracing-on ran "
            f"{identity['on']} (events, sim s) vs tracing-off "
            f"{identity['off']}")
    assert overhead is not None            # min_rounds <= max_rounds
    assert median_overhead is not None and floor_overhead is not None
    if not passed:
        raise SystemExit(
            f"tracing overhead {overhead * 100:.2f}% exceeds the "
            f"{limit * 100:.0f}% budget after {rounds_used} rounds "
            f"(paired-ratio median {median_overhead * 100:.2f}%, "
            f"floor {floor_overhead * 100:.2f}%: off "
            f"{min(walls['off']):.4f}s vs on {min(walls['on']):.4f}s)")
    off_wall = min(walls["off"])
    on_wall = min(walls["on"])
    events = pin_events if not smoke else identity["on"][0]
    sim_seconds = pin_sim if not smoke else identity["on"][1]
    return {
        "wall_seconds": round(on_wall, 3),
        "events": events,
        "events_per_sec": round(identity["on"][0] / on_wall, 1)
        if on_wall else 0.0,
        "sim_seconds": round(sim_seconds, 3),
        "peak_heap": None,
        "off_wall_seconds": round(off_wall, 4),
        "on_wall_seconds": round(on_wall, 4),
        "trace_overhead_pct": round(overhead * 100, 2),
        "trace_overhead_median_pct": round(median_overhead * 100, 2),
        "trace_overhead_floor_pct": round(floor_overhead * 100, 2),
        "overhead_limit_pct": limit * 100,
        "gate_rounds": rounds_used,
    }


#: shard counts of the sharding weak-scaling sweep.
SHARD_SWEEP = [1, 2, 4]
#: minimum aggregate green-actions/sec speedup at the top of the sweep
#: (4 shards full, 2 shards smoke) over the single-shard fabric.
SHARD_SPEEDUP_FLOOR = 2.5
SHARD_SPEEDUP_SMOKE_FLOOR = 1.5

_SHARD_GCS = GcsSettings(heartbeat_interval=0.02, failure_timeout=0.08,
                         gather_settle=0.02, phase_timeout=0.15)


def _shard_burst(num_shards: int, per_shard: int) -> Dict[str, Any]:
    """Weak scaling: the open-loop burst, one copy per shard, all in
    flight at once on one fabric.  Each group drains its own burst on
    its own quorum/WALs, so the drain time in *simulated* seconds
    should stay flat as shards are added — aggregate greens/sec grows
    with the shard count."""
    start = time.perf_counter()
    fabric = ShardFabric(
        num_shards=num_shards, replicas_per_shard=3, seed=0,
        gcs_settings=_SHARD_GCS,
        disk_profile=DiskProfile(forced_write_latency=0.001))
    fabric.start_all(settle=1.5)
    bases = {s: fabric.green_count(s) for s in range(num_shards)}
    load_start = fabric.sim.now
    # The drain time is taken from the green-completion callbacks, not
    # the polling loop, so its resolution is exact simulated time.
    last_green = [load_start]

    def mark(_action: Any, _pos: int, _result: Any) -> None:
        last_green[0] = fabric.sim.now

    for s in range(num_shards):
        for _ in range(per_shard):
            fabric.submit_local(s, ("INC", f"n{s}", 1), mark)
    deadline = fabric.sim.now + 120.0
    while any(fabric.green_count(s) - bases[s] < per_shard
              for s in range(num_shards)):
        if fabric.sim.now >= deadline:
            raise SystemExit(
                f"sharding burst stalled at {num_shards} shards")
        fabric.run_for(0.25)
    fabric.assert_converged()
    drain = last_green[0] - load_start
    wall = time.perf_counter() - start
    greens = num_shards * per_shard
    return {
        "wall_seconds": round(wall, 3),
        "events": fabric.sim.events_processed,
        "sim_seconds": round(fabric.sim.now, 3),
        "drain_sim_seconds": round(drain, 3),
        "greens": greens,
        "greens_per_sim_sec": round(greens / drain, 1),
    }


def _shard_txn_workload(smoke: bool) -> Dict[str, Any]:
    """Cross-shard transactions on a 2-shard fabric, healthy and under
    partition.  Healthy pairs must all commit; once shard 1 is cut
    below quorum, every transaction touching it must abort on the
    coordinator's prepare timeout (decided in shard 0's total order),
    and after the heal nothing may stay staged."""
    healthy = 10 if smoke else 40
    cut = 5 if smoke else 20
    start = time.perf_counter()
    fabric = ShardFabric(
        num_shards=2, replicas_per_shard=3, seed=0,
        gcs_settings=_SHARD_GCS,
        disk_profile=DiskProfile(forced_write_latency=0.001),
        prepare_timeout=2.0)
    fabric.start_all(settle=1.5)
    # Deterministic cross-shard pairs: probe keys until each shard owns
    # enough of them.
    keys: Dict[int, List[str]] = {0: [], 1: []}
    probe = 0
    while min(len(keys[0]), len(keys[1])) < healthy + cut:
        key = f"t{probe}"
        keys[fabric.router.shard_for_key(key)].append(key)
        probe += 1
    outcomes = {"commit": 0, "abort": 0}

    def done(_txn_id: str, outcome: str) -> None:
        outcomes[outcome] += 1

    for j in range(healthy):
        fabric.submit([["SET", keys[0][j], j], ["SET", keys[1][j], j]],
                      done)
    fabric.run_for(10.0)
    healthy_commits = outcomes["commit"]
    # Fragment shard 1 below quorum (its replicas become singletons;
    # shard 0 is the auto-completed remainder and keeps its primary).
    nodes1 = shard_server_ids(1, 3)
    fabric.partition([nodes1[0]], [nodes1[1]], [nodes1[2]])
    fabric.run_for(1.0)
    for j in range(healthy, healthy + cut):
        fabric.submit([["SET", keys[0][j], j], ["SET", keys[1][j], j]],
                      done)
    # Past the prepare timeout: every cut transaction is decided
    # (abort) in shard 0; the finish records for shard 1 drain after
    # the heal, which is when on_done fires.
    fabric.run_for(8.0)
    fabric.heal()
    fabric.run_for(10.0)
    staged = fabric.staged()
    if staged:
        raise SystemExit(f"staged transactions survived the heal: "
                         f"{sorted(staged)}")
    fabric.assert_converged()
    if healthy_commits != healthy:
        raise SystemExit(f"healthy phase committed {healthy_commits} of "
                         f"{healthy} cross-shard transactions")
    if outcomes["abort"] != cut:
        raise SystemExit(f"partition phase aborted {outcomes['abort']} "
                         f"of {cut} transactions (expected all: shard 1 "
                         f"had no quorum)")
    wall = time.perf_counter() - start
    return {
        "wall_seconds": round(wall, 3),
        "events": fabric.sim.events_processed,
        "sim_seconds": round(fabric.sim.now, 3),
        "healthy_commits": healthy_commits,
        "partition_aborts": outcomes["abort"],
        "commits": outcomes["commit"],
        "aborts": outcomes["abort"],
    }


@scenario("sharding")
def scenario_sharding(smoke: bool = False) -> Dict[str, Any]:
    """Shard-fabric scaling and cross-shard transaction cost.

    Weak scaling first: a fixed per-shard open-loop burst at every
    shard count in the sweep; since the groups are independent (own
    GCS group, own quorum, own WALs) the aggregate green-actions/sec
    must grow near-linearly — the run fails below
    ``SHARD_SPEEDUP_FLOOR`` at the top of the sweep.  Then the
    cross-shard transaction workload: commits when both shards are
    healthy, aborts (with a clean recovery) when one shard loses
    quorum mid-run.
    """
    sweep = [1, 2] if smoke else SHARD_SWEEP
    per_shard = 120 if smoke else 600
    scaling: Dict[str, Dict[str, Any]] = {}
    for num_shards in sweep:
        scaling[str(num_shards)] = _shard_burst(num_shards, per_shard)
    base_rate = scaling["1"]["greens_per_sim_sec"]
    top = str(sweep[-1])
    speedup = scaling[top]["greens_per_sim_sec"] / base_rate
    floor = SHARD_SPEEDUP_SMOKE_FLOOR if smoke else SHARD_SPEEDUP_FLOOR
    if speedup < floor:
        raise SystemExit(
            f"sharding speedup {speedup:.2f}x at {top} shards is below "
            f"the {floor}x floor (aggregate green-actions/sim-sec "
            f"{ {k: v['greens_per_sim_sec'] for k, v in scaling.items()} })")
    txn = _shard_txn_workload(smoke)
    runs = list(scaling.values()) + [txn]
    wall = sum(r["wall_seconds"] for r in runs)
    events = sum(r["events"] for r in runs)
    return {
        "wall_seconds": round(wall, 3),
        "events": events,
        "events_per_sec": round(events / wall, 1) if wall else 0.0,
        "sim_seconds": round(sum(r["sim_seconds"] for r in runs), 3),
        "peak_heap": None,
        "per_shard_actions": per_shard,
        "scaling": scaling,
        "aggregate_speedup": round(speedup, 2),
        "speedup_floor": floor,
        "cross_shard_txns": txn,
    }


# ----------------------------------------------------------------------
# compiled vs pure build (the repro.accel seam)
# ----------------------------------------------------------------------
#: exact fig5a event count at seed 0 — the determinism pin every build
#: must reproduce (also asserted by tests/test_analysis_seams.py's
#: fig5a regression companions and the trace_overhead docstring).
FIG5A_EVENT_PIN = 3_362_977
#: minimum fig5a events/sec of the mypyc build over the pure build.
COMPILED_SPEEDUP_FLOOR = 2.0


def _accel_worker(smoke: bool) -> int:
    """Measure one build in-process and print a JSON report.

    Run as a subprocess by ``scenario_compiled_core`` — once with
    ``REPRO_FORCE_PURE=1`` and once with the ambient (possibly
    compiled) build — so the two builds are compared from the same
    installed tree without re-importing anything in-process.  The
    digest folds every replica database of both workloads plus the
    fig5a throughput table, so any cross-build divergence in ordering,
    delivery, or state shows up as a one-line mismatch.
    """
    report: Dict[str, Any] = {
        "build": accel.active(),
        "force_pure": accel.force_pure_requested(),
        "modules": accel.build_info(),
    }
    digest = hashlib.sha256()

    counts = [1, 4] if smoke else CLIENT_COUNTS
    duration = 0.5 if smoke else 3.0
    warmup = 0.2 if smoke else 1.0
    build, systems = _capturing(engine_factory())
    start = time.perf_counter()
    results = sweep_clients(build, counts, duration=duration, warmup=warmup)
    wall = time.perf_counter() - start
    events = sum(s.sim.events_processed for s in systems)
    sim_seconds = round(sum(s.sim.now for s in systems), 3)
    report["fig5a"] = {
        "wall_seconds": round(wall, 3),
        "events": events,
        "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
        "sim_seconds": sim_seconds,
    }
    for r in results:
        digest.update(f"fig5a:{r.clients}:{r.throughput!r}"
                      f":{r.mean_latency!r};".encode())
    for system in systems:
        for node in sorted(system.cluster.replicas):
            digest.update(
                system.cluster.replicas[node].database.digest().encode())

    membership = scenario_membership(smoke)
    report["membership"] = {
        "wall_seconds": membership["wall_seconds"],
        "events": membership["events"],
        "sim_seconds": membership["sim_seconds"],
    }
    # Replay the membership workload state into the digest: re-running
    # it would double the cost, so digest the deterministic stats
    # instead (events + sim_seconds pin the whole trace; see
    # check_determinism).
    digest.update(f"membership:{membership['events']}"
                  f":{membership['sim_seconds']!r};".encode())
    report["digest"] = digest.hexdigest()
    print(json.dumps(report))
    return 0


def _accel_subprocess(force_pure: bool, smoke: bool) -> Dict[str, Any]:
    """Run ``--accel-worker`` in a subprocess under the chosen build."""
    env = dict(os.environ)
    if force_pure:
        env["REPRO_FORCE_PURE"] = "1"
    else:
        env.pop("REPRO_FORCE_PURE", None)
    cmd = [sys.executable, os.path.abspath(__file__), "--accel-worker"]
    if smoke:
        cmd.append("--smoke")
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    which = "pure" if force_pure else "default"
    if proc.returncode != 0:
        raise SystemExit(f"accel worker ({which} build) failed with "
                         f"code {proc.returncode}:\n{proc.stderr}")
    try:
        report = json.loads(proc.stdout.splitlines()[-1])
    except (IndexError, ValueError):
        raise SystemExit(f"accel worker ({which} build) printed no "
                         f"JSON report:\n{proc.stdout}\n{proc.stderr}")
    if not isinstance(report, dict):
        raise SystemExit(f"accel worker ({which} build) report is not "
                         f"an object: {report!r}")
    return report


@scenario("compiled_core")
def scenario_compiled_core(smoke: bool = False) -> Dict[str, Any]:
    """Compiled-vs-pure differential: same trace, faster clock.

    Runs the fig5a engine sweep and the membership fault schedule in
    two subprocesses — one pinned to the pure-python sources via
    ``REPRO_FORCE_PURE=1``, one on whatever build is installed — and
    asserts the simulated results are *bit-identical*: same event
    counts, same simulated seconds, same state digest (every replica
    database plus the throughput table).  In full mode the fig5a event
    count is additionally pinned to ``FIG5A_EVENT_PIN`` exactly.

    When the default build is actually compiled (mypyc: see
    ``repro.accel`` and the ``accel`` extra), the full run also gates
    compiled fig5a events/sec at ``COMPILED_SPEEDUP_FLOOR``x the pure
    rate.  Without a compiled install both subprocesses run pure and
    the scenario degrades to a cross-process determinism check — still
    meaningful, never skipped.
    """
    start = time.perf_counter()
    pure = _accel_subprocess(force_pure=True, smoke=smoke)
    default = _accel_subprocess(force_pure=False, smoke=smoke)
    wall = time.perf_counter() - start
    if pure["build"] != "pure":
        raise SystemExit(
            f"REPRO_FORCE_PURE did not pin the pure build: worker "
            f"reports {pure['build']} ({pure['modules']})")
    for key in ("fig5a", "membership"):
        pure_sig = (pure[key]["events"], pure[key]["sim_seconds"])
        default_sig = (default[key]["events"], default[key]["sim_seconds"])
        if pure_sig != default_sig:
            raise SystemExit(
                f"builds diverged on {key}: pure ran {pure_sig} "
                f"(events, sim s) vs {default['build']} {default_sig}")
    if pure["digest"] != default["digest"]:
        raise SystemExit(
            f"builds diverged on replicated state: pure digest "
            f"{pure['digest']} vs {default['build']} {default['digest']}")
    if not smoke and pure["fig5a"]["events"] != FIG5A_EVENT_PIN:
        raise SystemExit(
            f"fig5a determinism pin broken: {pure['fig5a']['events']} "
            f"events (expected exactly {FIG5A_EVENT_PIN})")
    compiled_active = default["build"] == "compiled"
    speedup = (default["fig5a"]["events_per_sec"]
               / pure["fig5a"]["events_per_sec"])
    if compiled_active and not smoke and speedup < COMPILED_SPEEDUP_FLOOR:
        raise SystemExit(
            f"compiled build speedup {speedup:.2f}x is below the "
            f"{COMPILED_SPEEDUP_FLOOR}x floor (pure "
            f"{pure['fig5a']['events_per_sec']} events/sec vs compiled "
            f"{default['fig5a']['events_per_sec']})")
    events = pure["fig5a"]["events"] + pure["membership"]["events"]
    return {
        "wall_seconds": round(wall, 3),
        "events": events,
        "events_per_sec": round(events / wall, 1) if wall else 0.0,
        "sim_seconds": round(pure["fig5a"]["sim_seconds"]
                             + pure["membership"]["sim_seconds"], 3),
        "peak_heap": None,
        "default_build": default["build"],
        "compiled_active": compiled_active,
        "digest": pure["digest"],
        "builds": {"pure": pure["fig5a"],
                   "default": default["fig5a"]},
        "compiled_speedup": round(speedup, 2),
        "speedup_floor": COMPILED_SPEEDUP_FLOOR,
    }


#: The registry is the single source of truth (see ``bench_common``);
#: the module-level alias keeps the historical import path working.
SCENARIOS: Dict[str, Callable[[bool], Dict[str, Any]]] = SCENARIO_REGISTRY


# ----------------------------------------------------------------------
# determinism gate
# ----------------------------------------------------------------------
def check_determinism() -> None:
    """Same seed ⇒ identical simulated-time results, run to run."""
    runs = []
    for _ in range(2):
        build, systems = _capturing(engine_factory())
        results = sweep_clients(build, [1, 4], duration=0.5, warmup=0.2)
        runs.append((
            tuple((r.clients, r.throughput, r.mean_latency)
                  for r in results),
            tuple(s.sim.events_processed for s in systems),
            tuple(s.sim.now for s in systems),
        ))
    if runs[0] != runs[1]:
        raise SystemExit(f"DETERMINISM VIOLATION:\n  run 1: {runs[0]}"
                         f"\n  run 2: {runs[1]}")
    print("determinism check: OK (two runs bit-identical)")


def _profiled(fn: Callable[[bool], Dict[str, Any]], smoke: bool,
              profiler: Any) -> Dict[str, Any]:
    """Run one scenario invocation under an accumulating profiler."""
    profiler.enable()
    try:
        return fn(smoke)
    finally:
        profiler.disable()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Wall-clock perf harness for the simulation core")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced scenarios for CI smoke testing")
    parser.add_argument("--label", default=None,
                        help="entry label in BENCH_wallclock.json "
                             "(baseline | pure | compiled | ...); "
                             "defaults to the active build reported by "
                             "repro.accel, so pure and compiled runs "
                             "land in separate entries instead of "
                             "overwriting one another")
    parser.add_argument("--output", default=BENCH_WALLCLOCK_PATH,
                        help="path of the JSON trajectory file")
    parser.add_argument("--scenario", choices=sorted(SCENARIOS),
                        action="append", default=None,
                        help="run one scenario instead of all "
                             "(repeatable)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="run each scenario N times, record the "
                             "fastest wall clock (the usual way to damp "
                             "scheduler noise and cold-cache effects); "
                             "simulated-time numbers must be identical "
                             "across repeats, so this doubles as a "
                             "determinism check")
    parser.add_argument("--check-determinism", action="store_true",
                        help="run the determinism gate as well")
    parser.add_argument("--profile", action="store_true",
                        help="wrap each scenario in cProfile: prints "
                             "the top-30 functions by cumulative time "
                             "and writes benchmarks/results/"
                             "<scenario>.pstats for pstats/snakeviz")
    parser.add_argument("--accel-worker", action="store_true",
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.accel_worker:
        return _accel_worker(args.smoke)

    if args.check_determinism:
        check_determinism()

    label = args.label if args.label is not None else accel.active()
    names = args.scenario if args.scenario else list(SCENARIOS)
    scenarios: Dict[str, Dict[str, Any]] = {}
    for name in names:
        print(f"running {name} ({'smoke' if args.smoke else 'full'}"
              f"{f', best of {args.repeat}' if args.repeat > 1 else ''})"
              " ...", flush=True)
        profiler = None
        if args.profile:
            import cProfile
            profiler = cProfile.Profile()
            run = SCENARIOS[name]
            stats = _profiled(run, args.smoke, profiler)
        else:
            stats = SCENARIOS[name](args.smoke)
        for _ in range(args.repeat - 1):
            if profiler is not None:
                again = _profiled(SCENARIOS[name], args.smoke, profiler)
            else:
                again = SCENARIOS[name](args.smoke)
            if again["events"] != stats["events"] \
                    or again["sim_seconds"] != stats["sim_seconds"]:
                raise SystemExit(
                    f"DETERMINISM VIOLATION in {name}: repeats disagree "
                    f"on simulated results ({stats['events']} events / "
                    f"{stats['sim_seconds']}s vs {again['events']} / "
                    f"{again['sim_seconds']}s)")
            if again["wall_seconds"] < stats["wall_seconds"]:
                stats = again
        if profiler is not None:
            import pstats
            os.makedirs(RESULTS_DIR, exist_ok=True)
            pstats_path = os.path.join(RESULTS_DIR, f"{name}.pstats")
            profiler.dump_stats(pstats_path)
            pstats.Stats(profiler, stream=sys.stdout) \
                .sort_stats("cumulative").print_stats(30)
            print(f"profile written to {pstats_path}")
        scenarios[name] = stats
        peak = stats.get("peak_heap")
        print(f"  {name}: {stats['wall_seconds']}s wall, "
              f"{stats['events']} events, "
              f"{stats['events_per_sec']:.0f} events/sec, "
              f"peak heap {peak if peak is not None else 'n/a'}")

    mode = "smoke" if args.smoke else "full"
    doc = record_wallclock(label, mode, scenarios, path=args.output,
                           timestamp=time.time())
    speedup = doc.get("fig5a_events_per_sec_speedup")
    if speedup is not None:
        print(f"fig5a events/sec speedup vs baseline: {speedup}x")
    compiled_speedup = doc.get("fig5a_compiled_speedup")
    if compiled_speedup is not None:
        print(f"fig5a compiled-vs-pure speedup: {compiled_speedup}x")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
