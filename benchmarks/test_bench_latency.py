"""Experiment E3 — Section 7's latency test.

One client submits a long run of sequential actions; we record the
mean response time.  Paper: two-phase commit ≈ 19.3 ms (two serial
forced writes); COReL ≈ engine ≈ 11.4 ms (one forced write), flat in
the number of servers because disk latency dominates on a LAN.
"""

import pytest

from bench_common import (corel_factory, engine_factory, twopc_factory,
                          write_report)
from repro.bench import latency_table, paper_vs_measured, run_latency_probe

ACTIONS = 1000
PAPER_MS = {"engine": 11.4, "corel": 11.4, "2pc": 19.3}


def run_latency():
    return [
        run_latency_probe(engine_factory(), actions=ACTIONS),
        run_latency_probe(corel_factory(), actions=ACTIONS),
        run_latency_probe(twopc_factory(), actions=ACTIONS),
    ]


def check_shape(results):
    by_name = {r.system: r for r in results}
    engine_ms = by_name["engine"].mean_latency_ms
    corel_ms = by_name["corel"].mean_latency_ms
    twopc_ms = by_name["2pc"].mean_latency_ms
    # The engine and COReL sit together near one forced write; 2PC is
    # roughly twice that (two serial forced writes).
    assert abs(engine_ms - corel_ms) < 3.0
    assert twopc_ms > 1.5 * min(engine_ms, corel_ms)
    assert 9.0 < engine_ms < 14.0
    assert 17.0 < twopc_ms < 23.0


def test_single_client_latency(benchmark):
    results = benchmark.pedantic(run_latency, rounds=1, iterations=1)
    check_shape(results)
    by_name = {r.system: r for r in results}
    comparison = [
        (name, f"{PAPER_MS[name]:.1f} ms",
         f"{by_name[name].mean_latency_ms:.1f} ms",
         "shape holds")
        for name in ("engine", "corel", "2pc")
    ]
    lines = [
        f"Latency test reproduction: 1 client, {ACTIONS} sequential"
        " actions, 14 replicas",
        "",
        latency_table(results),
        "",
        paper_vs_measured(comparison),
    ]
    write_report("latency", lines)
