"""Experiment E2 — Figure 5(b): impact of forced disk writes.

The engine with forced writes vs the engine with delayed
(asynchronous) writes.  Reproduction target: the delayed-writes engine
tops out near 2500 actions/second — the per-action processing limit —
far above the forced-writes curve.
"""

from bench_common import (CLIENT_COUNTS, engine_factory, write_report)
from repro.bench import (sweep_clients, throughput_chart,
                         throughput_series_table)


def run_figure_5b():
    return {
        "forced-writes": sweep_clients(
            engine_factory(forced_writes=True), CLIENT_COUNTS,
            duration=3.0, warmup=1.0),
        "delayed-writes": sweep_clients(
            engine_factory(forced_writes=False), CLIENT_COUNTS,
            duration=3.0, warmup=1.0),
    }


def check_shape(series):
    def at(name, clients):
        return next(r.throughput for r in series[name]
                    if r.clients == clients)

    # Delayed writes dominate at every point.
    for clients in CLIENT_COUNTS:
        assert at("delayed-writes", clients) > at("forced-writes",
                                                  clients)
    # The delayed-writes engine hits its processing cap near 2500
    # actions/second (the paper's headline number).
    peak = max(r.throughput for r in series["delayed-writes"])
    assert 2000 <= peak <= 3000, peak
    # ... and has visibly flattened: the last step adds little.
    a10 = at("delayed-writes", 10)
    a14 = at("delayed-writes", 14)
    assert a14 < 1.25 * a10


def test_fig5b_forced_vs_delayed_writes(benchmark):
    series = benchmark.pedantic(run_figure_5b, rounds=1, iterations=1)
    check_shape(series)
    peak = max(r.throughput for r in series["delayed-writes"])
    lines = [
        "Figure 5(b) reproduction: forced vs delayed disk writes,"
        " 14 replicas",
        "",
        throughput_series_table(series),
        "",
        throughput_chart(series),
        "",
        f"delayed-writes peak: {peak:.0f} actions/s "
        "(paper: tops at ~2500 actions/s)",
    ]
    write_report("fig5b_disk_writes", lines)
