"""Experiment E5 (ablation) — quorum policy availability.

The paper chooses dynamic linear voting: "the component that contains
a (weighted) majority of the last primary component becomes the new
primary component".  Its advantage over a static majority of the full
replica set is availability under *progressive* shrinking: after
{1,2,3} of 5 is primary, a further split to {1,2} keeps a primary
under dynamic linear voting (2 of the last 3) but not under a static
majority (2 of 5).

Metric: fraction of simulated time some primary component exists,
over a scripted cascade of partitions, for each policy.
"""

import pytest

from bench_common import write_report
from repro.bench import format_table
from repro.core import (DynamicLinearVoting, EngineConfig, ReplicaCluster,
                        StaticMajority)
from repro.gcs import GcsSettings
from repro.storage import DiskProfile


def fast_settings():
    return GcsSettings(heartbeat_interval=0.02, failure_timeout=0.08,
                       gather_settle=0.02, phase_timeout=0.15)


SCHEDULE = [
    # (time-to-run-before, groups)
    (2.0, [[1, 2, 3], [4, 5]]),      # primary shrinks to {1,2,3}
    (2.0, [[1, 2], [3], [4, 5]]),    # DLV keeps {1,2}; static loses all
    (2.0, [[1], [2], [3], [4, 5]]),  # nobody has quorum
    (2.0, None),                     # heal
]


def run_policy(policy_factory, seed=0):
    cluster = ReplicaCluster(
        n=5, seed=seed, gcs_settings=fast_settings(),
        disk_profile=DiskProfile(forced_write_latency=0.001),
        engine_config=EngineConfig(quorum=policy_factory()))
    cluster.start_all(settle=1.5)
    available = 0
    samples = 0
    sample_step = 0.05
    for duration, groups in SCHEDULE:
        if groups is None:
            cluster.heal()
        else:
            cluster.partition(*groups)
        steps = int(duration / sample_step)
        for _ in range(steps):
            cluster.run_for(sample_step)
            samples += 1
            if cluster.primary_members():
                available += 1
    cluster.run_for(2.0)
    cluster.assert_converged()
    return available / samples


def run_ablation():
    return {
        "dynamic-linear-voting": run_policy(DynamicLinearVoting),
        "static-majority": run_policy(StaticMajority),
    }


def test_quorum_policy_availability(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    dlv = results["dynamic-linear-voting"]
    static = results["static-majority"]
    # DLV keeps a primary through the {1,2} phase; static cannot.
    assert dlv > static + 0.15, results
    lines = [
        "Ablation E5: primary availability under cascading partitions",
        "",
        format_table(["policy", "primary available (fraction of time)"],
                     [[name, f"{value:.2f}"]
                      for name, value in results.items()]),
        "",
        "dynamic linear voting preserves a primary while the last",
        "primary component keeps splitting in majority parts.",
    ]
    write_report("ablation_quorum", lines)
