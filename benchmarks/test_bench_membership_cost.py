"""Experiment E6 (ablation) — end-to-end cost only at membership changes.

The paper's Section 1 claim: "end-to-end acknowledgements are only used
once for every network connectivity change event ... and not per
action."  We measure the engine-level exchange traffic (state messages
+ CPC messages) against action traffic across a run with a known number
of membership events: per-action engine overhead must be zero, and the
exchange message count must scale with view changes, not with actions.
"""

import pytest

from bench_common import write_report
from repro.bench import format_table
from repro.core import ReplicaCluster
from repro.gcs import GcsSettings
from repro.storage import DiskProfile


def run_membership_cost(actions_between=60, partitions=3):
    cluster = ReplicaCluster(
        n=5, seed=0,
        gcs_settings=GcsSettings(heartbeat_interval=0.02,
                                 failure_timeout=0.08,
                                 gather_settle=0.02, phase_timeout=0.15),
        disk_profile=DiskProfile(forced_write_latency=0.001))
    cluster.start_all(settle=1.5)

    def totals():
        state_msgs = sum(r.engine.stats["state_msgs_sent"]
                         for r in cluster.replicas.values())
        cpcs = sum(r.engine.stats["cpc_sent"]
                   for r in cluster.replicas.values())
        return state_msgs + cpcs

    client = cluster.client(1)
    exchange_before = totals()
    for _ in range(actions_between):
        client.submit(("INC", "n", 1))
    cluster.run_for(2.0)
    exchange_during_actions = totals() - exchange_before

    view_events = 0
    exchange_before = totals()
    for _ in range(partitions):
        cluster.partition([1, 2, 3], [4, 5])
        cluster.run_for(1.0)
        view_events += 1
        cluster.heal()
        cluster.run_for(1.0)
        view_events += 1
    exchange_during_faults = totals() - exchange_before
    cluster.assert_converged()
    return {
        "actions": actions_between,
        "exchange_msgs_during_actions": exchange_during_actions,
        "view_events": view_events,
        "exchange_msgs_during_faults": exchange_during_faults,
    }


def test_exchange_cost_scales_with_membership_not_actions(benchmark):
    result = benchmark.pedantic(run_membership_cost, rounds=1,
                                iterations=1)
    # Zero engine-level acknowledgment traffic per action.
    assert result["exchange_msgs_during_actions"] == 0
    # Exchange traffic appears exactly around membership events.
    assert result["exchange_msgs_during_faults"] > 0
    per_event = (result["exchange_msgs_during_faults"]
                 / result["view_events"])
    lines = [
        "Ablation E6: end-to-end exchange traffic vs workload",
        "",
        format_table(
            ["phase", "actions", "view changes", "exchange messages"],
            [["steady state", result["actions"], 0,
              result["exchange_msgs_during_actions"]],
             ["partition/merge cycles", 0, result["view_events"],
              result["exchange_msgs_during_faults"]]]),
        "",
        f"exchange messages per membership event: {per_event:.1f}",
        "paper claim: one end-to-end round per connectivity change,"
        " zero per action.",
    ]
    write_report("membership_cost", lines)
