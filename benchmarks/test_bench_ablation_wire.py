"""Ablation — wire batching (coalesced multicasts + piggybacked acks).

Sweeps ``WireBatchConfig.max_batch`` over the open-loop burst workload
of the ``wire_batching`` wall-clock scenario.  Batching is a transport
optimisation, so the guard is transparency: every variant must converge
to the identical database digest, and ``max_batch = 1`` must reproduce
the unbatched datapath exactly (same event count, same datagrams).
What's allowed to change — and what the table reports — is the
datagram count, the bytes on the wire, and the simulator event count
(fewer datagrams = fewer delivery events per action).
"""

from bench_common import write_report
from bench_wallclock import WIRE_SWEEP, _wire_run
from repro.gcs import GcsSettings
from repro.net import WireBatchConfig

ACTIONS = 600


def run_sweep():
    reference, ref_digest = _wire_run(GcsSettings(), ACTIONS)
    variants = {}
    for max_batch in WIRE_SWEEP:
        stats, digest = _wire_run(
            GcsSettings(wire=WireBatchConfig(max_batch=max_batch)),
            ACTIONS)
        variants[max_batch] = (stats, digest)
    return reference, ref_digest, variants


def check_shape(reference, ref_digest, variants):
    # max_batch=1 constructs no batcher: bit-identical to unbatched.
    base, base_digest = variants[1]
    assert base["events"] == reference["events"]
    assert base["datagrams"] == reference["datagrams"]
    assert base["bytes_sent"] == reference["bytes_sent"]
    # Transparency: every variant converged to the same state.
    assert all(digest == ref_digest
               for _stats, digest in variants.values())
    # The coalescer earns its keep: monotone datagram reduction with
    # batch depth, and a real cut at the top of the sweep.
    datagrams = [variants[b][0]["datagrams"] for b in WIRE_SWEEP]
    assert all(later <= earlier
               for earlier, later in zip(datagrams, datagrams[1:]))
    assert variants[64][0]["datagrams"] < variants[1][0]["datagrams"]
    assert variants[64][0]["events"] < variants[1][0]["events"]


def test_wire_batching_ablation(benchmark):
    reference, ref_digest, variants = benchmark.pedantic(
        run_sweep, rounds=1, iterations=1)
    check_shape(reference, ref_digest, variants)
    header = (f"{'max_batch':>9} {'datagrams':>10} {'bytes':>10} "
              f"{'events':>9} {'actions/wall-s':>14}")
    lines = [
        f"Ablation: wire batching ({ACTIONS} open-loop actions, "
        f"5 replicas)",
        "",
        header,
        "-" * len(header),
    ]
    for max_batch in WIRE_SWEEP:
        stats, _digest = variants[max_batch]
        lines.append(f"{max_batch:>9} {stats['datagrams']:>10} "
                     f"{stats['bytes_sent']:>10} {stats['events']:>9} "
                     f"{stats['actions_per_wall_sec']:>14}")
    top = variants[WIRE_SWEEP[-1]][0]
    lines += [
        "",
        f"datagram reduction at max_batch=64: "
        f"{variants[1][0]['datagrams'] / top['datagrams']:.2f}x; "
        f"identical digests across the sweep.",
        "max_batch=1 constructs no batcher and matches the unbatched "
        "datapath bit for bit.",
    ]
    write_report("ablation_wire", lines)
