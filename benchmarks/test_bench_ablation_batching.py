"""Experiment E7 (ablation) — group commit batching.

The engine's one forced write per action happens at the *originating*
replica, so batching matters exactly when multiple clients share a
node's disk.  This ablation co-locates all clients on replica 1: with
group commit their journal writes share platter syncs and throughput
scales; with ``max_batch = 1`` the single disk serializes at
~1/forced_write_latency ≈ 105 writes/s and becomes the ceiling.
"""

import pytest

from bench_common import N_REPLICAS, write_report
from repro.baselines import EngineSystem
from repro.bench import ClosedLoopClient, summarize, \
    throughput_series_table
from repro.core import EngineConfig
from repro.net import lan_profile
from repro.storage import DiskProfile

CLIENTS = [1, 4, 8]


def factory(max_batch):
    def build():
        profile = DiskProfile(forced_write_latency=0.0095,
                              max_batch=max_batch)
        return EngineSystem(N_REPLICAS, network_profile=lan_profile(),
                            disk_profile=profile,
                            engine_config=EngineConfig())
    return build


def run_colocated(build, clients, duration=3.0, warmup=1.0):
    """Closed loop with every client pinned to node 1."""
    system = build()
    system.start(settle=2.0)
    loop = [ClosedLoopClient(system, system.nodes[0], i + 1)
            for i in range(clients)]
    for client in loop:
        client.start()
    system.sim.run(until=system.sim.now + warmup)
    for client in loop:
        client.latencies.clear()
    system.sim.run(until=system.sim.now + duration)
    latencies = []
    for client in loop:
        client.stop()
        latencies.extend(client.latencies)
    return summarize(system.name, clients, duration, latencies, {})


def run_ablation():
    series = {}
    for label, max_batch in (("group-commit", None),
                             ("no-batching", 1)):
        series[label] = [run_colocated(factory(max_batch), clients)
                         for clients in CLIENTS]
    return series


def test_group_commit_batching(benchmark):
    series = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    def at(name, clients):
        return next(r.throughput for r in series[name]
                    if r.clients == clients)

    # Single client: indistinguishable (nothing to batch).
    assert at("group-commit", 1) == pytest.approx(at("no-batching", 1),
                                                  rel=0.15)
    # Eight co-located clients: the unbatched disk is the ceiling
    # (~105 forced writes/s shared with checkpoints), group commit
    # scales well past it.
    assert at("no-batching", 8) < 120
    assert at("group-commit", 8) > 1.8 * at("no-batching", 8)
    lines = [
        "Ablation E7: group commit batching "
        "(engine, all clients co-located on replica 1)",
        "",
        throughput_series_table(series),
        "",
        "group commit lets co-located clients' forced journal writes",
        "share platter syncs; without it the one disk serializes at",
        "~105 writes/s and caps throughput.",
    ]
    write_report("ablation_batching", lines)
