"""Experiment E4 (ablation) — the cost of per-action acknowledgments.

The paper's central argument is that eliminating per-action end-to-end
acknowledgments pays: COReL issues ~n multicasts and one forced write
*per replica* per action, two-phase commit ~2n unicasts and two forced
writes in the critical path, while the engine issues one action
multicast and one forced write at the originator (GCS stability acks
are batched and amortized).  This ablation measures the realized
per-action resource costs of all three protocols on identical
substrates.
"""

from bench_common import (corel_factory, engine_factory, twopc_factory,
                          write_report)
from repro.bench import per_action_cost_table, run_latency_probe

ACTIONS = 500


def run_costs():
    return [
        run_latency_probe(engine_factory(), actions=ACTIONS),
        run_latency_probe(corel_factory(), actions=ACTIONS),
        run_latency_probe(twopc_factory(), actions=ACTIONS),
    ]


def check_shape(results):
    by_name = {r.system: r for r in results}
    engine = by_name["engine"]
    corel = by_name["corel"]
    twopc = by_name["2pc"]
    # Forced writes per action: engine pays ~1 (originator only),
    # COReL ~14 (every replica), 2PC ~15 (every replica prepare +
    # coordinator commit).
    assert engine.per_action("forced_writes") < 3
    assert corel.per_action("forced_writes") > 10
    assert twopc.per_action("forced_writes") > 10
    # Datagrams per action: the engine sends far fewer than COReL's
    # action + per-replica ack multicasts and 2PC's 3(n-1) unicasts.
    assert engine.per_action("datagrams") < corel.per_action("datagrams")
    assert engine.per_action("datagrams") < twopc.per_action("datagrams")


def test_per_action_protocol_costs(benchmark):
    results = benchmark.pedantic(run_costs, rounds=1, iterations=1)
    check_shape(results)
    lines = [
        "Ablation E4: per-action protocol costs (lower is better)",
        "",
        per_action_cost_table(results, ["forced_writes", "datagrams",
                                        "bytes"]),
        "",
        "paper cost model: engine = 1 forced write + 1 multicast;",
        "COReL = 1 forced write/replica + n multicasts;"
        " 2PC = 2 forced writes + 2n unicasts.",
    ]
    write_report("ablation_acks", lines)
