"""Experiment E11 (ablation) — checkpoint interval vs recovery cost.

Green application durability is asynchronous; the checkpoint timer
bounds how much green history a crash rolls back (the vulnerable
record guards correctness either way).  Sparser checkpoints mean less
steady-state disk traffic but a longer catch-up retransmission when a
crashed replica returns.  This ablation quantifies that trade.
"""

import pytest

from bench_common import write_report
from repro.bench import format_table
from repro.core import EngineConfig, ReplicaCluster
from repro.gcs import GcsSettings
from repro.storage import DiskProfile

INTERVALS = [0.05, 0.25, 1.0]


def run_point(checkpoint_interval, seed=0):
    cluster = ReplicaCluster(
        n=3, seed=seed,
        gcs_settings=GcsSettings(heartbeat_interval=0.02,
                                 failure_timeout=0.08,
                                 gather_settle=0.02,
                                 phase_timeout=0.15),
        disk_profile=DiskProfile(forced_write_latency=0.001),
        engine_config=EngineConfig(
            checkpoint_interval=checkpoint_interval))
    cluster.start_all(settle=1.0)
    client = cluster.client(1)
    busy = [True]

    def again(_a=None, _p=None, _r=None):
        if busy[0]:
            client.submit(("INC", "n", 1), on_complete=again)
    again()
    cluster.run_for(4.0)

    syncs_before = cluster.replicas[3].disk.syncs
    cluster.crash(3)
    cluster.run_for(0.5)
    greens_before_recovery = None
    cluster.recover(3)
    greens_before_recovery = cluster.replicas[3].engine.queue.green_count
    live_green = cluster.replicas[1].engine.queue.green_count
    rollback = live_green - greens_before_recovery

    start = cluster.sim.now
    while cluster.replicas[3].engine.queue.green_count < live_green \
            and cluster.sim.now - start < 10.0:
        cluster.run_for(0.1)
    catch_up = cluster.sim.now - start
    busy[0] = False
    cluster.run_for(2.0)
    cluster.assert_converged()
    return {
        "interval": checkpoint_interval,
        "rollback_actions": rollback,
        "catch_up_seconds": catch_up,
        "steady_syncs": syncs_before,
    }


def run_ablation():
    return [run_point(interval) for interval in INTERVALS]


def test_checkpoint_interval_tradeoff(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    by_interval = {r["interval"]: r for r in rows}
    # Sparser checkpoints roll back more green history...
    assert by_interval[1.0]["rollback_actions"] >= \
        by_interval[0.05]["rollback_actions"]
    # ...while denser checkpoints cost more steady-state disk syncs.
    assert by_interval[0.05]["steady_syncs"] > \
        by_interval[1.0]["steady_syncs"]
    # Either way the exchange repairs everything (convergence asserted
    # inside run_point).
    lines = [
        "Ablation E11: checkpoint interval vs recovery cost",
        "",
        format_table(
            ["interval s", "rolled-back greens", "catch-up s",
             "steady-state syncs"],
            [[r["interval"], r["rollback_actions"],
              f"{r['catch_up_seconds']:.2f}", r["steady_syncs"]]
             for r in rows]),
        "",
        "correctness is checkpoint-independent (the vulnerable record",
        "guards the window); the interval only trades steady-state",
        "disk traffic against recovery retransmission volume.",
    ]
    write_report("ablation_checkpoint", lines)
