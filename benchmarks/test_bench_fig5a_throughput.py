"""Experiment E1 — Figure 5(a): throughput vs number of clients.

14 replicas; 1..14 closed-loop clients; engine (forced writes) vs
COReL vs two-phase commit.  Reproduction target: the engine sustains
increasingly more throughput without saturating, COReL pays for its
per-action end-to-end acknowledgments and per-replica forced writes,
and 2PC trails with its two serial forced writes and 2n unicasts.
"""

from bench_common import (CLIENT_COUNTS, corel_factory, engine_factory,
                          twopc_factory, write_report)
from repro.bench import (sweep_clients, throughput_chart,
                         throughput_series_table)


def run_figure_5a():
    series = {
        "engine": sweep_clients(engine_factory(), CLIENT_COUNTS,
                                duration=3.0, warmup=1.0),
        "corel": sweep_clients(corel_factory(), CLIENT_COUNTS,
                               duration=3.0, warmup=1.0),
        "2pc": sweep_clients(twopc_factory(), CLIENT_COUNTS,
                             duration=3.0, warmup=1.0),
    }
    return series


def check_shape(series):
    """The paper's qualitative claims, asserted."""
    def at(name, clients):
        return next(r.throughput for r in series[name]
                    if r.clients == clients)

    top = CLIENT_COUNTS[-1]
    # Ordering at full load: engine > COReL > 2PC.
    assert at("engine", top) > at("corel", top) > at("2pc", top)
    # The engine keeps scaling: its 14-client point clearly beats its
    # 7-client point (it "has not reached its processing limit").
    assert at("engine", 14) > 1.6 * at("engine", 7)
    # Every system improves from 1 client to 14 (closed-loop scaling).
    for name in series:
        assert at(name, top) > at(name, 1)


def test_fig5a_throughput_comparison(benchmark):
    series = benchmark.pedantic(run_figure_5a, rounds=1, iterations=1)
    check_shape(series)
    lines = [
        "Figure 5(a) reproduction: throughput (actions/second),"
        " 14 replicas",
        "",
        throughput_series_table(series),
        "",
        throughput_chart(series),
        "",
        "paper shape: engine > COReL > 2PC at every client count;",
        "engine not saturated at 14 clients.",
    ]
    write_report("fig5a_throughput", lines)
