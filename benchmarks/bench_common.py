"""Shared configuration and reporting for the benchmark suite.

All benchmarks use the paper's setup (Section 7): 14 replicas on a
100 Mbit/s LAN, 200-byte actions, closed-loop clients.  Throughput and
latency are measured in *simulated* time — pytest-benchmark's wall
clock only reports how long the simulation itself takes to run.

Every benchmark writes its paper-style table to
``benchmarks/results/<name>.txt`` (and prints it), so the artifacts
survive pytest's output capture.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, List, Optional

from repro.baselines import CorelSystem, EngineSystem, TwoPCSystem
from repro.core import EngineConfig
from repro.net import lan_profile
from repro.obs.metrics import LATENCY_BUCKETS, Histogram
from repro.storage import DiskProfile

N_REPLICAS = 14
CLIENT_COUNTS = [1, 2, 4, 7, 10, 14]
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
BENCH_WALLCLOCK_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_wallclock.json")


#: name → scenario callable ``(smoke: bool) -> stats dict``.  The
#: wall-clock harness registers every scenario here via the
#: :func:`scenario` decorator, so the harness CLI, the ablation tests
#: that reuse scenario runners, and EXPERIMENTS.md all enumerate one
#: list instead of keeping private copies that drift.
SCENARIO_REGISTRY: Dict[str, Callable[[bool], Dict[str, Any]]] = {}


def scenario(name: str) -> Callable[[Callable[[bool], Dict[str, Any]]],
                                    Callable[[bool], Dict[str, Any]]]:
    """Register a wall-clock scenario under ``name`` (last writer wins,
    so re-importing a benchmark module is harmless)."""
    def register(fn: Callable[[bool], Dict[str, Any]]
                 ) -> Callable[[bool], Dict[str, Any]]:
        SCENARIO_REGISTRY[name] = fn
        return fn
    return register


def open_loop_burst(cluster: Any, actions: int, *, node: int = 1,
                    update: Any = ("INC", "n", 1),
                    sim_deadline: float = 120.0,
                    label: str = "burst") -> None:
    """Submit ``actions`` updates at ``node`` up front, then run the
    simulation until every one is green at the submitting replica.

    This is the shared workload shape of the wire-batching ablation
    (the sustained per-node send rate is what engages — or doesn't —
    the coalescer) and the per-shard load of the sharding weak-scaling
    scenario; it used to be private boilerplate of ``bench_wallclock``.
    """
    client = cluster.client(node)
    base = cluster.replicas[node].green_count
    for _ in range(actions):
        client.submit(update)
    deadline = cluster.sim.now + sim_deadline
    while cluster.replicas[node].green_count - base < actions:
        if cluster.sim.now >= deadline:
            raise SystemExit(f"{label} workload stalled")
        cluster.run_for(0.25)
    cluster.assert_converged()


def paper_disk() -> DiskProfile:
    """Calibrated so one forced write + safe delivery lands near the
    paper's ~11.4 ms single-client latency."""
    return DiskProfile(forced_write_latency=0.0095)


def engine_factory(seed: int = 0, forced_writes: bool = True,
                   observability: Optional[Any] = None,
                   gcs_settings: Optional[Any] = None):
    def build():
        return EngineSystem(
            N_REPLICAS, seed=seed, network_profile=lan_profile(),
            disk_profile=paper_disk(), gcs_settings=gcs_settings,
            engine_config=EngineConfig(
                forced_client_writes=forced_writes),
            observability=observability)
    return build


def latency_summary(latencies: List[float]) -> Dict[str, float]:
    """Bucketed latency digest via the observability Histogram (same
    log-spaced layout the span trackers use), replacing ad-hoc binning
    in benchmark reports."""
    histogram = Histogram(LATENCY_BUCKETS)
    for value in latencies:
        histogram.observe(value)
    return {
        "count": histogram.count,
        "mean_ms": round(histogram.mean * 1e3, 3),
        "p50_ms": round(histogram.quantile(0.50) * 1e3, 3),
        "p95_ms": round(histogram.quantile(0.95) * 1e3, 3),
        "p99_ms": round(histogram.quantile(0.99) * 1e3, 3),
    }


def corel_factory(seed: int = 0):
    def build():
        return CorelSystem(N_REPLICAS, seed=seed,
                           network_profile=lan_profile(),
                           disk_profile=paper_disk())
    return build


def twopc_factory(seed: int = 0):
    def build():
        return TwoPCSystem(N_REPLICAS, seed=seed,
                           network_profile=lan_profile(),
                           disk_profile=paper_disk())
    return build


def record_wallclock(label: str, mode: str,
                     scenarios: Dict[str, Dict[str, Any]],
                     path: Optional[str] = None,
                     timestamp: Optional[float] = None) -> Dict[str, Any]:
    """Merge one labelled wall-clock measurement into BENCH_wallclock.json.

    The file keeps one entry per label (``baseline``, ``pure``,
    ``compiled``, ...); re-recording a label replaces its scenarios
    one by one (scenarios it did not run are kept, so a
    single-scenario rerun cannot wipe a full entry).  Two derived
    speedups are maintained at the top level:

    * ``fig5a_events_per_sec_speedup`` — the newest non-baseline entry
      vs ``baseline`` (the historical perf trajectory);
    * ``fig5a_compiled_speedup`` — ``compiled`` vs ``pure``, present
      only when both builds have been measured (the mypyc win).

    ``peak_heap`` is normalised on the way in: a scenario that never
    sampled the kernel heap must report ``None``, and legacy ``0``
    placeholders are rewritten to ``None`` (a run that dispatched any
    event has a peak of at least 1, so 0 always meant "not sampled").
    """
    path = path or BENCH_WALLCLOCK_PATH
    doc: Dict[str, Any] = {"schema": 1, "entries": {}}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                loaded = json.load(handle)
            if isinstance(loaded, dict):
                doc = loaded
        except (OSError, ValueError):
            pass
    doc["schema"] = 1
    entries = doc.setdefault("entries", {})
    for stats in scenarios.values():
        if not stats.get("peak_heap"):
            stats["peak_heap"] = None
    entry = entries.get(label)
    if not isinstance(entry, dict):
        entry = entries[label] = {}
    entry["mode"] = mode
    merged = entry.setdefault("scenarios", {})
    merged.update(scenarios)
    for other in entries.values():
        if not isinstance(other, dict):
            continue
        for stats in other.get("scenarios", {}).values():
            if isinstance(stats, dict) and not stats.get("peak_heap"):
                stats["peak_heap"] = None
    if timestamp is not None:
        entry["timestamp"] = timestamp

    def fig5a_rate(name: str) -> Optional[float]:
        try:
            return entries[name]["scenarios"]["fig5a_throughput"][
                "events_per_sec"]
        except KeyError:
            return None

    base = fig5a_rate("baseline")
    # Perf trajectory: the most recently recorded non-baseline fig5a
    # measurement (by entry timestamp) against the baseline.
    newest = max(
        (name for name in entries
         if name != "baseline" and fig5a_rate(name) is not None),
        key=lambda name: entries[name].get("timestamp", 0.0),
        default=None)
    cur = fig5a_rate(newest) if newest is not None else None
    if base and cur:
        doc["fig5a_events_per_sec_speedup"] = round(cur / base, 2)
    pure, compiled = fig5a_rate("pure"), fig5a_rate("compiled")
    if pure and compiled:
        doc["fig5a_compiled_speedup"] = round(compiled / pure, 2)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2)
        handle.write("\n")
    return doc


def write_report(name: str, lines: List[str]) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    text = "\n".join(lines) + "\n"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(text)
    return path
