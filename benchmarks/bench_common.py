"""Shared configuration and reporting for the benchmark suite.

All benchmarks use the paper's setup (Section 7): 14 replicas on a
100 Mbit/s LAN, 200-byte actions, closed-loop clients.  Throughput and
latency are measured in *simulated* time — pytest-benchmark's wall
clock only reports how long the simulation itself takes to run.

Every benchmark writes its paper-style table to
``benchmarks/results/<name>.txt`` (and prints it), so the artifacts
survive pytest's output capture.
"""

from __future__ import annotations

import os
from typing import List

from repro.baselines import CorelSystem, EngineSystem, TwoPCSystem
from repro.core import EngineConfig
from repro.net import lan_profile
from repro.storage import DiskProfile

N_REPLICAS = 14
CLIENT_COUNTS = [1, 2, 4, 7, 10, 14]
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def paper_disk() -> DiskProfile:
    """Calibrated so one forced write + safe delivery lands near the
    paper's ~11.4 ms single-client latency."""
    return DiskProfile(forced_write_latency=0.0095)


def engine_factory(seed: int = 0, forced_writes: bool = True):
    def build():
        return EngineSystem(
            N_REPLICAS, seed=seed, network_profile=lan_profile(),
            disk_profile=paper_disk(),
            engine_config=EngineConfig(
                forced_client_writes=forced_writes))
    return build


def corel_factory(seed: int = 0):
    def build():
        return CorelSystem(N_REPLICAS, seed=seed,
                           network_profile=lan_profile(),
                           disk_profile=paper_disk())
    return build


def twopc_factory(seed: int = 0):
    def build():
        return TwoPCSystem(N_REPLICAS, seed=seed,
                           network_profile=lan_profile(),
                           disk_profile=paper_disk())
    return build


def write_report(name: str, lines: List[str]) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    text = "\n".join(lines) + "\n"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(text)
    return path
