"""Experiment E8 — the paper's WAN conjecture, tested.

Section 7: "it is expected that on wide area network, where network
latency becomes a more important factor, COReL will further outperform
two-phase commit."

We rerun the single-client latency probe on a 40 ms one-way WAN
profile.  Finding: the group-communication protocols *remain* ahead of
2PC on the WAN (the conjecture holds in its weak form), but in this
substrate the gap does not widen — the sequencer-based total order
costs one extra wide-area hop (origin -> sequencer stamp -> members)
that offsets 2PC's extra forced write once propagation dwarfs disk
latency.  A ring- or token-ordered GCS would trade those hops
differently; see EXPERIMENTS.md.
"""

import pytest

from bench_common import (corel_factory, engine_factory, paper_disk,
                          twopc_factory, write_report)
from repro.baselines import CorelSystem, EngineSystem, TwoPCSystem
from repro.bench import format_table, run_latency_probe
from repro.core import EngineConfig
from repro.gcs import GcsSettings
from repro.net import wan_profile

ACTIONS = 150


def wan_gcs_settings():
    """Timers scaled for 40 ms one-way links."""
    return GcsSettings(heartbeat_interval=0.2, failure_timeout=1.0,
                       gather_settle=0.2, phase_timeout=2.0,
                       stamp_window=0.002, ack_window=0.005,
                       nack_timeout=0.3)


def wan_engine():
    return EngineSystem(14, network_profile=wan_profile(loss_rate=0.0),
                        disk_profile=paper_disk(),
                        gcs_settings=wan_gcs_settings(),
                        engine_config=EngineConfig())


def wan_corel():
    return CorelSystem(14, network_profile=wan_profile(loss_rate=0.0),
                       disk_profile=paper_disk(),
                       gcs_settings=wan_gcs_settings())


def wan_twopc():
    return TwoPCSystem(14, network_profile=wan_profile(loss_rate=0.0),
                       disk_profile=paper_disk())


def run_wan_vs_lan():
    lan = {
        "engine": run_latency_probe(engine_factory(), actions=ACTIONS),
        "corel": run_latency_probe(corel_factory(), actions=ACTIONS),
        "2pc": run_latency_probe(twopc_factory(), actions=ACTIONS),
    }
    wan = {
        "engine": run_latency_probe(wan_engine, actions=ACTIONS,
                                    settle=5.0),
        "corel": run_latency_probe(wan_corel, actions=ACTIONS,
                                   settle=5.0),
        "2pc": run_latency_probe(wan_twopc, actions=ACTIONS, settle=5.0),
    }
    return lan, wan


def test_wan_group_communication_stays_ahead_of_2pc(benchmark):
    lan, wan = benchmark.pedantic(run_wan_vs_lan, rounds=1, iterations=1)
    lan_gap = lan["2pc"].mean_latency - lan["corel"].mean_latency
    wan_gap = wan["2pc"].mean_latency - wan["corel"].mean_latency
    # Weak form of the conjecture: COReL (and the engine) remain ahead
    # of 2PC on the WAN too.
    assert wan_gap > 0, (lan_gap, wan_gap)
    assert wan["engine"].mean_latency < wan["2pc"].mean_latency
    # Latencies scale with propagation: roughly 5-10x the LAN values.
    for name in ("engine", "corel", "2pc"):
        assert wan[name].mean_latency > 4 * lan[name].mean_latency

    rows = []
    for name in ("engine", "corel", "2pc"):
        rows.append([name,
                     f"{lan[name].mean_latency_ms:8.1f}",
                     f"{wan[name].mean_latency_ms:8.1f}"])
    lines = [
        "Experiment E8: the WAN conjecture (single-client mean latency)",
        "",
        format_table(["system", "LAN ms", "WAN ms"], rows),
        "",
        f"COReL-vs-2PC gap: LAN {lan_gap * 1e3:.1f} ms -> "
        f"WAN {wan_gap * 1e3:.1f} ms",
        "finding: group communication stays ahead of 2PC on the WAN",
        "(the conjecture's weak form); the gap does not widen here",
        "because the sequencer total order costs one extra wide-area",
        "hop, offsetting 2PC's extra forced write.",
    ]
    write_report("wan_latency", lines)
