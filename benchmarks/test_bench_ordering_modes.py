"""Experiment E10 (ablation) — ordering mechanism: sequencer vs token.

The EVS guarantees are mechanism-agnostic; constant factors are not.
The sequencer concentrates ordering work at one member and costs an
extra hop per message (origin -> sequencer stamp -> members); a
Totem-style token amortizes stamping and stability perfectly across
the ring but makes a sender wait for the token.

Expected shape: comparable single-client latency on a LAN (the disk
dominates both); on a WAN the token's full-ring rotations are
disastrous for latency while the sequencer pays only one extra hop —
quantifying the E8 discussion.
"""

import pytest

from bench_common import N_REPLICAS, paper_disk, write_report
from repro.baselines import EngineSystem
from repro.bench import format_table, run_closed_loop, run_latency_probe
from repro.core import EngineConfig
from repro.gcs import GcsSettings
from repro.net import lan_profile, wan_profile


def lan_settings(mode):
    return GcsSettings(ordering_mode=mode)


def wan_settings(mode):
    return GcsSettings(ordering_mode=mode, heartbeat_interval=0.2,
                       failure_timeout=1.0, gather_settle=0.2,
                       phase_timeout=2.0, stamp_window=0.002,
                       ack_window=0.005, nack_timeout=0.3,
                       token_timeout=5.0)


def factory(mode, wan=False):
    def build():
        profile = wan_profile(loss_rate=0.0) if wan else lan_profile()
        settings = wan_settings(mode) if wan else lan_settings(mode)
        return EngineSystem(N_REPLICAS, network_profile=profile,
                            disk_profile=paper_disk(),
                            gcs_settings=settings,
                            engine_config=EngineConfig())
    return build


def run_modes():
    out = {}
    for mode in ("sequencer", "token"):
        lan_lat = run_latency_probe(factory(mode), actions=300)
        lan_thr = run_closed_loop(factory(mode), clients=14,
                                  duration=3.0, warmup=1.0)
        wan_lat = run_latency_probe(factory(mode, wan=True),
                                    actions=60, settle=5.0)
        out[mode] = (lan_lat, lan_thr, wan_lat)
    return out


def test_ordering_mechanism_tradeoffs(benchmark):
    results = benchmark.pedantic(run_modes, rounds=1, iterations=1)
    seq_lan_lat, seq_lan_thr, seq_wan_lat = results["sequencer"]
    tok_lan_lat, tok_lan_thr, tok_wan_lat = results["token"]
    # LAN: both land in the same regime — the token adds roughly one
    # ring rotation (~1 ms/hop x 14) of stamp/stability wait on top of
    # the shared disk cost.
    assert tok_lan_lat.mean_latency > seq_lan_lat.mean_latency
    assert abs(seq_lan_lat.mean_latency
               - tok_lan_lat.mean_latency) < 0.025
    # WAN: the token's ring rotations dwarf the sequencer's extra hop.
    assert tok_wan_lat.mean_latency > 2 * seq_wan_lat.mean_latency
    # Both modes sustain real throughput on the LAN.
    assert seq_lan_thr.throughput > 500
    assert tok_lan_thr.throughput > 500

    rows = [
        ["sequencer", f"{seq_lan_lat.mean_latency_ms:7.1f}",
         f"{seq_lan_thr.throughput:8.1f}",
         f"{seq_wan_lat.mean_latency_ms:8.1f}"],
        ["token", f"{tok_lan_lat.mean_latency_ms:7.1f}",
         f"{tok_lan_thr.throughput:8.1f}",
         f"{tok_wan_lat.mean_latency_ms:8.1f}"],
    ]
    lines = [
        "Ablation E10: ordering mechanism (same EVS guarantees)",
        "",
        format_table(["mode", "LAN lat ms", "LAN act/s @14",
                      "WAN lat ms"], rows),
        "",
        "LAN: both disk-dominated; the token adds ~1 idle-ring",
        "rotation of stamp/stability wait.  WAN: the token pays",
        "full-ring rotations per action; the sequencer pays one extra",
        "hop — the constant-factor story behind EXPERIMENTS.md E8.",
    ]
    write_report("ordering_modes", lines)
