"""Build script: plain install by default, mypyc-accelerated on request.

The default build is pure python (also the shim for editable installs
on toolchains without the wheel package).  Setting ``REPRO_ACCEL=1``
in the environment compiles the hot-core module set — the exact list
in ``src/repro/accel/modules.py`` — to C extensions with mypyc::

    pip install mypy setuptools           # mypyc ships with mypy
    REPRO_ACCEL=1 pip install . --no-build-isolation

The ``.py`` sources are installed either way (the extensions merely
shadow them on the import path), so ``REPRO_FORCE_PURE=1`` can always
pin a process back to the pure reference build — that is what the
``compiled_core`` bench scenario and ``tests/test_accel_parity.py``
diff against.  If ``REPRO_ACCEL=1`` is set but mypy/mypyc is missing,
the build fails loudly rather than silently producing a pure install
that benchmarks would misattribute.
"""

import os
import sys

from setuptools import setup


def _accel_module_files():
    """Load ACCEL_MODULES by file path (the package isn't importable
    during its own build) and map the names to source files."""
    import importlib.util

    here = os.path.dirname(os.path.abspath(__file__))
    modules_py = os.path.join(here, "src", "repro", "accel", "modules.py")
    spec = importlib.util.spec_from_file_location("_accel_modules",
                                                  modules_py)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return [os.path.join("src", *name.split(".")) + ".py"
            for name in module.ACCEL_MODULES]


if os.environ.get("REPRO_ACCEL", "") not in ("", "0"):
    try:
        from mypyc.build import mypycify
    except ImportError:
        sys.exit("REPRO_ACCEL=1 requires mypyc (pip install mypy); "
                 "unset REPRO_ACCEL for a pure-python install")
    setup(ext_modules=mypycify(_accel_module_files(), opt_level="3"))
else:
    setup()
