"""Shim for editable installs on toolchains without the wheel package."""

from setuptools import setup

setup()
