"""Rendering: paper-style tables and paper-vs-measured comparisons."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .metrics import RunResult


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Simple aligned text table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i])
                         for i, cell in enumerate(row))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)


def throughput_series_table(series: Dict[str, List[RunResult]]) -> str:
    """Figure 5-style table: one row per client count, one column per
    system, cells in actions/second."""
    counts = sorted({r.clients for results in series.values()
                     for r in results})
    headers = ["clients"] + list(series)
    rows = []
    for count in counts:
        row: List[object] = [count]
        for name, results in series.items():
            match = next((r for r in results if r.clients == count), None)
            row.append(f"{match.throughput:8.1f}" if match else "-")
        rows.append(row)
    return format_table(headers, rows)


def latency_table(results: List[RunResult]) -> str:
    headers = ["system", "mean ms", "median ms", "p99 ms", "actions"]
    rows = [[r.system, f"{r.mean_latency_ms:7.2f}",
             f"{r.median_latency * 1e3:7.2f}",
             f"{r.p99_latency * 1e3:7.2f}", r.actions_completed]
            for r in results]
    return format_table(headers, rows)


def per_action_cost_table(results: List[RunResult],
                          counters: Sequence[str]) -> str:
    headers = ["system"] + [f"{c}/action" for c in counters]
    rows = []
    for r in results:
        rows.append([r.system] + [f"{r.per_action(c):8.2f}"
                                  for c in counters])
    return format_table(headers, rows)


def paper_vs_measured(rows: Iterable[Sequence[object]]) -> str:
    """Rows of (metric, paper value, measured value, verdict)."""
    return format_table(["metric", "paper", "measured", "verdict"], rows)
