"""Experiment runner: drive a system with closed-loop clients and
measure steady-state throughput and latency in simulated time."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..baselines.base import ReplicationSystemAPI
from .metrics import RunResult, summarize
from .workload import ClosedLoopClient, spread_clients

SystemFactory = Callable[[], ReplicationSystemAPI]


def run_closed_loop(factory: SystemFactory, clients: int,
                    duration: float = 10.0, warmup: float = 2.0,
                    settle: float = 2.0) -> RunResult:
    """One benchmark point: ``clients`` closed-loop clients for
    ``duration`` simulated seconds (after ``warmup``).

    A fresh system is built per point, so points are independent and
    deterministic.  Counters are measured as deltas over the
    measurement window only.
    """
    system = factory()
    system.start(settle=settle)
    loop = spread_clients(system, clients)
    for client in loop:
        client.start()

    system.sim.run(until=system.sim.now + warmup)
    baseline_counts = {c.client_id: c.completed for c in loop}
    for client in loop:
        client.latencies.clear()
    counters_before = system.counters()

    system.sim.run(until=system.sim.now + duration)
    counters_after = system.counters()

    latencies: List[float] = []
    for client in loop:
        client.stop()
        latencies.extend(client.latencies)
    counters = {key: counters_after.get(key, 0.0) - value
                for key, value in counters_before.items()}
    return summarize(system.name, clients, duration, latencies, counters)


def run_latency_probe(factory: SystemFactory, actions: int = 2000,
                      settle: float = 2.0) -> RunResult:
    """The paper's latency test: one client sends ``actions`` actions
    sequentially; report the mean response time."""
    system = factory()
    system.start(settle=settle)
    loop = ClosedLoopClient(system, system.nodes[0], 1)
    counters_before = system.counters()
    start = system.sim.now

    original = loop._on_complete

    def stop_at_quota() -> None:
        original()
        if loop.completed >= actions:
            loop.stop()
            system.sim.stop()

    loop._on_complete = stop_at_quota  # type: ignore[method-assign]
    loop.start()
    system.sim.run(until=system.sim.now + 600.0)
    duration = system.sim.now - start
    counters_after = system.counters()
    counters = {key: counters_after.get(key, 0.0) - value
                for key, value in counters_before.items()}
    return summarize(system.name, 1, duration, loop.latencies, counters)


def sweep_clients(factory: SystemFactory, client_counts: List[int],
                  duration: float = 10.0, warmup: float = 2.0
                  ) -> List[RunResult]:
    """Throughput-vs-clients series (the x-axis of Figure 5)."""
    return [run_closed_loop(factory, clients, duration, warmup)
            for clients in client_counts]
