"""ASCII line charts for benchmark reports.

Renders throughput/latency series as terminal plots so the figure
reproductions in ``benchmarks/results/`` read like the paper's figures
without any plotting dependency.

    2500 |                         d  d  d
         |                   d
         |             d
    1250 |       d                    e  e
         |    d        e  e  e
         |  d e  e
       0 +--+--+--+--+--+--+--+--+--+--+--
            1     2     4     7    10    14
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

Series = Dict[str, List[Tuple[float, float]]]


def render_chart(series: Series, width: int = 64, height: int = 16,
                 y_label: str = "", x_label: str = "") -> str:
    """Render named (x, y) series as an ASCII scatter/line chart.

    Each series is plotted with the first letter of its name; collisions
    print ``*``.  Axes are linear, auto-scaled to the data.
    """
    points = [(x, y) for values in series.values() for x, y in values]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(0.0, min(ys)), max(ys)
    if x_max == x_min:
        x_max = x_min + 1
    if y_max == y_min:
        y_max = y_min + 1

    def col(x: float) -> int:
        return int(round((x - x_min) / (x_max - x_min) * (width - 1)))

    def row(y: float) -> int:
        return int(round((y - y_min) / (y_max - y_min) * (height - 1)))

    grid = [[" "] * width for _ in range(height)]
    for name, values in series.items():
        marker = name[0]
        for x, y in values:
            r, c = row(y), col(x)
            cell = grid[height - 1 - r][c]
            grid[height - 1 - r][c] = marker if cell == " " else "*"

    label_width = max(len(f"{y_max:.0f}"), len(f"{y_min:.0f}")) + 1
    lines = []
    for i, cells in enumerate(grid):
        value = y_max - (y_max - y_min) * i / (height - 1)
        show = (i == 0 or i == height - 1 or i == (height - 1) // 2)
        label = f"{value:.0f}".rjust(label_width) if show \
            else " " * label_width
        lines.append(f"{label} |" + "".join(cells))
    lines.append(" " * label_width + " +" + "-" * width)
    ticks = " " * (label_width + 2) + (
        f"{x_min:g}".ljust(width - 8) + f"{x_max:g}".rjust(8))
    lines.append(ticks)
    legend = "   ".join(f"{name[0]} = {name}" for name in series)
    footer = []
    if y_label or x_label:
        footer.append(f"y: {y_label}   x: {x_label}".rstrip())
    footer.append(f"legend: {legend}")
    return "\n".join(lines + footer)


def throughput_chart(results_by_system, width: int = 64,
                     height: int = 14) -> str:
    """Chart throughput-vs-clients series from RunResult lists."""
    series: Series = {
        name: [(r.clients, r.throughput) for r in results]
        for name, results in results_by_system.items()
    }
    return render_chart(series, width=width, height=height,
                        y_label="actions/second", x_label="clients")
