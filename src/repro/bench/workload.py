"""Workload generation: the paper's closed-loop client model.

"The clients are constantly injecting actions into the system, the next
action from a client being introduced immediately after the previous
action from that client is completed and its result reported to the
client."  (Section 7.)

Each client writes 200-byte actions; keys are distinct per client so
the 2PC baseline's lock manager measures protocol cost, not artificial
contention (matching the paper's setup, which bypassed the database).
"""

from __future__ import annotations

from typing import List, Optional

from ..baselines.base import ReplicationSystemAPI


class ClosedLoopClient:
    """One closed-loop client bound to a node."""

    def __init__(self, system: ReplicationSystemAPI, node: int,
                 client_id: int):
        self.system = system
        self.node = node
        self.client_id = client_id
        self.submitted = 0
        self.completed = 0
        self.latencies: List[float] = []
        self._started_at = 0.0
        self._running = False

    def start(self) -> None:
        self._running = True
        self._inject()

    def stop(self) -> None:
        self._running = False

    def _inject(self) -> None:
        self.submitted += 1
        self._started_at = self.system.sim.now
        update = ("SET", f"c{self.client_id}", self.submitted)
        self.system.submit(self.node, update, self._on_complete)

    def _on_complete(self) -> None:
        self.completed += 1
        self.latencies.append(self.system.sim.now - self._started_at)
        if self._running:
            self._inject()


def spread_clients(system: ReplicationSystemAPI,
                   count: int) -> List[ClosedLoopClient]:
    """Create ``count`` clients, one per node round-robin (the paper's
    placement: at 14 clients, every computer has a replica + client)."""
    nodes = system.nodes
    return [ClosedLoopClient(system, nodes[i % len(nodes)], i + 1)
            for i in range(count)]
