"""Measurement: throughput/latency in simulated time, resource deltas."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

# Canonical percentile lives with the observability instruments; kept
# importable from here for the benchmark suite's historical call sites.
from ..obs.metrics import percentile  # noqa: F401  (re-export)


@dataclass
class RunResult:
    """One benchmark point."""

    system: str
    clients: int
    duration: float
    actions_completed: int
    throughput: float                 # actions / simulated second
    mean_latency: float               # seconds
    median_latency: float
    p99_latency: float
    counters: Dict[str, float] = field(default_factory=dict)

    @property
    def mean_latency_ms(self) -> float:
        return self.mean_latency * 1e3

    def per_action(self, counter: str) -> float:
        if self.actions_completed == 0:
            return math.nan
        return self.counters.get(counter, 0.0) / self.actions_completed


def summarize(system_name: str, clients: int, duration: float,
              latencies: List[float],
              counters: Dict[str, float]) -> RunResult:
    completed = len(latencies)
    return RunResult(
        system=system_name, clients=clients, duration=duration,
        actions_completed=completed,
        throughput=completed / duration if duration > 0 else 0.0,
        mean_latency=(sum(latencies) / completed) if completed else 0.0,
        median_latency=percentile(latencies, 0.50),
        p99_latency=percentile(latencies, 0.99),
        counters=dict(counters))
