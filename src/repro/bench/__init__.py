"""Benchmark harness: closed-loop workloads, simulated-time metrics,
experiment runner, and paper-style table rendering."""

from .charts import render_chart, throughput_chart
from .metrics import RunResult, percentile, summarize
from .runner import run_closed_loop, run_latency_probe, sweep_clients
from .tables import (format_table, latency_table, paper_vs_measured,
                     per_action_cost_table, throughput_series_table)
from .workload import ClosedLoopClient, spread_clients

__all__ = [
    "ClosedLoopClient",
    "RunResult",
    "render_chart",
    "throughput_chart",
    "format_table",
    "latency_table",
    "paper_vs_measured",
    "per_action_cost_table",
    "percentile",
    "run_closed_loop",
    "run_latency_probe",
    "spread_clients",
    "summarize",
    "sweep_clients",
    "throughput_series_table",
]
