"""Active actions: deterministic stored procedures (Section 6).

"Modern database applications exploit the ability to execute a
procedure specified by a transaction...  supported by our algorithm,
provided that the invoked procedure is deterministic and depends solely
on the current database state.  The key is that the procedure will be
invoked at the time the action is ordered."

Registration must happen identically at every replica (the procedure is
part of the replicated state machine's code, not its data).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..db import Database
from .service import ReplicatedService

Procedure = Callable[[Dict[str, Any], Any], Any]


class ActiveTransactions:
    """Register and invoke deterministic procedures as ordered actions."""

    def __init__(self, service: ReplicatedService):
        self.service = service

    def register(self, name: str, procedure: Procedure) -> None:
        """Register ``procedure`` on the local replica (crash-durable).

        The same registration must be performed at every replica before
        any invocation can be ordered — enforce with
        :func:`register_everywhere` in deployments built by
        :class:`~repro.core.ReplicaCluster`.
        """
        self.service.replica.register_procedure(name, procedure)

    def invoke(self, name: str, args: Any,
               on_complete: Optional[Callable] = None):
        """Submit an active action; the procedure runs at ordering time
        at every replica, on the identical green state."""
        return self.service.update(("CALL", name, args),
                                   on_complete=on_complete)


def register_everywhere(cluster, name: str, procedure: Procedure) -> None:
    """Register an active procedure on every replica of a cluster."""
    for replica in cluster.replicas.values():
        replica.register_procedure(name, procedure)
