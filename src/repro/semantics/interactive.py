"""Interactive transactions mimicked with two actions (Section 6).

An interactive transaction reads data, lets a user (a non-deterministic
process) decide, then writes.  The paper's construction:

1. the first action reads the necessary data;
2. the second is an *active* action that encapsulates the user's
   update but first checks that the values read are still valid; if
   not, the update is not applied — "as if the transaction was aborted
   in the traditional sense".

Because every replica applies the identical certification procedure to
the identical state, "if one server aborts, all of the servers will
abort that (trans)action".
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from .service import QueryService, ReplicatedService


class InteractiveTransaction:
    """One optimistic read-certify-write transaction."""

    def __init__(self, service: ReplicatedService):
        self.service = service
        self.read_set: List[Tuple[str, Any]] = []
        self._committed: Optional[bool] = None
        self._submitted = False

    # -- phase 1: read ----------------------------------------------------
    def read(self, key: str,
             query_service: QueryService = QueryService.WEAK) -> Any:
        """Read ``key`` and remember the observed value."""
        value = self.service.query(("GET", key), service=query_service)
        self.read_set.append((key, value))
        return value

    # -- phase 2: certify + write ----------------------------------------
    def commit(self, updates: Dict[str, Any],
               on_done: Optional[Callable[[bool], None]] = None):
        """Submit the certification action.

        ``on_done(committed)`` reports whether the transaction applied
        (True) or aborted because a read value changed (False) — the
        decision is identical at every replica.
        """
        if self._submitted:
            raise RuntimeError("transaction already committed")
        self._submitted = True

        def complete(_action, _position, result) -> None:
            committed = bool(result and result[0])
            self._committed = committed
            if on_done is not None:
                on_done(committed)

        args = (tuple(self.read_set), tuple(sorted(updates.items())))
        return self.service.update(("CALL", "certify", args),
                                   on_complete=complete)

    @property
    def committed(self) -> Optional[bool]:
        """None until the decision is ordered; then True/False."""
        return self._committed
