"""Commutative update semantics (Section 6).

"In the commutative case, the order is irrelevant as long as all
actions are eventually applied."  The paper's example is an inventory
where temporary negative stock is allowed: increments and decrements
commute, so replicas in different components can keep taking orders and
the stocks converge after merge.
"""

from __future__ import annotations

from typing import Callable, Optional

from .service import QueryService, ReplicatedService


class InventoryStore:
    """A commutative counter store (inventory with relaxed stock)."""

    def __init__(self, service: ReplicatedService, prefix: str = "inv:",
                 allow_negative: bool = True):
        self.service = service
        self.prefix = prefix
        self.allow_negative = allow_negative

    def _key(self, item: str) -> str:
        return self.prefix + item

    def add_stock(self, item: str, quantity: int,
                  on_complete: Optional[Callable] = None):
        """Commutative increment."""
        return self.service.update(("INC", self._key(item), quantity),
                                   on_complete=on_complete)

    def take_stock(self, item: str, quantity: int,
                   on_complete: Optional[Callable] = None):
        """Commutative decrement; may drive stock temporarily negative
        (the paper's relaxed inventory model)."""
        return self.service.update(("INC", self._key(item), -quantity),
                                   on_complete=on_complete)

    def stock(self, item: str,
              service: QueryService = QueryService.DIRTY) -> int:
        """Current stock, by default from the latest (dirty) view."""
        value = self.service.query(("GET", self._key(item)),
                                   service=service)
        return value or 0
