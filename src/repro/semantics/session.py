"""Client sessions: exactly-once updates with replica failover.

The paper's client model binds a client to its local replica; if that
replica crashes, an in-flight action's fate is unknown to the client —
re-submitting blindly risks double application, not re-submitting
risks losing the update.

``SessionClient`` solves it the state-machine way: every update
carries a (session, sequence) pair and is applied through a
deterministic guard procedure that records the session's high-water
mark *inside the replicated database*.  Re-submissions of an
already-applied sequence are no-ops at every replica, identically, so
the client can fail over to any replica and retry until it sees the
global order confirm its sequence — exactly-once end to end.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..db import execute_update
from .service import ReplicatedService

_session_ids = itertools.count(1)

SESSION_PREFIX = "__session:"


def _session_apply(state: Dict[str, Any], args: Any) -> Tuple[bool, Any]:
    """Guard procedure: apply ``update`` iff ``seq`` is new for
    ``session``.  Returns (applied, result)."""
    session, seq, update = args
    key = SESSION_PREFIX + session
    if state.get(key, 0) >= seq:
        return (False, None)
    result = execute_update(state, update)
    state[key] = seq
    return (True, result)


def install_session_procedures(database) -> None:
    """Register the session guard on a database (every replica)."""
    database.register_procedure("session_apply", _session_apply)


class SessionClient:
    """An exactly-once client that can fail over between replicas.

    ``replicas`` is an ordered list of candidate attachment points
    (e.g. ``list(cluster.replicas.values())``); the client talks to the
    first usable one and rotates on failure.  ``submit`` retries (with
    the same sequence number) until the update is globally ordered;
    duplicates are suppressed by the in-database guard.
    """

    def __init__(self, replicas: List[Any], name: Optional[str] = None,
                 retry_interval: float = 1.0):
        if not replicas:
            raise ValueError("need at least one replica")
        self.replicas = list(replicas)
        self.session = name or f"session-{next(_session_ids)}"
        self.retry_interval = retry_interval
        self.sim = self.replicas[0].sim
        self._seq = 0
        self._attached = 0
        self.submitted = 0
        self.applied = 0
        self.duplicates_suppressed = 0
        self.failovers = 0
        for replica in self.replicas:
            replica.register_procedure("session_apply", _session_apply)

    # ------------------------------------------------------------------
    @property
    def replica(self):
        return self.replicas[self._attached % len(self.replicas)]

    def _rotate(self) -> None:
        self._attached += 1
        self.failovers += 1

    # ------------------------------------------------------------------
    def submit(self, update: Tuple,
               on_applied: Optional[Callable[[Any], None]] = None
               ) -> int:
        """Submit ``update`` exactly once; returns its sequence number.

        ``on_applied(result)`` fires when the update's global order is
        confirmed.  Internally retries across replicas until then.
        """
        self._seq += 1
        seq = self._seq
        self.submitted += 1
        state = {"done": False}

        def complete(_action, _position, result) -> None:
            if state["done"]:
                return
            state["done"] = True
            # The update is a single CALL statement: its result list
            # holds one (applied, inner) pair from the guard.
            applied, inner = result[0] if result else (False, None)
            if applied:
                self.applied += 1
            else:
                self.duplicates_suppressed += 1
            if on_applied is not None:
                on_applied(inner)

        def attempt() -> None:
            if state["done"]:
                return
            replica = self.replica
            if not replica.running or replica.engine.exited:
                self._rotate()
                replica = self.replica
            if replica.running and not replica.engine.exited:
                try:
                    replica.submit(
                        ("CALL", "session_apply",
                         (self.session, seq, update)),
                        client=self.session, on_complete=complete)
                except RuntimeError:
                    self._rotate()
            self.sim.post(self.retry_interval, retry)

        def retry() -> None:
            if state["done"]:
                return
            # Not confirmed yet: maybe the replica died with it, maybe
            # it is just red in a non-primary component.  Rotate and
            # re-submit under the same sequence; the guard dedupes.
            self._rotate()
            attempt()

        attempt()
        return seq

    # ------------------------------------------------------------------
    def confirmed_seq_at(self, replica) -> int:
        """The session's high-water mark in a replica's green state."""
        return replica.database.state.get(SESSION_PREFIX + self.session,
                                          0)
