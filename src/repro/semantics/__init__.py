"""Application semantics over the replication engine (Section 6):
consistent/weak/dirty queries, timestamp and commutative updates,
active actions, and interactive (read-certify-write) transactions."""

from .active import ActiveTransactions, register_everywhere
from .commutative import InventoryStore
from .interactive import InteractiveTransaction
from .session import (SessionClient, install_session_procedures)
from .service import (BlockedQuery, QueryService, ReplicatedService,
                      install_standard_procedures)
from .timestamp import TimestampStore

__all__ = [
    "ActiveTransactions",
    "BlockedQuery",
    "InteractiveTransaction",
    "InventoryStore",
    "QueryService",
    "ReplicatedService",
    "SessionClient",
    "install_session_procedures",
    "TimestampStore",
    "install_standard_procedures",
    "register_everywhere",
]
