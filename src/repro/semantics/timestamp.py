"""Timestamp (last-writer-wins) update semantics (Section 6).

"All updates are timestamped and the application only wants the
information with the highest timestamp.  Therefore the actions don't
need to be ordered."  One-copy serializability is not maintained during
partitions, but after merge the database states converge — the
``lww_set`` procedure is insensitive to application order.

The canonical example is location tracking: every replica can accept
position reports in any component; merging keeps the newest fix.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

from .service import QueryService, ReplicatedService


class TimestampStore:
    """Last-writer-wins registers over the replicated database."""

    def __init__(self, service: ReplicatedService, prefix: str = "lww:"):
        self.service = service
        self.prefix = prefix

    def _key(self, key: str) -> str:
        return self.prefix + key

    def set(self, key: str, value: Any, timestamp: float,
            on_complete: Optional[Callable] = None):
        """Write ``value`` with ``timestamp``; newest timestamp wins
        regardless of the order the actions are finally applied in."""
        return self.service.update(
            ("CALL", "lww_set", (self._key(key), value, timestamp)),
            on_complete=on_complete,
            meta={"timestamp": timestamp})

    def get(self, key: str,
            service: QueryService = QueryService.DIRTY) -> Optional[Any]:
        """Read the newest known value (DIRTY by default: the paper's
        motivation is immediate answers from the latest information)."""
        slot = self.service.query(("GET", self._key(key)), service=service)
        return slot[0] if slot is not None else None

    def get_with_timestamp(self, key: str,
                           service: QueryService = QueryService.DIRTY
                           ) -> Optional[Tuple[Any, float]]:
        return self.service.query(("GET", self._key(key)), service=service)
