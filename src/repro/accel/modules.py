"""The accelerated-module set (data only — importable by setup.py).

``ACCEL_MODULES`` is the single source of truth for which modules make
up the compiled hot core: ``setup.py`` compiles exactly these files
when ``REPRO_ACCEL=1``, :func:`repro.accel.build_info` reports their
build per module, the ``compile-discipline`` analyzer rule
(:mod:`repro.analysis.compile_discipline`) keeps them compile-clean,
and the ``REPRO_FORCE_PURE`` loader bypasses their extensions.

Keep this module free of imports beyond the standard library: the
build backend loads it by file path before the package is installed.

Membership criteria: a module goes on this list when it is (a) on the
per-event hot path of the throughput figures (see the ``--profile``
output of ``benchmarks/bench_wallclock.py``) and (b) a *leaf* — it
imports only other accel modules or lightweight data-type modules, so
compiling it never drags protocol/state-machine code into the native
build where the differential pure reference could not diverge-test it.
"""

from __future__ import annotations

from typing import Tuple

#: Modules compiled into the accelerated build, in dependency order.
ACCEL_MODULES: Tuple[str, ...] = (
    "repro.sim.kernel",
    "repro.core.colors",
    "repro.core.knowledge",
    "repro.core.action_queue",
    "repro.net.latency",
    "repro.net.message",
    "repro.net.topology",
    "repro.net.network",
    "repro.net.codec",
    "repro.gcs.ordering",
)
