"""Build introspection for the optional mypyc-accelerated hot core.

The modules in :data:`~repro.accel.modules.ACCEL_MODULES` exist in two
interchangeable builds:

* **pure** — the checked-in python sources, always importable, the
  reference implementation every figure and test is defined against;
* **compiled** — the same files compiled to C extensions by mypyc when
  the package is installed with ``REPRO_ACCEL=1`` (see ``setup.py``).

Which build is live is a property of the import system, not of the
code: the extensions simply shadow the ``.py`` sources on the module
search path.  :func:`active` reports the live build; benchmarks and the
differential parity suite record it next to their numbers so a result
is never attributed to the wrong build.

Setting ``REPRO_FORCE_PURE=1`` in the environment installs a meta-path
finder *before* any accel module is imported (this package is imported
first from ``repro/__init__``) that pins every accel module to its
python source, bypassing an installed extension.  That is what lets the
``compiled_core`` bench scenario and the parity tests run both builds
from one installed tree and diff them bit-for-bit.
"""

from __future__ import annotations

import importlib
import importlib.machinery
import importlib.util
import os
import sys
from importlib.abc import MetaPathFinder
from importlib.machinery import ModuleSpec
from typing import Dict, Optional, Sequence

from .modules import ACCEL_MODULES

__all__ = ["ACCEL_MODULES", "active", "build_info", "module_build",
           "force_pure_requested"]

#: Filename suffixes that identify a compiled extension module.
_EXT_SUFFIXES = (".so", ".pyd")


def force_pure_requested() -> bool:
    """True when the environment pins accel modules to python source."""
    return os.environ.get("REPRO_FORCE_PURE", "") not in ("", "0")


def module_build(name: str) -> str:
    """``"compiled"`` or ``"pure"`` for one accel module (imports it)."""
    module = importlib.import_module(name)
    origin = getattr(module, "__file__", None) or ""
    return "compiled" if origin.endswith(_EXT_SUFFIXES) else "pure"


def build_info() -> Dict[str, str]:
    """Per-module build of the whole accelerated set."""
    return {name: module_build(name) for name in ACCEL_MODULES}


def active() -> str:
    """The live build of the hot core.

    ``"compiled"`` when every accel module is a C extension, ``"pure"``
    when none is, ``"mixed"`` for a partial build (a broken install —
    the parity suite fails loudly on it rather than guessing).
    """
    builds = set(build_info().values())
    if builds == {"compiled"}:
        return "compiled"
    if "compiled" in builds:
        return "mixed"
    return "pure"


class _ForcePureFinder(MetaPathFinder):
    """Meta-path finder that pins the accel set to its python sources.

    Sits at the front of ``sys.meta_path`` and answers only for the
    accel module names, handing back a ``SourceFileLoader`` spec for
    the ``.py`` file next to wherever the ``repro`` package lives —
    site-packages or a source checkout alike.  Everything else falls
    through to the normal import machinery.
    """

    def __init__(self, names: Sequence[str], package_root: str) -> None:
        self._names = frozenset(names)
        self._root = package_root

    def find_spec(self, fullname: str, path: object = None,
                  target: object = None) -> Optional[ModuleSpec]:
        if fullname not in self._names:
            return None
        parts = fullname.split(".")[1:]     # drop the "repro" prefix
        source = os.path.join(self._root, *parts) + ".py"
        if not os.path.exists(source):      # pragma: no cover - broken tree
            return None
        loader = importlib.machinery.SourceFileLoader(fullname, source)
        return importlib.util.spec_from_file_location(
            fullname, source, loader=loader)


def _install_force_pure() -> None:
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    for finder in sys.meta_path:
        if isinstance(finder, _ForcePureFinder):    # pragma: no cover
            return                                  # idempotent
    sys.meta_path.insert(0, _ForcePureFinder(ACCEL_MODULES, package_root))


if force_pure_requested():
    _install_force_pure()
