"""Deterministic randomness streams for the simulation.

A single seed fans out into named independent streams so that, e.g.,
adding a new consumer of randomness in the network layer does not perturb
the sequence seen by the workload generator.  Each stream is a standard
``random.Random`` seeded from the root seed and the stream name.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A registry of named, independently seeded random streams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream for ``name``."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")).digest()
            self._streams[name] = random.Random(
                int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def __contains__(self, name: str) -> bool:
        return name in self._streams
