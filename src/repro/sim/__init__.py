"""Discrete-event simulation kernel (substrate).

Provides the deterministic event loop, timers/actors, seeded randomness
streams, and structured tracing that every other layer builds on.
"""

from .kernel import EventHandle, SimulationError, Simulator
from .process import Actor, ServiceQueue, Timer
from .rng import RandomStreams
from .trace import TraceRecord, Tracer

__all__ = [
    "Actor",
    "EventHandle",
    "RandomStreams",
    "SimulationError",
    "ServiceQueue",
    "Simulator",
    "Timer",
    "TraceRecord",
    "Tracer",
]
