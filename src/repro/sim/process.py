"""Actor and timer helpers on top of the simulation kernel.

Protocol components (GCS daemons, replication engines, disks) are
long-lived actors that own timers.  ``Timer`` wraps a cancellable
:class:`~repro.runtime.base.Handle` with restart/stop semantics, and
``Actor`` provides a namespace for timers so a crashing node can cancel
everything it scheduled in one call (a crash must erase volatile state
*and* silence future callbacks).

Despite living under ``repro.sim``, these helpers are runtime-agnostic:
they only use the :class:`~repro.runtime.base.Runtime` protocol
(``now``, ``schedule``), so the same timers drive a node under the
discrete-event kernel and under :class:`~repro.runtime.AsyncioRuntime`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.base import Handle, Runtime


class Timer:
    """A restartable one-shot or periodic timer.

    A ``Timer`` is created stopped.  ``start()`` (re)arms it;
    ``stop()`` disarms it.  For periodic timers the callback runs every
    ``interval`` seconds until stopped.
    """

    def __init__(self, sim: "Runtime", callback: Callable[[], None],
                 interval: float, periodic: bool = False):
        if interval < 0:
            raise ValueError(f"negative timer interval: {interval}")
        self._sim = sim
        self._callback = callback
        self.interval = interval
        self.periodic = periodic
        self._handle: Optional["Handle"] = None

    @property
    def armed(self) -> bool:
        return self._handle is not None and self._handle.active

    def start(self, interval: Optional[float] = None) -> None:
        """Arm the timer, replacing any pending expiry."""
        if interval is not None:
            self.interval = interval
        self.stop()
        self._handle = self._sim.schedule(self.interval, self._fire)

    def restart(self) -> None:
        """Alias for :meth:`start` with the current interval."""
        self.start()

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        if self.periodic:
            self._handle = self._sim.schedule(self.interval, self._fire)
        self._callback()


class ServiceQueue:
    """A FIFO service resource (e.g. one node's CPU).

    ``take(cost)`` reserves the next ``cost`` seconds of the resource
    and returns the absolute completion time.  Models per-action
    processing limits: a node applying replicated actions at rate R
    saturates when R * cost reaches 1.
    """

    def __init__(self, sim: "Runtime"):
        self._sim = sim
        self._free_at = 0.0

    def take(self, cost: float) -> float:
        start = max(self._sim.now, self._free_at)
        self._free_at = start + cost
        return self._free_at

    @property
    def backlog(self) -> float:
        """Seconds of queued work not yet completed."""
        return max(0.0, self._free_at - self._sim.now)

    def reset(self) -> None:
        self._free_at = 0.0


class Actor:
    """Base class for simulated components that own timers.

    Subclasses create timers with :meth:`make_timer`; :meth:`cancel_all`
    silences every timer at once (used on crash).
    """

    def __init__(self, sim: "Runtime", name: str = ""):
        self.sim = sim
        self.name = name or type(self).__name__
        self._timers: Dict[str, Timer] = {}

    def make_timer(self, key: str, callback: Callable[[], None],
                   interval: float, periodic: bool = False) -> Timer:
        timer = Timer(self.sim, callback, interval, periodic=periodic)
        self._timers[key] = timer
        return timer

    def timer(self, key: str) -> Timer:
        return self._timers[key]

    def cancel_all(self) -> None:
        for timer in self._timers.values():
            timer.stop()

    def after(self, delay: float, callback: Callable[..., None],
              *args: Any) -> "Handle":
        """Schedule a raw one-shot callback (not tracked by cancel_all)."""
        return self.sim.schedule(delay, callback, *args)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"
