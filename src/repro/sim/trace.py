"""Structured event tracing.

Components emit typed trace records (node, category, payload) to a shared
``Tracer``.  Tests assert on traces instead of scraping logs; benchmarks
use them to count messages and disk writes.  Tracing is cheap when
disabled: ``Tracer(enabled=False)`` drops records without formatting.

Retention is unbounded by default — simulation tests want every record —
but long-lived deployments (the asyncio runtime's ``LiveCluster``) pass
``max_records`` to cap memory: the record store becomes a ring buffer
that discards the oldest entries.  Category counters are exact either
way; only the kept records are windowed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Iterator, List, MutableSequence,
                    Optional)


@dataclass(frozen=True)
class TraceRecord:
    """One trace event."""

    time: float
    node: Any
    category: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - debug aid
        kv = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:10.6f}] {self.node} {self.category} {kv}"


class Tracer:
    """Collects :class:`TraceRecord` objects and dispatches subscribers."""

    def __init__(self, enabled: bool = True, keep: bool = True,
                 max_records: Optional[int] = None):
        self.enabled = enabled
        self.keep = keep
        self.max_records = max_records
        self.records: MutableSequence[TraceRecord]
        if max_records is None:
            self.records = []
        else:
            self.records = deque(maxlen=max_records)
        self.dropped = 0
        self._subscribers: List[Callable[[TraceRecord], None]] = []
        self._counters: Dict[str, int] = {}

    def emit(self, time: float, node: Any, category: str,
             **detail: Any) -> None:
        if not self.enabled:
            return
        self._counters[category] = self._counters.get(category, 0) + 1
        record = TraceRecord(time, node, category, detail)
        if self.keep:
            if (self.max_records is not None
                    and len(self.records) == self.max_records):
                self.dropped += 1
            self.records.append(record)
        for subscriber in self._subscribers:
            subscriber(record)

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        self._subscribers.append(callback)

    def count(self, category: str) -> int:
        """Number of records emitted in ``category`` (kept or not)."""
        return self._counters.get(category, 0)

    def select(self, category: Optional[str] = None,
               node: Any = None) -> Iterator[TraceRecord]:
        """Iterate kept records filtered by category and/or node."""
        for record in self.records:
            if category is not None and record.category != category:
                continue
            if node is not None and record.node != node:
                continue
            yield record

    def clear(self) -> None:
        """Drop kept records and counters; emission continues as before.

        Reallocates the store (preserving ``max_records``) instead of
        clearing in place: iterators and aliases handed out earlier —
        a live :meth:`select` generator, a saved ``records`` reference —
        keep the pre-clear snapshot rather than being emptied under the
        reader, and the ring-buffer capacity is guaranteed fresh."""
        if self.max_records is None:
            self.records = []
        else:
            self.records = deque(maxlen=self.max_records)
        self._counters = {}
        self.dropped = 0
