"""Discrete-event simulation kernel.

Everything in this reproduction — network, disks, group communication,
the replication engine, the benchmark clients — runs on a single-threaded
discrete-event simulator.  Components schedule callbacks at virtual
timestamps; the kernel pops them in timestamp order (FIFO among equal
timestamps) and invokes them.  Virtual time is a float number of seconds.

Determinism is a hard requirement: two runs with the same seed and the
same scenario must produce bit-identical traces.  The kernel therefore
breaks timestamp ties with a monotonically increasing sequence number and
never consults wall-clock time or unseeded randomness.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class EventHandle:
    """A cancellable reference to a scheduled event.

    Cancellation is lazy: the heap entry stays in place but is skipped
    when popped.  ``active`` is False once the event fired or was
    cancelled.
    """

    __slots__ = ("time", "seq", "callback", "args", "_cancelled", "_fired")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., None], args: Tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def active(self) -> bool:
        return not (self._cancelled or self._fired)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else (
            "fired" if self._fired else "pending")
        return f"<EventHandle t={self.time:.6f} seq={self.seq} {state}>"


class Simulator:
    """The event loop.

    Usage::

        sim = Simulator()
        sim.schedule(0.5, callback, arg1, arg2)
        sim.run()                 # run to quiescence
        sim.run(until=10.0)       # or up to a virtual deadline
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0
        self._stopped = False

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events dispatched so far."""
        return self._events_processed

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} < now ({self._now})")
        handle = EventHandle(time, next(self._seq), callback, args)
        heapq.heappush(self._heap, (time, handle.seq, handle))
        return handle

    def call_soon(self, callback: Callable[..., None],
                  *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at the current time (after the
        currently-running event and anything already queued for now)."""
        return self.schedule(0.0, callback, *args)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the single next event.  Returns False when idle."""
        while self._heap:
            time, _seq, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = time
            handle._fired = True
            self._events_processed += 1
            handle.callback(*handle.args)
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until quiescence, a deadline, or an event budget.

        ``until`` is an absolute virtual time; events at exactly ``until``
        still run.  ``max_events`` bounds the number of dispatches in this
        call (a guard against livelock in buggy protocols under test).
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        dispatched = 0
        try:
            while self._heap and not self._stopped:
                time, _seq, handle = self._heap[0]
                if handle.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and time > until:
                    break
                if max_events is not None and dispatched >= max_events:
                    raise SimulationError(
                        f"event budget of {max_events} exhausted at "
                        f"t={self._now:.6f}; likely livelock")
                heapq.heappop(self._heap)
                self._now = time
                handle._fired = True
                self._events_processed += 1
                dispatched += 1
                handle.callback(*handle.args)
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def stop(self) -> None:
        """Stop the currently-running :meth:`run` after the current event."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue (approximate:
        lazily-cancelled entries are excluded)."""
        return sum(1 for _, _, h in self._heap if not h.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Simulator now={self._now:.6f} pending={self.pending} "
                f"processed={self._events_processed}>")
