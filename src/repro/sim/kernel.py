"""Discrete-event simulation kernel.

Everything in this reproduction — network, disks, group communication,
the replication engine, the benchmark clients — runs on a single-threaded
discrete-event simulator.  Components schedule callbacks at virtual
timestamps; the kernel pops them in timestamp order (FIFO among equal
timestamps) and invokes them.  Virtual time is a float number of seconds.

Determinism is a hard requirement: two runs with the same seed and the
same scenario must produce bit-identical traces.  The kernel therefore
breaks timestamp ties with a monotonically increasing sequence number and
never consults wall-clock time or unseeded randomness.

Two scheduling paths share one heap:

* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` return a
  cancellable :class:`EventHandle`; the heap entry is a
  ``(time, seq, handle)`` triple.
* :meth:`Simulator.post` / :meth:`Simulator.post_at` are the
  fire-and-forget fast path: the heap entry is a raw
  ``(time, seq, callback, args)`` tuple and no handle object is ever
  allocated.  The bulk of simulation traffic (network hops, disk syncs,
  completion notifications) never cancels, so this is the common case.

Entries are totally ordered by the unique ``(time, seq)`` prefix, so the
two shapes coexist in the heap without ever comparing their tails.
Cancellation stays lazy, but the kernel counts lazily-cancelled entries
and compacts the heap in place once they outnumber the live ones
(periodic timers cancel/reschedule constantly; without compaction the
heap grows with the number of *restarts*, not the number of live
timers).  Compaction re-heapifies, which cannot perturb dispatch order
because ``(time, seq)`` is a total order.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

# Compact only above this heap size: tiny heaps are cheap to scan and
# compacting them would just add churn.
_COMPACT_MIN = 64


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class EventHandle:
    """A cancellable reference to a scheduled event.

    Cancellation is lazy: the heap entry stays in place but is skipped
    when popped.  ``active`` is False once the event fired or was
    cancelled.
    """

    __slots__ = ("sim", "time", "seq", "callback", "args", "_cancelled",
                 "_fired")

    def __init__(self, sim: "Simulator", time: float, seq: int,
                 callback: Callable[..., None], args: Tuple[Any, ...]):
        self.sim = sim
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self._cancelled:
            self._cancelled = True
            if not self._fired:
                self.sim._note_cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def active(self) -> bool:
        return not (self._cancelled or self._fired)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else (
            "fired" if self._fired else "pending")
        return f"<EventHandle t={self.time:.6f} seq={self.seq} {state}>"


class Simulator:
    """The event loop.

    Usage::

        sim = Simulator()
        sim.schedule(0.5, callback, arg1, arg2)
        sim.run()                 # run to quiescence
        sim.run(until=10.0)       # or up to a virtual deadline
    """

    def __init__(self) -> None:
        # ``now`` is a plain attribute, not a property: it is read on
        # every scheduling call and every tracer emit in the system.
        self.now = 0.0
        self._heap: List[tuple] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0
        self._stopped = False
        # lazily-cancelled EventHandle entries still sitting in the heap
        self._cancelled_in_heap = 0
        self.peak_heap = 0

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def events_processed(self) -> int:
        """Total number of events dispatched so far."""
        return self._events_processed

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} < now ({self.now})")
        handle = EventHandle(self, time, next(self._seq), callback, args)
        heapq.heappush(self._heap, (time, handle.seq, handle))
        return handle

    def post(self, delay: float, callback: Callable[..., None],
             *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no :class:`EventHandle` is
        allocated, so the event cannot be cancelled."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        self.post_at(self.now + delay, callback, *args)

    def post_at(self, time: float, callback: Callable[..., None],
                *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at` (no cancellation)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} < now ({self.now})")
        heapq.heappush(self._heap, (time, next(self._seq), callback, args))

    def call_soon(self, callback: Callable[..., None],
                  *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at the current time (after the
        currently-running event and anything already queued for now)."""
        return self.schedule(0.0, callback, *args)

    # ------------------------------------------------------------------
    # cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._cancelled_in_heap += 1
        heap = self._heap
        if (len(heap) >= _COMPACT_MIN
                and self._cancelled_in_heap * 2 > len(heap)):
            # In-place so aliases held by a running dispatch loop stay
            # valid; heapify preserves dispatch order ((time, seq) is a
            # total order).
            heap[:] = [entry for entry in heap
                       if len(entry) != 3 or not entry[2]._cancelled]
            heapq.heapify(heap)
            self._cancelled_in_heap = 0

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the single next event.  Returns False when idle."""
        heap = self._heap
        while heap:
            if len(heap) > self.peak_heap:
                self.peak_heap = len(heap)
            entry = heapq.heappop(heap)
            if len(entry) == 3:
                handle = entry[2]
                if handle._cancelled:
                    self._cancelled_in_heap -= 1
                    continue
                self.now = entry[0]
                handle._fired = True
                self._events_processed += 1
                handle.callback(*handle.args)
            else:
                self.now = entry[0]
                self._events_processed += 1
                entry[2](*entry[3])
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until quiescence, a deadline, or an event budget.

        ``until`` is an absolute virtual time; events at exactly ``until``
        still run.  ``max_events`` bounds the number of dispatches in this
        call (a guard against livelock in buggy protocols under test).
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        dispatched = 0
        processed = 0
        peak = self.peak_heap
        deadline = float("inf") if until is None else until
        heap = self._heap  # stable alias: compaction mutates in place
        pop = heapq.heappop
        try:
            while heap and not self._stopped:
                # Peak size is sampled at pop time: the heap only grows
                # between two pops, so its size here is the running
                # maximum since the previous event (push side stays
                # check-free).
                if len(heap) > peak:
                    peak = len(heap)
                entry = heap[0]
                if len(entry) == 3:
                    handle = entry[2]
                    if handle._cancelled:
                        pop(heap)
                        self._cancelled_in_heap -= 1
                        continue
                else:
                    handle = None
                time = entry[0]
                if time > deadline:
                    break
                if max_events is not None:
                    if dispatched >= max_events:
                        raise SimulationError(
                            f"event budget of {max_events} exhausted at "
                            f"t={self.now:.6f}; likely livelock")
                    dispatched += 1
                pop(heap)
                self.now = time
                processed += 1
                if handle is None:
                    entry[2](*entry[3])
                else:
                    handle._fired = True
                    handle.callback(*handle.args)
            if until is not None and self.now < until:
                self.now = until
        finally:
            # Flushed once per run() rather than incremented per event;
            # nothing consumes the counter mid-dispatch.
            self._events_processed += processed
            if len(heap) > peak:
                peak = len(heap)
            self.peak_heap = peak
            self._running = False

    def stop(self) -> None:
        """Stop the currently-running :meth:`run` after the current event."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue
        (lazily-cancelled entries are excluded)."""
        return len(self._heap) - self._cancelled_in_heap

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Simulator now={self.now:.6f} pending={self.pending} "
                f"processed={self._events_processed}>")
