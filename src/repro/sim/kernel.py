"""Discrete-event simulation kernel.

Everything in this reproduction — network, disks, group communication,
the replication engine, the benchmark clients — runs on a single-threaded
discrete-event simulator.  Components schedule callbacks at virtual
timestamps; the kernel pops them in timestamp order (FIFO among equal
timestamps) and invokes them.  Virtual time is a float number of seconds.

Determinism is a hard requirement: two runs with the same seed and the
same scenario must produce bit-identical traces.  The kernel therefore
breaks timestamp ties with a monotonically increasing sequence number and
never consults wall-clock time or unseeded randomness.

Two scheduling paths share one heap:

* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` return a
  cancellable :class:`EventHandle`; the heap entry is a
  ``(time, seq, handle)`` triple.
* :meth:`Simulator.post` / :meth:`Simulator.post_at` are the
  fire-and-forget fast path: the heap entry is a raw
  ``(time, seq, callback, args)`` tuple and no handle object is ever
  allocated.  The bulk of simulation traffic (network hops, disk syncs,
  completion notifications) never cancels, so this is the common case.

Entries are totally ordered by the unique ``(time, seq)`` prefix, so the
two shapes coexist in the heap without ever comparing their tails.
Cancellation stays lazy, but the kernel counts lazily-cancelled entries
and compacts the heap in place once they outnumber the live ones
(periodic timers cancel/reschedule constantly; without compaction the
heap grows with the number of *restarts*, not the number of live
timers).  Compaction re-heapifies, which cannot perturb dispatch order
because ``(time, seq)`` is a total order.

This module is part of the accelerated set (:mod:`repro.accel`): the
same file is the pure-python reference and the mypyc compilation unit,
so it stays fully annotated, free of dynamic attribute tricks, and
structured around tight monomorphic loops (``run`` is split by budget
mode rather than re-testing the mode per event).
"""

from __future__ import annotations

import itertools
from heapq import heapify, heappop, heappush
from typing import (Any, Callable, Iterator, List, Optional, Tuple,
                    TypeVar, final)

_T = TypeVar("_T")

try:
    from mypy_extensions import mypyc_attr
except ImportError:  # pragma: no cover - mypy_extensions not installed
    def mypyc_attr(**_kwargs: Any) -> Callable[[_T], _T]:
        def _identity(obj: _T) -> _T:
            return obj
        return _identity

# Compact only above this heap size: tiny heaps are cheap to scan and
# compacting them would just add churn.
_COMPACT_MIN = 64


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


@final
class EventHandle:
    """A cancellable reference to a scheduled event.

    Cancellation is lazy: the heap entry stays in place but is skipped
    when popped.  ``active`` is False once the event fired or was
    cancelled.
    """

    __slots__ = ("sim", "time", "seq", "callback", "args", "_cancelled",
                 "_fired")

    def __init__(self, sim: "Simulator", time: float, seq: int,
                 callback: Callable[..., None],
                 args: Tuple[Any, ...]) -> None:
        self.sim = sim
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self._cancelled:
            self._cancelled = True
            if not self._fired:
                self.sim._note_cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def active(self) -> bool:
        return not (self._cancelled or self._fired)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else (
            "fired" if self._fired else "pending")
        return f"<EventHandle t={self.time:.6f} seq={self.seq} {state}>"


@mypyc_attr(allow_interpreted_subclasses=True)
class Simulator:
    """The event loop.

    Usage::

        sim = Simulator()
        sim.schedule(0.5, callback, arg1, arg2)
        sim.run()                 # run to quiescence
        sim.run(until=10.0)       # or up to a virtual deadline

    Interpreted subclasses are allowed (``repro.runtime.SimRuntime`` is
    a zero-override alias registering the class against the Runtime
    protocol) but must not add behaviour: the compiled and pure builds
    must stay interchangeable.
    """

    __slots__ = ("now", "_heap", "_seq", "_running", "_events_processed",
                 "_stopped", "_cancelled_in_heap", "peak_heap")

    def __init__(self) -> None:
        # ``now`` is a plain attribute, not a property: it is read on
        # every scheduling call and every tracer emit in the system.
        self.now = 0.0
        self._heap: List[tuple] = []
        self._seq: Iterator[int] = itertools.count()
        self._running = False
        self._events_processed = 0
        self._stopped = False
        # lazily-cancelled EventHandle entries still sitting in the heap
        self._cancelled_in_heap = 0
        self.peak_heap = 0

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def events_processed(self) -> int:
        """Total number of events dispatched so far."""
        return self._events_processed

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        handle = EventHandle(self, self.now + delay, next(self._seq),
                             callback, args)
        heappush(self._heap, (handle.time, handle.seq, handle))
        return handle

    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute virtual ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} < now ({self.now})")
        handle = EventHandle(self, time, next(self._seq), callback, args)
        heappush(self._heap, (time, handle.seq, handle))
        return handle

    def post(self, delay: float, callback: Callable[..., None],
             *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no :class:`EventHandle` is
        allocated, so the event cannot be cancelled."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        heappush(self._heap,
                 (self.now + delay, next(self._seq), callback, args))

    def post_at(self, time: float, callback: Callable[..., None],
                *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at` (no cancellation)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} < now ({self.now})")
        heappush(self._heap, (time, next(self._seq), callback, args))

    def call_soon(self, callback: Callable[..., None],
                  *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at the current time (after the
        currently-running event and anything already queued for now)."""
        return self.schedule(0.0, callback, *args)

    # ------------------------------------------------------------------
    # cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        self._cancelled_in_heap += 1
        heap = self._heap
        if (len(heap) >= _COMPACT_MIN
                and self._cancelled_in_heap * 2 > len(heap)):
            # In-place so aliases held by a running dispatch loop stay
            # valid; heapify preserves dispatch order ((time, seq) is a
            # total order).
            heap[:] = [entry for entry in heap
                       if len(entry) != 3 or not entry[2]._cancelled]
            heapify(heap)
            self._cancelled_in_heap = 0

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the single next event.  Returns False when idle."""
        heap = self._heap
        while heap:
            if len(heap) > self.peak_heap:
                self.peak_heap = len(heap)
            entry = heappop(heap)
            if len(entry) == 3:
                handle = entry[2]
                if handle._cancelled:
                    self._cancelled_in_heap -= 1
                    continue
                self.now = entry[0]
                handle._fired = True
                self._events_processed += 1
                handle.callback(*handle.args)
            else:
                self.now = entry[0]
                self._events_processed += 1
                entry[2](*entry[3])
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until quiescence, a deadline, or an event budget.

        ``until`` is an absolute virtual time; events at exactly ``until``
        still run.  ``max_events`` bounds the number of dispatches in this
        call (a guard against livelock in buggy protocols under test).
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        self._stopped = False
        peak = self.peak_heap
        deadline = float("inf") if until is None else until
        heap = self._heap  # stable alias: compaction mutates in place
        try:
            if max_events is None:
                self._run_unbudgeted(heap, deadline, peak)
            else:
                self._run_budgeted(heap, deadline, peak, max_events)
            if until is not None and self.now < until:
                self.now = until
        finally:
            if len(heap) > self.peak_heap:
                self.peak_heap = len(heap)
            self._running = False

    def _run_unbudgeted(self, heap: List[tuple], deadline: float,
                        peak: int) -> None:
        """The hot dispatch loop (no event budget to re-check per event).

        Entries are popped before the deadline test — the one
        past-deadline entry is pushed back, trading a single push per
        ``run()`` for never peeking ``heap[0]`` separately per event.
        Peak size is sampled at pop time: the heap only grows between
        two pops, so its size here is the running maximum since the
        previous event (the push side stays check-free).
        """
        processed = 0
        try:
            while heap and not self._stopped:
                if len(heap) > peak:
                    peak = len(heap)
                entry = heappop(heap)
                time: float = entry[0]
                if time > deadline:
                    heappush(heap, entry)
                    break
                if len(entry) == 4:
                    self.now = time
                    processed += 1
                    entry[2](*entry[3])
                else:
                    handle = entry[2]
                    if handle._cancelled:
                        self._cancelled_in_heap -= 1
                        continue
                    self.now = time
                    processed += 1
                    handle._fired = True
                    handle.callback(*handle.args)
        finally:
            # Flushed once per run rather than incremented per event;
            # nothing consumes the counter mid-dispatch.
            self._events_processed += processed
            if peak > self.peak_heap:
                self.peak_heap = peak

    def _run_budgeted(self, heap: List[tuple], deadline: float,
                      peak: int, max_events: int) -> None:
        """Dispatch with a per-call event budget (livelock guard)."""
        processed = 0
        dispatched = 0
        try:
            while heap and not self._stopped:
                if len(heap) > peak:
                    peak = len(heap)
                entry = heappop(heap)
                time: float = entry[0]
                if time > deadline:
                    heappush(heap, entry)
                    break
                if len(entry) == 3:
                    handle = entry[2]
                    if handle._cancelled:
                        self._cancelled_in_heap -= 1
                        continue
                else:
                    handle = None
                if dispatched >= max_events:
                    heappush(heap, entry)
                    raise SimulationError(
                        f"event budget of {max_events} exhausted at "
                        f"t={self.now:.6f}; likely livelock")
                dispatched += 1
                self.now = time
                processed += 1
                if handle is None:
                    entry[2](*entry[3])
                else:
                    handle._fired = True
                    handle.callback(*handle.args)
        finally:
            self._events_processed += processed
            if peak > self.peak_heap:
                self.peak_heap = peak

    def stop(self) -> None:
        """Stop the currently-running :meth:`run` after the current event."""
        self._stopped = True

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue
        (lazily-cancelled entries are excluded)."""
        return len(self._heap) - self._cancelled_in_heap

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Simulator now={self.now:.6f} pending={self.pending} "
                f"processed={self._events_processed}>")
