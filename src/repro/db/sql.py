"""Mini statement language for actions.

The replication engine treats actions as opaque, but the examples,
tests, and semantics layer need a concrete deterministic database
language.  Statements are plain tuples:

    ("SET", key, value)              write
    ("GET", key)                     read (query part)
    ("INC", key, delta)              numeric add, default-0 start
    ("DEL", key)                     delete
    ("APPEND", key, item)            append to a list value
    ("CAS", key, expected, value)    compare-and-set; applies only if the
                                     current value equals ``expected``
    ("CALL", name, args)             invoke a registered deterministic
                                     procedure (active actions, Sec. 6)

A *procedure* receives the mutable state dict and ``args`` and must be
deterministic in (state, args).  Registration is global per database
instance (see :class:`repro.db.database.Database`).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

Statement = Tuple
Procedure = Callable[[Dict[str, Any], Any], Any]


class StatementError(Exception):
    """Raised for malformed statements or unknown procedures."""


def execute_statement(state: Dict[str, Any], statement: Statement,
                      procedures: Optional[Dict[str, Procedure]] = None
                      ) -> Any:
    """Apply one statement to ``state``; return its result."""
    if not statement:
        raise StatementError("empty statement")
    op = statement[0]
    if op == "SET":
        _, key, value = statement
        state[key] = value
        return value
    if op == "GET":
        _, key = statement
        return state.get(key)
    if op == "INC":
        _, key, delta = statement
        current = state.get(key, 0)
        if isinstance(current, bool) or not isinstance(current,
                                                       (int, float)):
            raise StatementError(f"INC target {key!r} is not numeric")
        state[key] = current + delta
        return state[key]
    if op == "DEL":
        _, key = statement
        return state.pop(key, None)
    if op == "APPEND":
        _, key, item = statement
        bucket = state.setdefault(key, [])
        if not isinstance(bucket, list):
            raise StatementError(f"APPEND target {key!r} is not a list")
        bucket.append(item)
        return list(bucket)
    if op == "CAS":
        _, key, expected, value = statement
        if state.get(key) == expected:
            state[key] = value
            return True
        return False
    if op == "CALL":
        _, name, args = statement
        procedures = procedures or {}
        if name not in procedures:
            raise StatementError(f"unknown procedure {name!r}")
        return procedures[name](state, args)
    raise StatementError(f"unknown statement op {op!r}")


def execute_update(state: Dict[str, Any], update: Tuple,
                   procedures: Optional[Dict[str, Procedure]] = None
                   ) -> List[Any]:
    """Apply an update part: a single statement or a tuple of statements.

    Returns the list of per-statement results.
    """
    if update and isinstance(update[0], str):
        return [execute_statement(state, update, procedures)]
    return [execute_statement(state, stmt, procedures) for stmt in update]


def execute_query(state: Dict[str, Any], query: Tuple,
                  procedures: Optional[Dict[str, Procedure]] = None
                  ) -> Any:
    """Evaluate a query part against a read-only view of ``state``.

    Queries must not mutate; they run against a shallow copy so a
    buggy "query" cannot corrupt the replicated state.
    """
    view = dict(state)
    if query and isinstance(query[0], str):
        return execute_statement(view, query, procedures)
    return [execute_statement(view, q, procedures) for q in query]
