"""Key-range partitioning over a hashed keyspace.

The shard fabric (:mod:`repro.shard`) splits the database across N
independent replication groups.  Placement must be *deterministic
across processes and runs* — builtin ``hash()`` is salted per process,
so keys are positioned by the first four bytes of their SHA-256 digest
instead, giving every runtime (simulated or live, any machine) the
identical key→shard mapping.

The pieces:

* :func:`hash_key` — key → point in the ``[0, KEYSPACE)`` ring;
* :class:`KeyRange` — a half-open ``[lo, hi)`` interval of the ring;
* :class:`RangeMap` — ordered, contiguous ranges → shard ids, with
  O(log n) point lookup;
* :class:`ShardedDatabase` — a router-aware read facade over one
  :class:`~repro.db.database.Database` per shard.

The mapping depends only on the shard *count* (via
:meth:`RangeMap.even`), never on group membership: replicas joining or
leaving a shard's replication group cannot move keys.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Any, Dict, List, NamedTuple, Sequence, Tuple

from .database import Database

#: The hashed keyspace is a 32-bit ring.
KEYSPACE_BITS = 32
KEYSPACE = 1 << KEYSPACE_BITS


def hash_key(key: Any) -> int:
    """Deterministic position of ``key`` on the ``[0, KEYSPACE)`` ring.

    Total over every key type (non-strings position by their ``str``
    form) and stable across processes, platforms, and runtimes —
    unlike builtin ``hash()``, which is salted per interpreter.
    """
    data = str(key).encode("utf-8")
    return int.from_bytes(hashlib.sha256(data).digest()[:4], "big")


class KeyRange(NamedTuple):
    """A half-open interval ``[lo, hi)`` of the hashed keyspace."""

    lo: int
    hi: int

    def covers(self, point: int) -> bool:
        return self.lo <= point < self.hi

    def __str__(self) -> str:
        return f"[{self.lo:#010x}, {self.hi:#010x})"


def even_ranges(count: int) -> List[KeyRange]:
    """Split the keyspace into ``count`` contiguous equal-width ranges
    (the last one absorbs the remainder)."""
    if count < 1:
        raise ValueError(f"need at least one range, got {count}")
    width = KEYSPACE // count
    bounds = [i * width for i in range(count)] + [KEYSPACE]
    return [KeyRange(bounds[i], bounds[i + 1]) for i in range(count)]


class RangeMap:
    """Contiguous key ranges mapped to shard ids.

    Ranges must cover the whole keyspace with no gaps or overlaps, so
    the key→shard mapping is *total*: every key lands in exactly one
    shard.
    """

    def __init__(self, ranges: Sequence[Tuple[KeyRange, int]]):
        ordered = sorted(ranges, key=lambda entry: entry[0].lo)
        if not ordered:
            raise ValueError("empty range map")
        expected = 0
        for key_range, _shard in ordered:
            if key_range.lo != expected or key_range.hi <= key_range.lo:
                raise ValueError(
                    f"ranges must tile [0, {KEYSPACE:#x}) contiguously; "
                    f"{key_range} breaks the tiling at {expected:#x}")
            expected = key_range.hi
        if expected != KEYSPACE:
            raise ValueError(
                f"ranges stop at {expected:#x}, not {KEYSPACE:#x}")
        self.ranges: List[Tuple[KeyRange, int]] = list(ordered)
        self._bounds = [key_range.lo for key_range, _ in self.ranges]
        self.shard_ids = sorted({shard for _, shard in self.ranges})

    @classmethod
    def even(cls, num_shards: int) -> "RangeMap":
        """Equal-width range per shard, shard ``i`` owning range ``i``."""
        return cls([(key_range, shard) for shard, key_range
                    in enumerate(even_ranges(num_shards))])

    def shard_for_point(self, point: int) -> int:
        if not 0 <= point < KEYSPACE:
            raise ValueError(f"point {point:#x} outside the keyspace")
        return self.ranges[bisect_right(self._bounds, point) - 1][1]

    def shard_for_key(self, key: Any) -> int:
        return self.shard_for_point(hash_key(key))

    def __len__(self) -> int:
        return len(self.ranges)


class ShardedDatabase:
    """Router-aware read facade over one database per shard.

    Writes go through the replication engines (never through this
    facade); reads route by key exactly like submitted updates do, so a
    client holding the facade sees the union keyspace without knowing
    the partitioning.
    """

    def __init__(self, range_map: RangeMap,
                 databases: Dict[int, Database]):
        missing = [s for s in range_map.shard_ids if s not in databases]
        if missing:
            raise ValueError(f"no database for shards {missing}")
        self.range_map = range_map
        self.databases = dict(databases)

    def database_for(self, key: Any) -> Database:
        return self.databases[self.range_map.shard_for_key(key)]

    def get(self, key: Any, default: Any = None) -> Any:
        return self.database_for(key).state.get(key, default)

    def __contains__(self, key: Any) -> bool:
        return key in self.database_for(key).state

    def digests(self) -> Dict[int, str]:
        """Per-shard database digests (the fabric's convergence and
        atomicity observable)."""
        return {shard: db.digest()
                for shard, db in sorted(self.databases.items())}
