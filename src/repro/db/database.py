"""The replicated database: deterministic state machine over actions.

Each replica holds a private :class:`Database`.  The replication engine
applies *green* (globally ordered) actions in order; because every
replica applies the same deterministic actions in the same order from
the same initial state, the copies stay identical (the state-machine
approach, [Schneider 90]).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, Dict, List, Optional, Tuple

from .action import Action, ActionId, ActionType
from .sql import Procedure, StatementError, execute_query, execute_update


class Database:
    """An in-memory database applying ordered actions.

    ``applied_count`` counts applied actions; ``applied_log`` records
    their ids in application order (used by the correctness property
    tests: Global Total Order compares these logs across replicas).
    """

    def __init__(self) -> None:
        self.state: Dict[str, Any] = {}
        self.applied_count = 0
        self.applied_log: List[ActionId] = []
        self.last_applied: Optional[ActionId] = None
        self._procedures: Dict[str, Procedure] = {}

    # ------------------------------------------------------------------
    # procedures (active actions)
    # ------------------------------------------------------------------
    def register_procedure(self, name: str, procedure: Procedure) -> None:
        """Register a deterministic stored procedure for CALL updates."""
        self._procedures[name] = procedure

    @property
    def procedures(self) -> Dict[str, Procedure]:
        return self._procedures

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def apply(self, action: Action) -> Any:
        """Apply one ordered action; return its result.

        Reconfiguration actions mutate engine structures, not database
        state, but still occupy a slot in the applied log so that the
        global order is visible to the tests.

        A statement error is a deterministic *result* (the same at
        every replica), not an exception: a malformed action must fail
        identically everywhere instead of crashing the engine.  Partial
        effects of a failing multi-statement update are preserved —
        deterministically so, since every replica applies the same
        statements to the same state.
        """
        result = None
        if action.type is ActionType.ACTION and action.update is not None:
            try:
                result = execute_update(self.state, action.update,
                                        self._procedures)
            except StatementError as error:
                result = ("error", str(error))
        self.applied_count += 1
        self.applied_log.append(action.action_id)
        self.last_applied = action.action_id
        return result

    def query(self, query: Tuple) -> Any:
        """Evaluate a read against the current (consistent) state."""
        return execute_query(self.state, query, self._procedures)

    # ------------------------------------------------------------------
    # snapshot / restore (database transfer for joiners)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A self-contained copy of the database contents + position."""
        return {
            "state": json.loads(json.dumps(self.state)),
            "applied_count": self.applied_count,
            "applied_log": list(self.applied_log),
            "last_applied": self.last_applied,
        }

    def restore(self, snapshot: Dict[str, Any]) -> None:
        """Adopt a snapshot (the joiner's database transfer)."""
        self.state = json.loads(json.dumps(snapshot["state"]))
        self.applied_count = snapshot["applied_count"]
        self.applied_log = list(snapshot["applied_log"])
        self.last_applied = snapshot["last_applied"]

    # ------------------------------------------------------------------
    # verification helpers
    # ------------------------------------------------------------------
    def digest(self) -> str:
        """Stable hash of the database contents (consistency checks)."""
        encoded = json.dumps(self.state, sort_keys=True, default=str)
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Database applied={self.applied_count} "
                f"keys={len(self.state)}>")
