"""Actions and action identifiers.

An *action* is the unit of replication (Section 2.2): a deterministic
transition from one database state to the next, with a query part and an
update part, either of which may be missing.  Actions are identified by
``ActionId(server_id, action_index)`` — the creating server and a
per-server counter — exactly the paper's data structure.

Action types (Section 5.1): regular ``ACTION`` plus the two
reconfiguration actions ``PERSISTENT_JOIN`` and ``PERSISTENT_LEAVE``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, NamedTuple, Optional, Tuple


class ActionType(Enum):
    """Kinds of ordered actions."""

    ACTION = "action"
    PERSISTENT_JOIN = "persistent_join"
    PERSISTENT_LEAVE = "persistent_leave"


class ActionId(NamedTuple):
    """Identifier of an action: creating server + per-server index.

    The order relation is lexicographic and used only as a stable
    tie-break; the *global* order of actions is decided by the
    replication protocol, not by the id.

    A NamedTuple rather than a frozen dataclass: action ids are hashed
    on every queue operation of the hot apply path, and tuples hash at
    C speed.
    """

    server_id: int
    index: int

    def __str__(self) -> str:
        return f"{self.server_id}:{self.index}"


@dataclass(frozen=True)
class Action:
    """One replicated action message.

    Fields follow the paper's Action message structure:

    action_id   identifier (creating server, index)
    green_line  the creator's last green action id at creation time
                (used for white-line computation / garbage collection)
    client      identifier of the requesting client
    query       read part: evaluated against the database state at the
                point the action is ordered; ``None`` for pure updates
    update      write part: a tuple of statements understood by
                :mod:`repro.db.sql`, or ``("CALL", name, args)`` for an
                active action; ``None`` for pure queries
    type        ACTION / PERSISTENT_JOIN / PERSISTENT_LEAVE
    join_id     for PERSISTENT_JOIN: the id of the joining server
    leave_id    for PERSISTENT_LEAVE: the id of the leaving server
    size        wire size in bytes (the paper uses 200-byte actions)
    meta        free-form application metadata (e.g. timestamps for the
                timestamp-update semantics)
    """

    action_id: ActionId
    green_line: Optional[ActionId] = None
    client: Optional[Any] = None
    query: Optional[Tuple] = None
    update: Optional[Tuple] = None
    type: ActionType = ActionType.ACTION
    join_id: Optional[int] = None
    leave_id: Optional[int] = None
    size: int = 200
    meta: dict = field(default_factory=dict)

    @property
    def server_id(self) -> int:
        return self.action_id.server_id

    @property
    def is_query_only(self) -> bool:
        return self.update is None and self.type is ActionType.ACTION

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"Action[{self.action_id}/{self.type.value}]"


def join_action(action_id: ActionId, joining_server: int,
                green_line: Optional[ActionId] = None) -> Action:
    """Build a PERSISTENT_JOIN announcing ``joining_server``."""
    return Action(action_id=action_id, green_line=green_line,
                  type=ActionType.PERSISTENT_JOIN, join_id=joining_server)


def leave_action(action_id: ActionId, leaving_server: int,
                 green_line: Optional[ActionId] = None) -> Action:
    """Build a PERSISTENT_LEAVE removing ``leaving_server``."""
    return Action(action_id=action_id, green_line=green_line,
                  type=ActionType.PERSISTENT_LEAVE, leave_id=leaving_server)
