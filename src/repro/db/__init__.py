"""Database substrate: actions, deterministic state machine, dirty views,
snapshot transfer, and the mini statement language."""

from .action import (Action, ActionId, ActionType, join_action,
                     leave_action)
from .database import Database
from .dirty import DirtyView
from .partition import (KEYSPACE, KeyRange, RangeMap, ShardedDatabase,
                        even_ranges, hash_key)
from .snapshot import SnapshotChunk, SnapshotReceiver, SnapshotSender
from .sql import (StatementError, execute_query, execute_statement,
                  execute_update)

__all__ = [
    "Action",
    "ActionId",
    "ActionType",
    "Database",
    "DirtyView",
    "KEYSPACE",
    "KeyRange",
    "RangeMap",
    "ShardedDatabase",
    "even_ranges",
    "hash_key",
    "SnapshotChunk",
    "SnapshotReceiver",
    "SnapshotSender",
    "StatementError",
    "execute_query",
    "execute_statement",
    "execute_update",
    "join_action",
    "leave_action",
]
