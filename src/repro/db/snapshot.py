"""Chunked database transfer for joining replicas (Section 5.1).

When a PERSISTENT_JOIN becomes green at the representative peer, the
peer snapshots its database and streams it to the joiner in chunks.  If
the peer fails or a partition hits mid-transfer, the joiner reconnects
to a different member and *resumes* from the last chunk it holds (the
paper's lines 20-21: "continue database transfer to joining site").
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class SnapshotChunk:
    """One piece of a database transfer."""

    transfer_id: str
    seq: int
    total: int
    items: tuple

    @property
    def is_last(self) -> bool:
        return self.seq == self.total - 1


class SnapshotSender:
    """Splits a snapshot into deterministic chunks."""

    def __init__(self, transfer_id: str, snapshot: Dict[str, Any],
                 chunk_items: int = 64):
        self.transfer_id = transfer_id
        self.header = {k: snapshot[k] for k in
                       ("applied_count", "applied_log", "last_applied")}
        items = sorted(snapshot["state"].items(),
                       key=lambda kv: str(kv[0]))
        if chunk_items <= 0:
            raise ValueError("chunk_items must be positive")
        self.chunks: List[SnapshotChunk] = []
        total = max(1, math.ceil(len(items) / chunk_items))
        for seq in range(total):
            piece = tuple(items[seq * chunk_items:(seq + 1) * chunk_items])
            self.chunks.append(SnapshotChunk(transfer_id, seq, total, piece))

    def chunk(self, seq: int) -> SnapshotChunk:
        return self.chunks[seq]

    @property
    def total(self) -> int:
        return len(self.chunks)


class SnapshotReceiver:
    """Reassembles a snapshot; tolerates switching senders mid-stream.

    Resume logic: chunks are identified by (transfer_id, seq).  A new
    sender for the *same* transfer_id continues where the old one left
    off; a different transfer_id (a different PERSISTENT_JOIN entry
    point) restarts the transfer.
    """

    def __init__(self) -> None:
        self.transfer_id: Optional[str] = None
        self.header: Optional[Dict[str, Any]] = None
        self._received: Dict[int, SnapshotChunk] = {}
        self._total: Optional[int] = None

    def begin(self, transfer_id: str, header: Dict[str, Any]) -> None:
        if transfer_id != self.transfer_id:
            self.transfer_id = transfer_id
            self._received = {}
            self._total = None
        self.header = header

    def accept(self, chunk: SnapshotChunk) -> None:
        if chunk.transfer_id != self.transfer_id:
            # A new transfer supersedes the old one.
            self.transfer_id = chunk.transfer_id
            self._received = {}
        self._total = chunk.total
        self._received[chunk.seq] = chunk

    @property
    def next_needed(self) -> int:
        """Lowest chunk seq not yet received (resume point)."""
        seq = 0
        while seq in self._received:
            seq += 1
        return seq

    @property
    def complete(self) -> bool:
        return (self._total is not None
                and len(self._received) == self._total
                and self.header is not None)

    def assemble(self) -> Dict[str, Any]:
        """Produce a snapshot dict accepted by ``Database.restore``."""
        if not self.complete:
            raise ValueError("transfer incomplete")
        state: Dict[str, Any] = {}
        for seq in range(self._total or 0):
            for key, value in self._received[seq].items:
                state[key] = value
        assert self.header is not None
        snapshot = dict(self.header)
        snapshot["state"] = json.loads(json.dumps(state))
        return snapshot
