"""Dirty-version overlay for dirty queries (Section 6).

While a replica is in a non-primary component, red actions cannot be
applied to the consistent database — but some applications want answers
reflecting the *latest available* (possibly never-to-be-committed)
information.  The paper: "a dirty version of the database is maintained
while the replicas are not in the primary component."

The overlay replays the replica's red/yellow suffix on top of the green
state.  It is rebuilt lazily and invalidated whenever the green state or
the red suffix changes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from .action import Action, ActionType
from .database import Database
from .sql import execute_query, execute_update


class DirtyView:
    """Lazy dirty version of a database."""

    def __init__(self, database: Database):
        self.database = database
        self._state: Optional[Dict[str, Any]] = None
        self._applied = 0
        self._suffix: List[Action] = []

    def invalidate(self) -> None:
        """Discard the materialized overlay (green state changed)."""
        self._state = None
        self._applied = 0
        self._suffix = []

    def refresh(self, pending: Iterable[Action]) -> None:
        """Bring the overlay up to date with the red/yellow suffix.

        ``pending`` is the replica's current not-yet-green suffix in
        local order.  If it extends the previously applied suffix, only
        the new tail is replayed; otherwise the overlay is rebuilt.
        """
        pending = list(pending)
        if (self._state is None
                or pending[:self._applied] != self._suffix[:self._applied]
                or len(pending) < self._applied):
            self._state = dict(self.database.state)
            self._applied = 0
        for action in pending[self._applied:]:
            if (action.type is ActionType.ACTION
                    and action.update is not None):
                execute_update(self._state, action.update,
                               self.database.procedures)
        self._applied = len(pending)
        self._suffix = pending

    def query(self, query: Tuple, pending: Iterable[Action]) -> Any:
        """A dirty query: latest info, no consistency promise."""
        self.refresh(pending)
        assert self._state is not None
        return execute_query(self._state, query, self.database.procedures)
