"""repro — reproduction of Amir & Tutu, "From Total Order to Database
Replication" (ICDCS 2002).

A partition-aware database replication engine built on simulated
Extended Virtual Synchrony group communication, with the paper's
baselines (COReL, two-phase commit), relaxed application semantics, and
a benchmark harness regenerating the paper's evaluation.
"""

__version__ = "1.0.0"
