"""repro — reproduction of Amir & Tutu, "From Total Order to Database
Replication" (ICDCS 2002).

A partition-aware database replication engine built on simulated
Extended Virtual Synchrony group communication, with the paper's
baselines (COReL, two-phase commit), relaxed application semantics, and
a benchmark harness regenerating the paper's evaluation.
"""

__version__ = "1.0.0"

# Imported for its side effect before any submodule: when
# REPRO_FORCE_PURE is set, repro.accel installs the meta-path finder
# that pins the hot-core modules to their python sources (the
# differential reference) ahead of any compiled extensions.
from . import accel as accel  # noqa: E402  (import order is the point)
