"""Action-lifecycle and membership spans.

The paper's performance claims are about *when* things happen, not just
how often: an action is multicast (red at the originator once it is
delivered back), becomes green when the primary component orders it,
and the end-to-end acknowledgment cost is paid only across membership
changes.  A :class:`SpanTracker` (one per node) records exactly those
intervals:

* **action spans** — submit (originator only) → red → green; closing a
  span feeds the ``red_to_green`` and ``submit_to_green`` latency
  histograms;
* **membership spans** — from the moment the node leaves steady state
  (transitional configuration, or entry into the exchange) until it
  installs a primary component;
* **vulnerable windows** — from voting for an installation attempt
  (the forced write before the CPC message) until the attempt's
  outcome is known (install, or the record is invalidated).

Timestamps come from the runtime clock the caller passes in, so the
same tracker serves virtual (simulated) and wall-clock time.

The histograms are exact over the whole run.  Completed spans are
additionally retained in a bounded ring for reports and tests — every
*interesting* span: non-zero red→green gap, or locally submitted.  The
steady-state majority — red and green at the same instant on a
non-originator, because the primary orders an action the moment it is
delivered — carries no information beyond its count, so the engine
folds it into :attr:`SpanTracker.instant_greens` (one integer add)
and the tracker flushes that count into the zero bucket of the
red→green histogram at collection time.  That keeps enabling
observability under 2% on the paper workloads (the ``obs_overhead``
wall-clock benchmark gates this).
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from .metrics import MetricsRegistry

#: Staleness probe sampling stride (a power of two): the engine feeds
#: one remote green in every ``STALENESS_STRIDE`` to
#: :meth:`SpanTracker.on_remote_green`'s histogram path.  Replica lag
#: is a statistical measure — percentiles over a 1-in-8 deterministic
#: sample match the full stream — and sampling keeps the probe's cost
#: on the ordering hot path to a counter increment.
STALENESS_STRIDE = 8


class ActionSpan:
    """One action's lifecycle at one node."""

    __slots__ = ("action_id", "submitted", "red", "green")

    def __init__(self, action_id: Any,
                 submitted: Optional[float] = None,
                 red: Optional[float] = None,
                 green: Optional[float] = None):
        self.action_id = action_id
        self.submitted = submitted
        self.red = red
        self.green = green

    @property
    def closed(self) -> bool:
        return self.green is not None

    @property
    def red_to_green(self) -> Optional[float]:
        if self.red is None or self.green is None:
            return None
        return self.green - self.red

    @property
    def submit_to_green(self) -> Optional[float]:
        if self.submitted is None or self.green is None:
            return None
        return self.green - self.submitted

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ActionSpan {self.action_id} submit={self.submitted} "
                f"red={self.red} green={self.green}>")


class MembershipSpan:
    """One membership change: steady state lost → primary installed."""

    __slots__ = ("started", "installed")

    def __init__(self, started: float):
        self.started = started
        self.installed: Optional[float] = None

    @property
    def duration(self) -> Optional[float]:
        if self.installed is None:
            return None
        return self.installed - self.started


class SpanTracker:
    """Per-node span bookkeeping, feeding the shared registry.

    The action hot path stores bare timestamps keyed by action id (no
    per-action objects until a span is retained in the ring): a
    ``submit`` or ``red`` is one dict write, a ``green`` is a pop plus
    a histogram observation.
    """

    __slots__ = ("node", "_h_red_green", "_h_submit_green",
                 "_h_membership", "_h_vulnerable", "_red_at",
                 "_submit_at", "instant_greens", "completed",
                 "membership_open", "membership_completed",
                 "vulnerable_open", "vulnerable_completed",
                 "_registry", "staleness_hist", "green_lag")

    def __init__(self, registry: MetricsRegistry, node: Any,
                 max_completed: int = 100_000):
        label = str(node)
        self.node = node
        self._registry = registry
        self._h_red_green = registry.histogram(
            "repro_action_red_to_green_seconds",
            "Latency from local (red) order to global (green) order.",
            labelnames=("server",)).labels(label)
        self._h_submit_green = registry.histogram(
            "repro_action_submit_to_green_seconds",
            "Client submit to global order, at the originating server.",
            labelnames=("server",)).labels(label)
        self._h_membership = registry.histogram(
            "repro_membership_change_seconds",
            "Steady state lost until a primary component is installed.",
            labelnames=("server",)).labels(label)
        self._h_vulnerable = registry.histogram(
            "repro_vulnerable_window_seconds",
            "Voting for an installation attempt until its outcome is "
            "known.", labelnames=("server",)).labels(label)

        self._red_at: Dict[Any, float] = {}
        self._submit_at: Dict[Any, float] = {}
        # Zero-gap greens the engine recorded with a bare increment;
        # flushed into the red→green histogram's zero bucket by
        # :meth:`flush` (hooked into registry collection).
        self.instant_greens = 0
        registry.collect_hook(self.flush)
        self.completed: Deque[ActionSpan] = deque(maxlen=max_completed)
        self.membership_open: Optional[MembershipSpan] = None
        self.membership_completed: Deque[MembershipSpan] = \
            deque(maxlen=max_completed)
        self.vulnerable_open: Optional[float] = None
        self.vulnerable_completed: Deque[Tuple[float, float]] = \
            deque(maxlen=max_completed)
        # Staleness probe (opt-in, see :meth:`enable_staleness`): the
        # histogram is created lazily so deployments that never measure
        # replica lag pay nothing, not even an empty instrument.
        self.staleness_hist: Optional[Any] = None
        self.green_lag = 0.0

    # ------------------------------------------------------------------
    # action lifecycle
    # ------------------------------------------------------------------
    def on_submit(self, action_id: Any, now: float) -> None:
        if action_id not in self._submit_at:
            self._submit_at[action_id] = now

    def on_red(self, action_id: Any, now: float) -> None:
        if action_id not in self._red_at:
            self._red_at[action_id] = now

    def on_green(self, action_id: Any, now: float) -> None:
        """Close an *interesting* span: the originator's, or one whose
        red was recorded at an earlier instant.  (The engine counts the
        zero-gap steady-state majority via :attr:`instant_greens`
        instead of calling in here.)

        A green with no recorded red means both happened at this
        instant (steady-state ordering at the originator, or a
        retransmission that was never red here): the gap is zero by
        definition."""
        red = self._red_at.pop(action_id, now)
        gap = now - red
        # Inlined Histogram.observe: this runs once per green at the
        # originator, the hottest non-batched instrument there is.
        histogram = self._h_red_green
        histogram.counts[bisect_left(histogram.bounds, gap)] += 1
        histogram.sum += gap
        histogram.count += 1
        submitted = self._submit_at.pop(action_id, None)
        if submitted is not None:
            self._h_submit_green.observe(now - submitted)
        self.completed.append(ActionSpan(action_id, submitted, red, now))

    def flush(self) -> None:
        """Fold the batched zero-gap green count into the red→green
        histogram (zero lands in the first bucket; sum is unchanged)."""
        pending = self.instant_greens
        if pending:
            self.instant_greens = 0
            histogram = self._h_red_green
            histogram.counts[0] += pending
            histogram.count += pending

    @property
    def greens_total(self) -> int:
        """Exact number of closed action spans (ring keeps only the
        interesting ones)."""
        return self._h_red_green.count + self.instant_greens

    @property
    def open(self) -> Dict[Any, ActionSpan]:
        """Open spans, materialized from the timestamp maps."""
        spans: Dict[Any, ActionSpan] = {}
        for action_id, submitted in self._submit_at.items():
            spans[action_id] = ActionSpan(action_id, submitted=submitted)
        for action_id, red in self._red_at.items():
            span = spans.get(action_id)
            if span is None:
                span = spans[action_id] = ActionSpan(action_id)
            span.red = red
        return spans

    # ------------------------------------------------------------------
    # membership lifecycle
    # ------------------------------------------------------------------
    def on_membership_start(self, now: float) -> None:
        """Steady state lost.  Idempotent: repeated exchanges before an
        install extend the same span (the cost the paper cares about is
        time-to-primary, not per-exchange time)."""
        if self.membership_open is None:
            self.membership_open = MembershipSpan(now)

    def on_install(self, now: float) -> None:
        span = self.membership_open
        if span is not None:
            span.installed = now
            self._h_membership.observe(span.duration or 0.0)
            self.membership_completed.append(span)
            self.membership_open = None
        self.close_vulnerable(now)

    # ------------------------------------------------------------------
    # vulnerable window
    # ------------------------------------------------------------------
    def open_vulnerable(self, now: float) -> None:
        if self.vulnerable_open is None:
            self.vulnerable_open = now

    def close_vulnerable(self, now: float) -> None:
        opened = self.vulnerable_open
        if opened is not None:
            self._h_vulnerable.observe(now - opened)
            self.vulnerable_completed.append((opened, now))
            self.vulnerable_open = None

    # ------------------------------------------------------------------
    # staleness probe (opt-in)
    # ------------------------------------------------------------------
    def enable_staleness(self) -> None:
        """Register the staleness instruments for this node.

        Staleness is the replica-lag measure ROADMAP item 2 asks for:
        for a green action that originated *elsewhere*, the gap
        between the originator's submit instant (carried in the
        action's metadata) and the moment this replica ordered it
        green.  A current-lag gauge and a whole-run histogram are
        registered; both read plain attributes updated by
        :meth:`on_remote_green`.  The engine *samples* the probe —
        one remote green in every :data:`STALENESS_STRIDE` — so lag
        percentiles stay statistically faithful while the hot path
        pays only a counter increment on the unsampled greens."""
        if self.staleness_hist is not None:
            return
        label = str(self.node)
        self.staleness_hist = self._registry.histogram(
            "repro_staleness_seconds",
            "Originator submit to local green order, for actions "
            "originated at other replicas (replica lag).",
            labelnames=("server",)).labels(label)
        self._registry.gauge_callback(
            "repro_green_lag_seconds", lambda: self.green_lag,
            "Staleness of the most recent remotely-originated green "
            "action at this replica.", ("server",), (label,))

    def on_remote_green(self, submitted: float, now: float) -> None:
        """A green action originated at another replica: observe the
        submit→local-green lag.  Only called when staleness probing is
        enabled (the engine keeps a None-check on the hot path)."""
        lag = now - submitted
        self.green_lag = lag
        histogram = self.staleness_hist
        # Inlined Histogram.observe, same reasoning as on_green.
        histogram.counts[bisect_left(histogram.bounds, lag)] += 1
        histogram.sum += lag
        histogram.count += 1

    def staleness_percentiles(self, qs: Tuple[float, ...] =
                              (0.50, 0.95, 0.99)) -> Optional[List[float]]:
        """Replica-lag percentiles, or None when the probe is off or
        saw no remote greens."""
        histogram = self.staleness_hist
        if histogram is None or not histogram.count:
            return None
        return [histogram.quantile(q) for q in qs]

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def latency_percentiles(self, which: str = "red_to_green",
                            qs: Tuple[float, ...] = (0.50, 0.95, 0.99)
                            ) -> List[float]:
        """Whole-run percentiles from the exact latency histograms
        (bucket-interpolated, Prometheus ``histogram_quantile`` style;
        the ring only retains the interesting spans, so it is not used
        here)."""
        self.flush()
        histogram = (self._h_red_green if which == "red_to_green"
                     else self._h_submit_green)
        return [histogram.quantile(q) for q in qs]

    def membership_durations(self) -> List[float]:
        return [span.duration for span in self.membership_completed
                if span.duration is not None]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<SpanTracker node={self.node} "
                f"open={len(self._red_at) + len(self._submit_at)} "
                f"completed={len(self.completed)}>")


class TxnSpan:
    """One cross-shard transaction's lifecycle at the coordinator."""

    __slots__ = ("txn_id", "shards", "began", "phases", "ended",
                 "outcome")

    def __init__(self, txn_id: str, shards: Tuple[int, ...],
                 began: float):
        self.txn_id = txn_id
        self.shards = shards
        self.began = began
        #: (phase, shard, time) checkpoints: prepare/decide/finish acks
        #: as their green records land in each participant's order.
        self.phases: List[Tuple[str, int, float]] = []
        self.ended: Optional[float] = None
        self.outcome: Optional[str] = None

    @property
    def duration(self) -> Optional[float]:
        if self.ended is None:
            return None
        return self.ended - self.began


class TxnSpans:
    """Deployment-wide cross-shard transaction spans.

    One instance per :class:`~repro.obs.Observability` bundle (the
    coordinator is not a replica, so these are not per-node).  Each
    transaction records its begin instant, per-shard phase checkpoints
    (``prepare``/``decide``/``finish`` greens as the coordinator learns
    of them), and its outcome; latencies feed shard-labeled histograms
    so ``obsreport`` can print a txn-latency percentile table per
    participant-set shape.
    """

    __slots__ = ("_registry", "_open", "completed", "_families")

    def __init__(self, registry: MetricsRegistry,
                 max_completed: int = 100_000):
        self._registry = registry
        self._open: Dict[str, TxnSpan] = {}
        self.completed: Deque[TxnSpan] = deque(maxlen=max_completed)
        # One histogram child per (shard-set, outcome) observed.
        self._families = registry.histogram(
            "repro_txn_latency_seconds",
            "Cross-shard transaction begin to outcome, labeled by the "
            "participant shard set.", labelnames=("shards", "outcome"))

    def on_begin(self, txn_id: str, shards: Tuple[int, ...],
                 now: float) -> None:
        self._open[txn_id] = TxnSpan(txn_id, tuple(shards), now)

    def on_phase(self, txn_id: str, phase: str, shard: int,
                 now: float) -> None:
        span = self._open.get(txn_id)
        if span is not None:
            span.phases.append((phase, shard, now))

    def on_done(self, txn_id: str, outcome: str, now: float) -> None:
        span = self._open.pop(txn_id, None)
        if span is None:
            return
        span.ended = now
        span.outcome = outcome
        label = "+".join(str(s) for s in span.shards)
        self._families.labels(label, outcome).observe(now - span.began)
        self.completed.append(span)

    def latency_percentiles(self, qs: Tuple[float, ...] =
                            (0.50, 0.95, 0.99)
                            ) -> Dict[Tuple[str, str], Dict[str, float]]:
        """Per (shard-set, outcome) child: observation count plus
        latency percentiles, for reports."""
        out: Dict[Tuple[str, str], Dict[str, float]] = {}
        for labels, child in sorted(self._families.children.items()):
            if child.count:
                entry: Dict[str, float] = {"count": float(child.count)}
                for q in qs:
                    entry[f"p{int(q * 100)}"] = child.quantile(q)
                out[labels] = entry
        return out
