"""Per-node flight recorder: a bounded ring of protocol events.

Post-mortem debugging of a replicated protocol needs the *last N
things each node did* — state transitions, view installs, message
send/receive pairs, retransmissions, WAL syncs, transaction phases —
cheap enough to leave on in production and structured enough to merge
across nodes into one causal timeline (``repro-trace``,
:mod:`repro.tools.tracecli`).

Design constraints, in order:

* **Deterministic.**  The recorder never reads a clock, posts no
  runtime events, and consumes no randomness: every ``record`` call
  takes the caller's Runtime timestamp as a parameter.  Recording is
  therefore invisible to the simulator — the fig5a determinism pin
  holds with tracing on.  The ``flight-clock`` analyzer rule
  (:mod:`repro.analysis.seams`) enforces this structurally: this
  module may not import a time source or evaluate ``.now``.
* **Allocation-light.**  One bounded deque of tuples per node;
  recording is a single C-level append (the engine caches the bound
  ``ring.append``).  No dicts or objects on the hot path.
* **Bounded.**  ``capacity`` caps memory per node; the ring keeps the
  newest events.

A :class:`FlightHub` owns the per-node recorders for one deployment,
mirrors :class:`~repro.sim.trace.Tracer` records into them (so existing
emission sites — ``engine.state``, ``gcs.install``, ``disk.sync``,
``txn.*`` — need no new plumbing), and triggers dump-on-anomaly through
an injected sink.  Writing files is blocking I/O and therefore lives in
the tools layer (:func:`repro.tools.tracecli.dump_flight`); protocol
code only ever hands dicts to the sink callback.
"""

from __future__ import annotations

from collections import deque
from typing import (TYPE_CHECKING, Any, Callable, Deque, Dict, List,
                    Optional, Tuple)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.trace import TraceRecord, Tracer

#: Tracer categories that indicate an anomaly worth dumping on.
ANOMALY_CATEGORIES = frozenset({"replica.crash", "txn.timeout"})

#: Bit 62 marks a transaction trace id (see :func:`txn_trace_id`);
#: action ids stay far below it, so ``trace >= TXN_TRACE_BIT`` is the
#: cheap is-a-transaction test on hot paths.
TXN_TRACE_BIT = 1 << 62

#: One recorded event: (time, kind, trace id, detail).  Detail is None,
#: a tuple, or — on the allocation-free fast paths — a bare scalar
#: (e.g. the sender id of a ``recv``, the position of a ``green``).
FlightEvent = Tuple[float, str, int, Any]

#: Sink signature: (reason, per-node event dicts) -> None.
DumpSink = Callable[[str, Dict[Any, List[Dict[str, Any]]]], None]


class FlightRecorder:
    """Bounded ring of structured protocol events for one node.

    Timestamps are supplied by the caller (``runtime.now``); the
    recorder holds no clock.

    The ring is a ``deque(maxlen=capacity)``, so an append evicts the
    oldest event in one C call — no cursor arithmetic on the hot path.
    ``ring`` is public and its identity is stable across :meth:`clear`:
    the engine caches the bound ``ring.append`` at construction and
    appends ``(t, kind, trace, detail)`` tuples directly (same
    reasoning as the inlined ``Histogram.observe`` in
    :mod:`repro.obs.spans`), so the event shape here and those sites
    must move together.
    """

    __slots__ = ("key", "capacity", "ring")

    def __init__(self, key: Any, capacity: int = 8192) -> None:
        self.key = key
        self.capacity = capacity
        self.ring: Deque[FlightEvent] = deque(maxlen=capacity)

    def record(self, t: float, kind: str, trace: int = 0,
               detail: Any = None) -> None:
        """Append one event; evicts the oldest when full."""
        self.ring.append((t, kind, trace, detail))

    def events(self) -> List[FlightEvent]:
        """Kept events, oldest first."""
        return list(self.ring)

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Kept events as JSON-able dicts (the dump artifact rows)."""
        out: List[Dict[str, Any]] = []
        for t, kind, trace, detail in self.events():
            row: Dict[str, Any] = {"node": self.key, "t": t, "kind": kind}
            if trace:
                row["trace"] = trace
            if detail is not None:
                row["detail"] = (list(detail) if isinstance(detail, tuple)
                                 else [detail])
            out.append(row)
        return out

    def clear(self) -> None:
        self.ring.clear()


class FlightHub:
    """The per-deployment set of flight recorders.

    Also bridges the existing :class:`~repro.sim.trace.Tracer` stream:
    every tracer record is mirrored into the emitting node's recorder,
    so categories that components already emit (state transitions, view
    installs, disk syncs, txn phases, crash/recover) appear in the
    flight ring without any new instrumentation sites.
    """

    def __init__(self, capacity: int = 8192) -> None:
        self.capacity = capacity
        self.recorders: Dict[Any, FlightRecorder] = {}
        self.anomalies = 0
        self._attached: set = set()
        #: Injected by the tools layer (file I/O stays out of protocol
        #: code); called with (reason, dump dicts) on each anomaly.
        self.sink: Optional[DumpSink] = None

    def recorder(self, key: Any) -> FlightRecorder:
        rec = self.recorders.get(key)
        if rec is None:
            rec = self.recorders[key] = FlightRecorder(key, self.capacity)
        return rec

    def attach(self, tracer: "Tracer") -> None:
        """Mirror ``tracer`` records into the per-node rings.
        Idempotent per tracer — a shard fabric hands the same tracer to
        every cluster, and each event must land in the ring once."""
        if id(tracer) in self._attached:
            return
        self._attached.add(id(tracer))
        tracer.subscribe(self._on_trace)

    def _on_trace(self, record: "TraceRecord") -> None:
        detail = tuple(f"{k}={v}" for k, v in record.detail.items()) \
            if record.detail else None
        self.recorder(record.node).record(
            record.time, record.category, 0, detail)
        if record.category in ANOMALY_CATEGORIES:
            self.note_anomaly(record.category)

    def note_anomaly(self, reason: str) -> None:
        """Record an anomaly; dump through the sink when one is set."""
        self.anomalies += 1
        if self.sink is not None:
            self.sink(reason, self.dump())

    def dump(self) -> Dict[Any, List[Dict[str, Any]]]:
        """Every recorder's kept events as JSON-able dicts."""
        return {key: rec.to_dicts()
                for key, rec in sorted(self.recorders.items(),
                                       key=lambda kv: str(kv[0]))}


def action_trace_id(server_id: int, index: int) -> int:
    """Deterministic trace id for an action submitted at a replica.

    ``(server_id << 32) | index`` — unique across a shard fabric
    because fabric node ids are globally unique, identical between a
    simulated and a live run of the same scenario (both count actions
    the same way), and always nonzero (server ids start at 1).  Fits a
    signed 64-bit wire field.
    """
    return (server_id << 32) | (index & 0xFFFFFFFF)


def txn_trace_id(txn_id: str) -> int:
    """Deterministic trace id for a cross-shard transaction.

    A stable 62-bit digest of the coordinator-assigned transaction
    name with bit 62 set, so transaction traces can never collide with
    action traces (which stay far below 2**52) and still fit the
    signed 64-bit wire field.
    """
    digest = 0
    for byte in txn_id.encode("utf-8"):
        digest = (digest * 1000003 + byte) & 0x3FFFFFFFFFFFFFFF
    return digest | TXN_TRACE_BIT
