"""Typed metric instruments and the registry that owns them.

The observability layer's data model is deliberately Prometheus-shaped:
a registry holds *families* (one per metric name), a family holds one
*child* per label-value combination, and a child is the object the hot
path actually touches.  Three instrument kinds:

* :class:`Counter` — monotonically increasing count (``inc``);
* :class:`Gauge`   — a value that goes up and down (``set``/``inc``);
* :class:`Histogram` — fixed-bucket distribution (``observe``), with
  quantile estimation by linear interpolation inside the bucket.

Cost model (this is what keeps the simulation fast path honest):

* Counter/Gauge children are **always live**, registry enabled or not.
  A child increment is one attribute add — the same price as the
  ``engine.stats`` dict bump it replaced — so there is nothing worth
  gating, and protocol counters keep working in default (metrics-off)
  clusters.
* Histograms are the measurable extra (a bisect per observation), so a
  disabled registry hands out a shared no-op histogram child.
* Callback gauges (:meth:`MetricsRegistry.gauge_callback`) are read
  only at collection time — queue depths and state codes cost nothing
  between scrapes — and a disabled registry drops them entirely.

The ``obs_overhead`` scenario in ``benchmarks/bench_wallclock.py``
gates the enabled-vs-disabled difference on the Figure 5(a) workload
at under 2%.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import (Any, Callable, Dict, Iterable, List, Optional, Sequence,
                    Tuple)

LabelValues = Tuple[str, ...]

#: Default latency buckets (seconds): half a millisecond to a minute,
#: roughly log-spaced.  Covers live fsyncs (~0.5 ms), LAN green latency
#: (~11 ms with the paper's disk), and partition-length membership
#: outages (seconds).
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0)


def percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (q in [0, 1]).

    Canonical home of the helper the benchmark suite also uses
    (re-exported by :mod:`repro.bench.metrics`).
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram: counts per bucket, plus sum and count.

    ``bounds`` are inclusive upper bounds; observations above the last
    bound land in the implicit +Inf bucket.  ``counts`` are *per
    bucket* (not cumulative); exporters cumulate for the Prometheus
    text format.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float] = LATENCY_BUCKETS):
        self.bounds: Tuple[float, ...] = tuple(bounds)
        if any(b2 <= b1 for b1, b2 in zip(self.bounds, self.bounds[1:])):
            raise ValueError(f"bucket bounds not increasing: {bounds}")
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (q in [0, 1]) from the buckets.

        Linear interpolation inside the bucket containing the target
        rank; the +Inf bucket reports the last finite bound (the
        histogram cannot see further).
        """
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0.0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= target:
                if index >= len(self.bounds):        # +Inf bucket
                    return self.bounds[-1]
                low = self.bounds[index - 1] if index > 0 else 0.0
                high = self.bounds[index]
                fraction = (target - seen) / bucket_count
                return low + (high - low) * min(1.0, max(0.0, fraction))
            seen += bucket_count
        return self.bounds[-1]


class _NullHistogram:
    """Shared no-op histogram child handed out by a disabled registry."""

    __slots__ = ()
    bounds: Tuple[float, ...] = ()
    counts: List[int] = []
    sum = 0.0
    count = 0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0


NULL_HISTOGRAM = _NullHistogram()

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


class MetricFamily:
    """All children of one metric name, one child per label tuple."""

    def __init__(self, name: str, kind: str, help: str = "",
                 labelnames: Sequence[str] = (),
                 buckets: Optional[Sequence[float]] = None,
                 live: bool = True):
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self.buckets = tuple(buckets) if buckets is not None else None
        self.live = live
        self.children: Dict[LabelValues, Any] = {}

    def _make_child(self) -> Any:
        if self.kind == COUNTER:
            return Counter()
        if self.kind == GAUGE:
            return Gauge()
        if not self.live:
            return NULL_HISTOGRAM
        return Histogram(self.buckets if self.buckets is not None
                         else LATENCY_BUCKETS)

    def labels(self, *values: Any, fresh: bool = False) -> Any:
        """The child for ``values`` (created on first use).

        ``fresh=True`` replaces any existing child with a zeroed one —
        the counter-reset a component performs when it is rebuilt after
        a crash (exactly like a process restart under Prometheus).
        """
        key = tuple(str(v) for v in values)
        if len(key) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {key}")
        child = self.children.get(key)
        if child is None or fresh:
            child = self.children[key] = self._make_child()
        return child

    def samples(self) -> Iterable[Tuple[LabelValues, Any]]:
        return self.children.items()


class MetricsRegistry:
    """Owns every instrument of one deployment (cluster or process).

    ``enabled=False`` keeps counters and gauges live (see the module
    docstring for why) but makes histograms no-ops and drops callback
    gauges; exporters work against either mode and simply show what the
    registry holds.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._families: Dict[str, MetricFamily] = {}
        self._callbacks: List[Tuple[str, LabelValues,
                                    Callable[[], float]]] = []
        self._collect_hooks: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # instrument factories
    # ------------------------------------------------------------------
    def _family(self, name: str, kind: str, help: str,
                labelnames: Sequence[str],
                buckets: Optional[Sequence[float]] = None) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = MetricFamily(
                name, kind, help, labelnames, buckets,
                live=(self.enabled or kind != HISTOGRAM))
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}")
        return family

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, COUNTER, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, GAUGE, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = LATENCY_BUCKETS
                  ) -> MetricFamily:
        return self._family(name, HISTOGRAM, help, labelnames, buckets)

    def gauge_callback(self, name: str, fn: Callable[[], float],
                       help: str = "",
                       labelnames: Sequence[str] = (),
                       labelvalues: Sequence[Any] = ()) -> None:
        """Register a gauge evaluated at collection time only.

        The reading costs nothing between scrapes — the right shape for
        queue depths, state codes, and mirrored component counters.  A
        disabled registry drops the registration entirely.
        """
        self._callback(name, GAUGE, fn, help, labelnames, labelvalues)

    def counter_callback(self, name: str, fn: Callable[[], float],
                         help: str = "",
                         labelnames: Sequence[str] = (),
                         labelvalues: Sequence[Any] = ()) -> None:
        """Register a counter mirrored from component state at
        collection time only.

        For components that already keep a monotonic native count on
        their hot path (WAL appends, disk writes): exporting through a
        callback keeps the instrument off that path entirely while the
        exposition still advertises counter semantics.
        """
        self._callback(name, COUNTER, fn, help, labelnames, labelvalues)

    def _callback(self, name: str, kind: str, fn: Callable[[], float],
                  help: str, labelnames: Sequence[str],
                  labelvalues: Sequence[Any]) -> None:
        if not self.enabled:
            return
        self._family(name, kind, help, labelnames)
        values = tuple(str(v) for v in labelvalues)
        self._callbacks.append((name, values, fn))

    def collect_hook(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` at the start of every collection.

        For instruments that batch hot-path updates natively and fold
        them in lazily (e.g. the span trackers' zero-gap green count).
        Dropped when the registry is disabled, like callbacks.
        """
        if not self.enabled:
            return
        self._collect_hooks.append(fn)

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def collect(self) -> List[MetricFamily]:
        """Materialise callback gauges and return every family, sorted
        by name.  Callback gauges overwrite their child's value; a
        callback that raises reports NaN rather than killing a scrape."""
        for hook in self._collect_hooks:
            hook()
        for name, labelvalues, fn in self._callbacks:
            family = self._families[name]
            child = family.labels(*labelvalues)
            try:
                child.value = float(fn())
            except Exception:
                child.value = float("nan")
        return [self._families[name] for name in sorted(self._families)]

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able snapshot: metric name -> {labels-string: value}.

        Histograms render as ``{count, sum, p50, p95, p99}``.
        """
        doc: Dict[str, Any] = {}
        for family in self.collect():
            entry: Dict[str, Any] = {}
            for labelvalues, child in sorted(family.samples()):
                key = ",".join(labelvalues) if labelvalues else ""
                if family.kind == HISTOGRAM:
                    entry[key] = {
                        "count": child.count,
                        "sum": round(child.sum, 9),
                        "p50": round(child.quantile(0.50), 9),
                        "p95": round(child.quantile(0.95), 9),
                        "p99": round(child.quantile(0.99), 9),
                    }
                else:
                    entry[key] = child.value
            doc[family.name] = entry
        return doc

    def get_sample(self, name: str, *labelvalues: Any) -> Optional[Any]:
        """The child for (name, labels), or None if never registered."""
        family = self._families.get(name)
        if family is None:
            return None
        return family.children.get(tuple(str(v) for v in labelvalues))


class _ScopedFamily(MetricFamily):
    """A view of a base family that pins a leading label prefix.

    Shares the base family's children dict, so scoped and direct reads
    observe the same instruments; only ``labels``/``samples`` differ.
    """

    def __init__(self, base: MetricFamily, prefix: LabelValues):
        super().__init__(base.name, base.kind, base.help,
                         base.labelnames[len(prefix):], base.buckets,
                         live=base.live)
        self._base = base
        self._prefix = prefix
        self.children = base.children

    def labels(self, *values: Any, fresh: bool = False) -> Any:
        return self._base.labels(*self._prefix, *values, fresh=fresh)

    def samples(self) -> Iterable[Tuple[LabelValues, Any]]:
        width = len(self._prefix)
        return ((key[width:], child)
                for key, child in self._base.children.items()
                if key[:width] == self._prefix)


class ShardScopedRegistry(MetricsRegistry):
    """A registry view that prepends a ``shard`` label to every family.

    The shard fabric hands each replication group's components a scoped
    view of one shared base registry: components keep registering under
    their usual names and labelnames, and the view injects
    ``("shard",) + labelnames`` / ``(shard,) + labelvalues`` so one
    exporter sees every group, distinguishable by shard.

    A metric name must be registered either always scoped or always
    unscoped within one base registry: the first registration fixes the
    family's labelnames, and a later registration through the other path
    would produce label tuples of the wrong width (``labels`` raises).
    Single-group deployments never construct this class, so the
    established unscoped metric names are untouched.
    """

    def __init__(self, base: MetricsRegistry, shard: int):
        super().__init__(enabled=base.enabled)
        self._base = base
        self.shard = shard
        self._shard_value = str(shard)
        self._prefix: LabelValues = (self._shard_value,)

    def _family(self, name: str, kind: str, help: str,
                labelnames: Sequence[str],
                buckets: Optional[Sequence[float]] = None) -> MetricFamily:
        base_family = self._base._family(
            name, kind, help, ("shard",) + tuple(labelnames), buckets)
        return _ScopedFamily(base_family, self._prefix)

    def _callback(self, name: str, kind: str, fn: Callable[[], float],
                  help: str, labelnames: Sequence[str],
                  labelvalues: Sequence[Any]) -> None:
        self._base._callback(
            name, kind, fn, help, ("shard",) + tuple(labelnames),
            (self._shard_value,) + tuple(str(v) for v in labelvalues))

    def collect_hook(self, fn: Callable[[], None]) -> None:
        self._base.collect_hook(fn)

    def collect(self) -> List[MetricFamily]:
        return self._base.collect()

    def snapshot(self) -> Dict[str, Any]:
        return self._base.snapshot()

    def get_sample(self, name: str, *labelvalues: Any) -> Optional[Any]:
        return self._base.get_sample(name, self._shard_value, *labelvalues)
