"""Exporters: JSON snapshots, Prometheus text, and a live HTTP endpoint.

Three ways out of a :class:`~repro.obs.metrics.MetricsRegistry`:

* :func:`snapshot_json` — a JSON document (the ``obsreport`` CLI and
  tests consume this);
* :func:`prometheus_text` — the Prometheus text exposition format
  (version 0.0.4): ``# HELP``/``# TYPE`` headers, cumulative
  ``_bucket{le=...}`` histogram series, ``_sum`` and ``_count``;
* :class:`MetricsServer` — a dependency-free HTTP server on the
  asyncio event loop serving ``GET /metrics`` (Prometheus text) and
  ``GET /status`` (a JSON view of live state supplied by the host,
  e.g. engine/daemon states and queue depths per replica).

:func:`lint_prometheus` validates exposition text structurally — CI
scrapes the live cluster example and lints what it serves.
"""

from __future__ import annotations

import json
import re
from typing import Any, Callable, Dict, List, Optional

from .metrics import COUNTER, HISTOGRAM, MetricsRegistry

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def snapshot_json(registry: MetricsRegistry, indent: int = 2) -> str:
    """The registry snapshot as a JSON document."""
    return json.dumps(registry.snapshot(), indent=indent, sort_keys=True)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n") \
                .replace('"', r'\"')


def _format_labels(labelnames, labelvalues, extra: str = "") -> str:
    pairs = [f'{name}="{_escape_label_value(value)}"'
             for name, value in zip(labelnames, labelvalues)]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value: float) -> str:
    if value != value:                       # NaN
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for family in registry.collect():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labelvalues, child in sorted(family.samples()):
            if family.kind == HISTOGRAM:
                cumulative = 0
                for bound, count in zip(child.bounds, child.counts):
                    cumulative += count
                    labels = _format_labels(family.labelnames, labelvalues,
                                            extra=f'le="{bound}"')
                    lines.append(f"{family.name}_bucket{labels} "
                                 f"{cumulative}")
                labels = _format_labels(family.labelnames, labelvalues,
                                        extra='le="+Inf"')
                lines.append(f"{family.name}_bucket{labels} {child.count}")
                plain = _format_labels(family.labelnames, labelvalues)
                lines.append(f"{family.name}_sum{plain} "
                             f"{_format_value(child.sum)}")
                lines.append(f"{family.name}_count{plain} {child.count}")
            else:
                labels = _format_labels(family.labelnames, labelvalues)
                lines.append(f"{family.name}{labels} "
                             f"{_format_value(child.value)}")
    return "\n".join(lines) + "\n"


def lint_prometheus(text: str) -> List[str]:
    """Structural lint of exposition text; returns a list of problems
    (empty means the text scrapes cleanly).

    Checks: metric/label name syntax, every sample preceded by a
    ``# TYPE`` for its family, counters ending in ``_total`` or being
    histogram series, histogram buckets cumulative with ``_count``
    equal to the ``+Inf`` bucket, and parseable sample values.
    """
    problems: List[str] = []
    types: Dict[str, str] = {}
    bucket_state: Dict[str, float] = {}
    sample_re = re.compile(
        r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})?\s+(\S+)$")
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) < 4 or parts[3] not in ("counter", "gauge",
                                                  "histogram", "summary",
                                                  "untyped"):
                problems.append(f"line {lineno}: malformed TYPE: {line!r}")
                continue
            if not _NAME_RE.match(parts[2]):
                problems.append(f"line {lineno}: bad metric name "
                                f"{parts[2]!r}")
            if parts[2] in types:
                problems.append(f"line {lineno}: duplicate TYPE for "
                                f"{parts[2]!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        match = sample_re.match(line)
        if not match:
            problems.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name, _, labels, value = match.groups()
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        family = base if base in types else name
        if family not in types:
            problems.append(f"line {lineno}: sample {name!r} has no "
                            f"preceding # TYPE")
        try:
            parsed = float(value)
        except ValueError:
            problems.append(f"line {lineno}: bad value {value!r}")
            continue
        if labels:
            for pair in re.findall(r'([a-zA-Z_][a-zA-Z0-9_]*|[^=,]+)='
                                   r'"((?:[^"\\]|\\.)*)"', labels):
                if not _LABEL_RE.match(pair[0]):
                    problems.append(f"line {lineno}: bad label name "
                                    f"{pair[0]!r}")
        if types.get(family) == "counter" and parsed < 0:
            problems.append(f"line {lineno}: counter {name!r} is negative")
        if name.endswith("_bucket") and labels is not None:
            le = re.search(r'le="([^"]*)"', labels)
            series = name + re.sub(r',?le="[^"]*"', "", labels)
            if le is None:
                problems.append(f"line {lineno}: histogram bucket "
                                f"without le label")
            else:
                previous = bucket_state.get(series, -1.0)
                if parsed < previous:
                    problems.append(f"line {lineno}: non-cumulative "
                                    f"bucket series {series!r}")
                bucket_state[series] = parsed
    return problems


class MetricsServer:
    """A minimal HTTP/1.0 server for live metrics on the asyncio loop.

    Serves ``GET /metrics`` (Prometheus text) and ``GET /status``
    (JSON from ``status_fn``).  ``port=0`` binds an OS-assigned port,
    published on :attr:`port` after :meth:`start`.  No external
    dependencies: requests are parsed by hand, responses close the
    connection — exactly enough for a scraper or ``curl``.
    """

    def __init__(self, registry: MetricsRegistry,
                 status_fn: Optional[Callable[[], Dict[str, Any]]] = None,
                 host: str = "127.0.0.1", port: int = 0):
        self.registry = registry
        self.status_fn = status_fn
        self.host = host
        self.port = port
        self._server: Optional[Any] = None

    async def start(self) -> "MetricsServer":
        # repro: allow[seam-import] -- operational HTTP export runs on a
        # real event loop by definition; never imported by protocol code.
        import asyncio
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def _handle(self, reader: Any, writer: Any) -> None:
        try:
            request_line = await reader.readline()
            while True:                     # drain headers
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else "/"
            if path.split("?")[0] == "/metrics":
                body = prometheus_text(self.registry)
                status, ctype = "200 OK", \
                    "text/plain; version=0.0.4; charset=utf-8"
            elif path.split("?")[0] == "/status":
                doc = self.status_fn() if self.status_fn is not None \
                    else {}
                body = json.dumps(doc, indent=2, sort_keys=True,
                                  default=str) + "\n"
                status, ctype = "200 OK", "application/json"
            else:
                body = "not found: try /metrics or /status\n"
                status, ctype = "404 Not Found", "text/plain"
            payload = body.encode("utf-8")
            writer.write(
                f"HTTP/1.0 {status}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n".encode("latin-1") + payload)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()

    def close(self) -> None:
        if self._server is not None:
            self._server.close()

    async def wait_closed(self) -> None:
        if self._server is not None:
            await self._server.wait_closed()


async def fetch_http(host: str, port: int, path: str,
                     timeout: float = 5.0) -> str:
    """Tiny asyncio HTTP GET (body only) — the example and CI use it to
    scrape a :class:`MetricsServer` without external tooling."""
    # repro: allow[seam-import] -- scraping helper for tests/CI; talks
    # to the export server, not part of the protocol stack.
    import asyncio
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout)
    try:
        writer.write(f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n"
                     .encode("latin-1"))
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    status_line = head.splitlines()[0].decode("latin-1")
    if " 200 " not in status_line + " ":
        raise RuntimeError(f"GET {path} -> {status_line}")
    return body.decode("utf-8")
