"""Protocol observability: metrics registry, lifecycle spans, exporters.

One :class:`Observability` object per deployment (a simulated
:class:`~repro.core.ReplicaCluster` or a live
:class:`~repro.runtime.LiveCluster`) bundles the pieces:

* a :class:`~repro.obs.metrics.MetricsRegistry` shared by every node,
  with per-node children distinguished by a ``server`` label;
* one :class:`~repro.obs.spans.SpanTracker` per node, recording
  action red→green / submit→green latencies, membership-change
  durations, and vulnerable-window lengths;
* exporters (:mod:`repro.obs.export`): JSON snapshot, Prometheus text,
  and a live asyncio HTTP endpoint.

Disabled observability (the default for simulated clusters) keeps the
plain protocol counters alive — they are as cheap as the ad-hoc dicts
they replaced and several tests assert on them — while span tracking,
histograms, and callback gauges cost nothing.  See
``docs/OBSERVABILITY.md`` for the instrument catalog.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .export import (MetricsServer, fetch_http, lint_prometheus,
                     prometheus_text, snapshot_json)
from .metrics import (LATENCY_BUCKETS, Counter, Gauge, Histogram,
                      MetricsRegistry, ShardScopedRegistry, percentile)
from .spans import ActionSpan, MembershipSpan, SpanTracker


class Observability:
    """Per-deployment bundle: registry + per-node span trackers."""

    def __init__(self, enabled: bool = True,
                 registry: Optional[MetricsRegistry] = None,
                 max_completed_spans: int = 100_000):
        self.enabled = enabled
        self.registry = registry if registry is not None \
            else MetricsRegistry(enabled=enabled)
        self.max_completed_spans = max_completed_spans
        self.trackers: Dict[Any, SpanTracker] = {}

    @classmethod
    def disabled(cls) -> "Observability":
        return cls(enabled=False)

    def tracker(self, node: Any) -> Optional[SpanTracker]:
        """The span tracker for ``node`` (None when disabled: callers
        keep a None-check on the hot path instead of paying a call)."""
        if not self.enabled:
            return None
        tracker = self.trackers.get(node)
        if tracker is None:
            tracker = self.trackers[node] = SpanTracker(
                self.registry, node,
                max_completed=self.max_completed_spans)
        return tracker

    def for_shard(self, shard: int) -> "Observability":
        """A view of this bundle scoped to one replication group.

        Components built against the returned bundle register their
        instruments with a leading ``shard`` label injected (see
        :class:`~repro.obs.metrics.ShardScopedRegistry`); span trackers
        are shared with the parent, keyed by the fabric's globally
        unique node ids.  On a disabled bundle this returns ``self`` —
        nothing registers callbacks anyway, and the live counters stay
        distinguishable by node id alone.
        """
        if not self.enabled:
            return self
        scoped = Observability.__new__(Observability)
        scoped.enabled = self.enabled
        scoped.registry = ShardScopedRegistry(self.registry, shard)
        scoped.max_completed_spans = self.max_completed_spans
        scoped.trackers = self.trackers
        return scoped

    def prometheus(self) -> str:
        return prometheus_text(self.registry)

    def snapshot(self) -> Dict[str, Any]:
        return self.registry.snapshot()


__all__ = [
    "ActionSpan",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MembershipSpan",
    "MetricsRegistry",
    "MetricsServer",
    "Observability",
    "ShardScopedRegistry",
    "SpanTracker",
    "fetch_http",
    "lint_prometheus",
    "percentile",
    "prometheus_text",
    "snapshot_json",
]
