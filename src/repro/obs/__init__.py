"""Protocol observability: metrics registry, lifecycle spans, exporters.

One :class:`Observability` object per deployment (a simulated
:class:`~repro.core.ReplicaCluster` or a live
:class:`~repro.runtime.LiveCluster`) bundles the pieces:

* a :class:`~repro.obs.metrics.MetricsRegistry` shared by every node,
  with per-node children distinguished by a ``server`` label;
* one :class:`~repro.obs.spans.SpanTracker` per node, recording
  action red→green / submit→green latencies, membership-change
  durations, and vulnerable-window lengths;
* exporters (:mod:`repro.obs.export`): JSON snapshot, Prometheus text,
  and a live asyncio HTTP endpoint.

Disabled observability (the default for simulated clusters) keeps the
plain protocol counters alive — they are as cheap as the ad-hoc dicts
they replaced and several tests assert on them — while span tracking,
histograms, and callback gauges cost nothing.  See
``docs/OBSERVABILITY.md`` for the instrument catalog.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .export import (MetricsServer, fetch_http, lint_prometheus,
                     prometheus_text, snapshot_json)
from .flight import (FlightHub, FlightRecorder, action_trace_id,
                     txn_trace_id)
from .metrics import (LATENCY_BUCKETS, Counter, Gauge, Histogram,
                      MetricsRegistry, ShardScopedRegistry, percentile)
from .spans import ActionSpan, MembershipSpan, SpanTracker, TxnSpans


class Observability:
    """Per-deployment bundle: registry + per-node span trackers.

    ``flight=True`` additionally turns on distributed tracing: every
    submitted action gets a deterministic trace id, a per-node
    :class:`~repro.obs.flight.FlightRecorder` keeps a bounded ring of
    protocol events, and cross-shard transaction phases are recorded
    under the transaction's trace id.  ``staleness=True`` (implies
    span tracking) lets replicas measure how far their green prefix
    lags the originator's submission time (see
    :meth:`~repro.obs.spans.SpanTracker.on_remote_green`).  Both are
    off by default so the hot paths stay a ``None``-check.
    """

    def __init__(self, enabled: bool = True,
                 registry: Optional[MetricsRegistry] = None,
                 max_completed_spans: int = 100_000,
                 flight: bool = False,
                 flight_capacity: int = 8192,
                 staleness: bool = False):
        self.enabled = enabled
        self.registry = registry if registry is not None \
            else MetricsRegistry(enabled=enabled)
        self.max_completed_spans = max_completed_spans
        self.trackers: Dict[Any, SpanTracker] = {}
        self.staleness = staleness and enabled
        self.flight_hub: Optional[FlightHub] = \
            FlightHub(flight_capacity) if flight else None
        self._txn_spans: Optional[TxnSpans] = None
        # Deployment-wide state (txn spans) lives on the root bundle;
        # shard-scoped views delegate to it.
        self._root: "Observability" = self

    @classmethod
    def disabled(cls) -> "Observability":
        return cls(enabled=False)

    def flight(self, node: Any) -> Optional[FlightRecorder]:
        """The flight recorder for ``node`` (None when tracing is off:
        hot paths keep a None-check instead of paying a call)."""
        hub = self.flight_hub
        return hub.recorder(node) if hub is not None else None

    def txn_spans(self) -> Optional[TxnSpans]:
        """The deployment-wide transaction span tracker (None when
        disabled)."""
        root = self._root
        if not root.enabled:
            return None
        if root._txn_spans is None:
            root._txn_spans = TxnSpans(root.registry)
        return root._txn_spans

    def tracker(self, node: Any) -> Optional[SpanTracker]:
        """The span tracker for ``node`` (None when disabled: callers
        keep a None-check on the hot path instead of paying a call)."""
        if not self.enabled:
            return None
        tracker = self.trackers.get(node)
        if tracker is None:
            tracker = self.trackers[node] = SpanTracker(
                self.registry, node,
                max_completed=self.max_completed_spans)
        return tracker

    def for_shard(self, shard: int) -> "Observability":
        """A view of this bundle scoped to one replication group.

        Components built against the returned bundle register their
        instruments with a leading ``shard`` label injected (see
        :class:`~repro.obs.metrics.ShardScopedRegistry`); span trackers
        are shared with the parent, keyed by the fabric's globally
        unique node ids.  On a disabled bundle this returns ``self`` —
        nothing registers callbacks anyway, and the live counters stay
        distinguishable by node id alone.
        """
        if not self.enabled:
            return self
        scoped = Observability.__new__(Observability)
        scoped.enabled = self.enabled
        scoped.registry = ShardScopedRegistry(self.registry, shard)
        scoped.max_completed_spans = self.max_completed_spans
        scoped.trackers = self.trackers
        scoped.staleness = self.staleness
        scoped.flight_hub = self.flight_hub
        scoped._txn_spans = None
        scoped._root = self._root
        return scoped

    def prometheus(self) -> str:
        return prometheus_text(self.registry)

    def snapshot(self) -> Dict[str, Any]:
        return self.registry.snapshot()


__all__ = [
    "ActionSpan",
    "Counter",
    "FlightHub",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MembershipSpan",
    "MetricsRegistry",
    "MetricsServer",
    "Observability",
    "ShardScopedRegistry",
    "SpanTracker",
    "TxnSpans",
    "action_trace_id",
    "fetch_http",
    "lint_prometheus",
    "percentile",
    "prometheus_text",
    "snapshot_json",
    "txn_trace_id",
]
