"""The cross-shard transaction coordinator.

Drives the prepare → decide → finish commit path of
:mod:`repro.shard.txn` against N replication groups.  The coordinator
itself holds **no durable state** — every protocol record it emits is a
green action in some shard's total order, so its crash loses nothing
but liveness: :meth:`recover_staged` (typically run by a fabric after
replacing a crashed coordinator) terminates every staged transaction by
racing an abort decision against whatever the old coordinator managed
to decide, and the decider shard's total order arbitrates.

Runtime-agnostic: time only via the :class:`~repro.runtime.base.Runtime`
seam (the prepare timeout), submission only via an injected
``submit(shard, update, on_complete)`` callable, so the identical
coordinator runs under the deterministic simulator and on asyncio.
The ``fail_before_finish`` flag is fault injection for the
crash-consistency tests: the coordinator decides, then "crashes" before
sending any finish record — the exact window the recovery sweep exists
for.
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Optional,
                    Tuple)

from ..obs.flight import txn_trace_id
from ..sim import Tracer
from .router import KeyRangeRouter
from .txn import (ABORT, COMMIT, decide_update, finish_update,
                  prepare_update)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs import Observability
    from ..runtime.base import Handle, Runtime

#: ``submit(shard, update, on_complete, meta) -> action id`` — provided
#: by the fabric; ``on_complete`` fires when the update goes green at
#: the submitting replica, with ``(action, position, result)``.
#: ``meta`` rides the action so all of a transaction's records carry
#: the same trace id (and their protocol phase) end to end.
SubmitFn = Callable[[int, Any, Optional[Callable[..., None]],
                     Optional[Dict[str, Any]]], Any]

DoneFn = Callable[[str, str], None]


def _call_result(result: Any) -> Any:
    """The procedure return value out of a green completion result (a
    per-statement result list; error markers come back as None)."""
    if isinstance(result, list) and result:
        return result[0]
    return None


class _Txn:
    """In-flight coordinator bookkeeping for one transaction."""

    __slots__ = ("txn_id", "trace", "participants", "decider", "on_done",
                 "prepared", "finished", "decision", "phase", "timer")

    def __init__(self, txn_id: str, participants: List[int],
                 decider: int, on_done: Optional[DoneFn]):
        self.txn_id = txn_id
        self.trace = txn_trace_id(txn_id)
        self.participants = participants
        self.decider = decider
        self.on_done = on_done
        self.prepared: set = set()
        self.finished: set = set()
        self.decision: Optional[str] = None
        self.phase = "prepare"
        self.timer: Optional["Handle"] = None


class TxnCoordinator:
    """2PC-style commit over replicated green records.

    One logical coordinator per fabric; ``home`` names the node whose
    crash takes the coordinator down with it (the paper's node model:
    co-located components fail together).
    """

    def __init__(self, runtime: "Runtime", router: KeyRangeRouter,
                 submit: SubmitFn, *, name: str = "txn",
                 home: Optional[int] = None,
                 prepare_timeout: float = 5.0,
                 tracer: Optional[Tracer] = None,
                 obs: Optional["Observability"] = None):
        self.runtime = runtime
        self.router = router
        self._submit = submit
        self.name = name
        self.home = home
        self.prepare_timeout = prepare_timeout
        self.tracer = tracer or Tracer(enabled=False)
        self.alive = True
        #: Fault injection: decide, then crash before any finish record.
        self.fail_before_finish = False

        self._seq = 0
        self._txns: Dict[str, _Txn] = {}
        self.commits = 0
        self.aborts = 0
        self.local_txns = 0
        self.recovered = 0

        #: Coordinator-side tracing: a flight recorder keyed by the
        #: coordinator's name plus deployment-wide txn spans; both are
        #: None-checks on the commit path when observability is off.
        self._flight = obs.flight(name) if obs is not None else None
        self._txn_spans = obs.txn_spans() if obs is not None else None

        self._c_outcomes = None
        if obs is not None and obs.enabled:
            family = obs.registry.counter(
                "repro_txn_outcomes_total",
                "Cross-shard transaction outcomes at the coordinator.",
                ("outcome",))
            self._c_outcomes = {
                COMMIT: family.labels(COMMIT),
                ABORT: family.labels(ABORT),
                "local": family.labels("local"),
            }

    # ==================================================================
    # lifecycle
    # ==================================================================
    def halt(self) -> None:
        """Coordinator crash: drop all in-flight bookkeeping.  The
        green prepare/decide records survive in the shards; a recovery
        sweep terminates what was in flight."""
        self.alive = False
        for txn in self._txns.values():
            if txn.timer is not None:
                txn.timer.cancel()
                txn.timer = None
        self._txns = {}

    @property
    def in_flight(self) -> int:
        return len(self._txns)

    # ==================================================================
    # the commit path
    # ==================================================================
    def submit_transaction(self, update: Any,
                           on_done: Optional[DoneFn] = None) -> str:
        """Route ``update``; shard-local fragments commit directly,
        cross-shard ones run the prepare/decide/finish protocol.

        ``on_done(txn_id, outcome)`` fires once the outcome is durable
        at every participant (``outcome`` is ``"commit"``/``"abort"``).
        Returns the transaction id.
        """
        if not self.alive:
            raise RuntimeError("coordinator has been halted")
        fragments = self.router.split_update(update)
        shards = sorted(fragments)
        self._seq += 1
        txn_id = f"{self.name}-{self._seq}"

        if len(shards) == 1:
            # Shard-local: the shard's own total order is the whole
            # commit protocol.
            self.local_txns += 1
            if self._c_outcomes is not None:
                self._c_outcomes["local"].inc()
            shard = shards[0]

            def local_done(_action: Any, _pos: int, _result: Any) -> None:
                if on_done is not None:
                    on_done(txn_id, COMMIT)

            self._submit(shard, fragments[shard], local_done,
                         {"trace": txn_trace_id(txn_id)})
            return txn_id

        decider = shards[0]
        txn = _Txn(txn_id, shards, decider, on_done)
        self._txns[txn_id] = txn
        txn.timer = self.runtime.schedule(self.prepare_timeout,
                                          self._on_timeout, txn_id)
        self.tracer.emit(self.runtime.now, self.home or 0, "txn.begin",
                         txn=txn_id, shards=tuple(shards))
        if self._flight is not None:
            self._flight.record(self.runtime.now, "txn.begin", txn.trace,
                                tuple(shards))
        if self._txn_spans is not None:
            self._txn_spans.on_begin(txn_id, shards, self.runtime.now)
        for shard in shards:
            record = prepare_update(txn_id, fragments[shard], shards,
                                    decider)
            self._submit(shard, record, self._prepare_cb(txn_id, shard),
                         {"trace": txn.trace, "phase": "prepare"})
        return txn_id

    def _prepare_cb(self, txn_id: str,
                    shard: int) -> Callable[..., None]:
        def on_green(_action: Any, _pos: int, result: Any) -> None:
            self._on_prepared(txn_id, shard, _call_result(result))
        return on_green

    def _on_prepared(self, txn_id: str, shard: int, vote: Any) -> None:
        txn = self._txns.get(txn_id)
        if not self.alive or txn is None or txn.phase != "prepare":
            return
        if vote != "prepared":
            # The shard refused (already aborted) or the record failed
            # deterministically: abort the whole transaction.
            self._decide(txn, ABORT)
            return
        txn.prepared.add(shard)
        if self._flight is not None:
            self._flight.record(self.runtime.now, "txn.prepared",
                                txn.trace, (shard,))
        if self._txn_spans is not None:
            self._txn_spans.on_phase(txn_id, "prepare", shard,
                                     self.runtime.now)
        if len(txn.prepared) == len(txn.participants):
            self._decide(txn, COMMIT)

    def _on_timeout(self, txn_id: str) -> None:
        txn = self._txns.get(txn_id)
        if not self.alive or txn is None or txn.phase != "prepare":
            return
        self.tracer.emit(self.runtime.now, self.home or 0, "txn.timeout",
                         txn=txn_id,
                         prepared=tuple(sorted(txn.prepared)))
        if self._flight is not None:
            self._flight.record(self.runtime.now, "txn.timeout",
                                txn.trace, tuple(sorted(txn.prepared)))
        self._decide(txn, ABORT)

    def _decide(self, txn: _Txn, wanted: str) -> None:
        txn.phase = "decide"
        if txn.timer is not None:
            txn.timer.cancel()
            txn.timer = None
        if self._flight is not None:
            self._flight.record(self.runtime.now, "txn.decide",
                                txn.trace, (wanted,))

        def on_decided(_action: Any, _pos: int, result: Any) -> None:
            winner = _call_result(result)
            self._on_decided(txn.txn_id,
                             winner if winner in (COMMIT, ABORT) else ABORT)

        self._submit(txn.decider, decide_update(txn.txn_id, wanted),
                     on_decided, {"trace": txn.trace, "phase": "decide"})

    def _on_decided(self, txn_id: str, winner: str) -> None:
        txn = self._txns.get(txn_id)
        if not self.alive or txn is None or txn.phase != "decide":
            return
        txn.decision = winner
        txn.phase = "finish"
        if self._flight is not None:
            self._flight.record(self.runtime.now, "txn.decided",
                                txn.trace, (winner,))
        if self.fail_before_finish:
            # Injected crash in the decide→finish window; the decision
            # is green at the decider, no participant has heard it.
            self.halt()
            return
        for shard in txn.participants:
            self._submit(shard, finish_update(txn_id, winner),
                         self._finish_cb(txn_id, shard),
                         {"trace": txn.trace, "phase": "finish"})

    def _finish_cb(self, txn_id: str, shard: int) -> Callable[..., None]:
        def on_green(_action: Any, _pos: int, _result: Any) -> None:
            self._on_finished(txn_id, shard)
        return on_green

    def _on_finished(self, txn_id: str, shard: int) -> None:
        txn = self._txns.get(txn_id)
        if not self.alive or txn is None or txn.phase != "finish":
            return
        txn.finished.add(shard)
        if self._flight is not None:
            self._flight.record(self.runtime.now, "txn.finish",
                                txn.trace, (shard,))
        if self._txn_spans is not None:
            self._txn_spans.on_phase(txn_id, "finish", shard,
                                     self.runtime.now)
        if len(txn.finished) < len(txn.participants):
            return
        del self._txns[txn_id]
        outcome = txn.decision or ABORT
        if outcome == COMMIT:
            self.commits += 1
        else:
            self.aborts += 1
        if self._c_outcomes is not None:
            self._c_outcomes[outcome].inc()
        self.tracer.emit(self.runtime.now, self.home or 0, "txn.done",
                         txn=txn_id, outcome=outcome)
        if self._flight is not None:
            self._flight.record(self.runtime.now, "txn.done", txn.trace,
                                (outcome,))
        if self._txn_spans is not None:
            self._txn_spans.on_done(txn_id, outcome, self.runtime.now)
        if txn.on_done is not None:
            txn.on_done(txn_id, outcome)

    # ==================================================================
    # recovery
    # ==================================================================
    def recover_staged(self, staged: Dict[str, Dict[str, Any]],
                       on_done: Optional[DoneFn] = None) -> List[str]:
        """Terminate staged transactions left behind by a crashed
        coordinator.

        ``staged`` maps txn id → the prepare record as read from some
        shard's database state (see
        :func:`repro.shard.txn.staged_transactions`).  For each unknown
        transaction the sweep submits an *abort* decision; the decider
        shard's total order returns the true winner — commit if the old
        coordinator's decision got there first — and the sweep then
        finishes every participant accordingly.  Safe to run at any
        time: transactions this coordinator is actively driving are
        skipped, and duplicate finishes are no-ops.
        """
        if not self.alive:
            raise RuntimeError("coordinator has been halted")
        swept: List[str] = []
        for txn_id in sorted(staged):
            if txn_id in self._txns:
                continue
            entry = staged[txn_id]
            participants = sorted(int(p) for p in entry["participants"])
            decider = int(entry["decider"])
            txn = _Txn(txn_id, participants, decider, on_done)
            txn.phase = "decide"
            self._txns[txn_id] = txn
            self.recovered += 1
            swept.append(txn_id)
            self.tracer.emit(self.runtime.now, self.home or 0,
                             "txn.recover", txn=txn_id)
            if self._flight is not None:
                self._flight.record(self.runtime.now, "txn.recover",
                                    txn.trace)

            def on_decided(_action: Any, _pos: int, result: Any,
                           _txn_id: str = txn_id) -> None:
                winner = _call_result(result)
                self._on_decided(_txn_id,
                                 winner if winner in (COMMIT, ABORT)
                                 else ABORT)

            self._submit(decider, decide_update(txn_id, ABORT), on_decided,
                         {"trace": txn.trace, "phase": "decide"})
        return swept
