"""Cross-shard transaction records as replicated stored procedures.

The 2PC-style commit path (ISSUE: Sutra & Shapiro's genuine partial
replication, with :mod:`repro.baselines.twopc` as the reference model)
stores its protocol state *inside* the replicated databases: prepare,
decide, and finish records are ``("CALL", ...)`` updates submitted to
the participant shards, so each record is a green action in that
shard's total order.  That is the whole trick — the transaction's fate
rides on the same WAL + quorum machinery as any data write, so it
survives coordinator crashes and partitions with no extra durability
protocol:

* ``_txn.prepare`` stages the shard's statement fragment under the
  reserved ``_shard_txn`` key (nothing user-visible changes yet);
* ``_txn.decide`` runs at the *decider shard* (lowest participant id):
  the first decide record in that shard's green order wins, and every
  later decide — a racing coordinator commit versus a recovery abort —
  deterministically returns the same winner at every replica;
* ``_txn.finish`` applies the staged fragment (commit) or discards it
  (abort); duplicates are no-ops, so redelivery after recovery is safe.

The procedures are deterministic in ``(state, args)`` and must be
registered identically at every replica of every shard (the fabric
does).  All staged values are JSON-plain (lists, strings, numbers), so
they survive the database's snapshot round-trip; staged statements must
be plain data statements — a staged ``CALL`` would execute without the
procedure table and abort the whole update deterministically.

Atomicity argument: a fragment becomes user-visible only via a
finish-commit, a finish-commit is only ever issued after a commit
decision, and a commit decision is only recorded (first-writer-wins in
the decider's total order) by a coordinator that saw *every* prepare
green.  Whatever crashes or partitions happen afterwards, recovery
reads the decider's green decision and finishes every participant the
same way — no shard can apply what another shard discards.  (This is
atomic commitment, not cross-shard serializability: overlapping
cross-shard transactions may interleave their finish records
differently on different shards.  Each shard's state remains a
deterministic function of its own total order.)
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from ..db.sql import execute_statement

#: Reserved top-level state key holding transaction protocol state.
TXN_KEY = "_shard_txn"

TXN_PREPARE = "_txn.prepare"
TXN_DECIDE = "_txn.decide"
TXN_FINISH = "_txn.finish"

COMMIT = "commit"
ABORT = "abort"


def _txn_doc(state: Dict[str, Any]) -> Dict[str, Any]:
    doc = state.get(TXN_KEY)
    if doc is None:
        doc = state[TXN_KEY] = {"staged": {}, "decided": {}}
    return doc


def txn_prepare(state: Dict[str, Any], args: Any) -> str:
    """Stage one shard's fragment of a cross-shard transaction.

    ``args = [txn_id, statements, participants, decider]``.  A prepare
    arriving after this shard already learned an abort (possible when a
    recovery abort overtakes a crashed coordinator's prepare) stages
    nothing.
    """
    txn_id, statements, participants, decider = args
    doc = _txn_doc(state)
    if doc["decided"].get(txn_id) == ABORT:
        return "aborted"
    doc["staged"][txn_id] = {
        "statements": [list(stmt) for stmt in statements],
        "participants": [int(p) for p in participants],
        "decider": int(decider),
    }
    return "prepared"


def txn_decide(state: Dict[str, Any], args: Any) -> str:
    """Record the transaction outcome at the decider shard.

    ``args = [txn_id, wanted]``.  First writer wins: the earliest
    decide record in this shard's green order fixes the outcome, and
    every replica returns that same winner to every later decide —
    which is how a racing coordinator commit and a recovery abort
    resolve identically everywhere.
    """
    txn_id, wanted = args
    if wanted not in (COMMIT, ABORT):
        wanted = ABORT
    return str(_txn_doc(state)["decided"].setdefault(txn_id, wanted))


def txn_finish(state: Dict[str, Any], args: Any) -> str:
    """Apply (commit) or discard (abort) the staged fragment.

    ``args = [txn_id, decision]``.  Idempotent: a second finish finds
    nothing staged and changes nothing.
    """
    txn_id, decision = args
    doc = _txn_doc(state)
    doc["decided"].setdefault(txn_id, decision)
    entry = doc["staged"].pop(txn_id, None)
    if entry is None:
        return "noop"
    if decision == COMMIT:
        for stmt in entry["statements"]:
            execute_statement(state, tuple(stmt))
    return str(decision)


#: name → procedure, for registration at every replica of every shard.
TXN_PROCEDURES: Dict[str, Callable[[Dict[str, Any], Any], Any]] = {
    TXN_PREPARE: txn_prepare,
    TXN_DECIDE: txn_decide,
    TXN_FINISH: txn_finish,
}


def install_txn_procedures(register: Callable[[str, Any], None]) -> None:
    """Register the transaction procedures through ``register(name,
    proc)`` — typically ``replica.register_procedure``, so they survive
    crash recovery."""
    for name, procedure in TXN_PROCEDURES.items():
        register(name, procedure)


# ----------------------------------------------------------------------
# read-only helpers (recovery sweep, tests)
# ----------------------------------------------------------------------
def staged_transactions(state: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Staged (prepared, unfinished) transactions in a database state.
    Read-only: never creates the protocol document."""
    doc = state.get(TXN_KEY) or {}
    return dict(doc.get("staged") or {})


def decided_transactions(state: Dict[str, Any]) -> Dict[str, str]:
    """txn id → outcome, as known to this shard."""
    doc = state.get(TXN_KEY) or {}
    return dict(doc.get("decided") or {})


def prepare_update(txn_id: str, statements: Any,
                   participants: List[int], decider: int) -> Any:
    """The ``("CALL", ...)`` update carrying a prepare record."""
    return ("CALL", TXN_PREPARE,
            [txn_id, [list(stmt) for stmt in statements],
             list(participants), int(decider)])


def decide_update(txn_id: str, wanted: str) -> Any:
    return ("CALL", TXN_DECIDE, [txn_id, wanted])


def finish_update(txn_id: str, decision: str) -> Any:
    return ("CALL", TXN_FINISH, [txn_id, decision])
