"""The shard fabric: N replication groups behind a key-range router.

Scaling the paper's architecture *out*: each shard is an unchanged
Figure-4 replication engine with its own GCS group, write-ahead logs,
and quorum; a deterministic key-range router
(:mod:`repro.db.partition` + :class:`KeyRangeRouter`) places every key
in exactly one shard; and cross-shard transactions commit through a
2PC-style coordinator (:class:`TxnCoordinator`) whose prepare, decide,
and finish records are ordinary green actions in the participant
shards' total orders (:mod:`repro.shard.txn`) — atomic commitment
riding entirely on the single-shard machinery the paper proves correct.

Layering (enforced by the ``shard-isolation`` seam rule): the policy
modules — :mod:`router <repro.shard.router>`, :mod:`txn
<repro.shard.txn>`, :mod:`coordinator <repro.shard.coordinator>` —
never import the engine or GCS internals; only the composition roots
:mod:`fabric <repro.shard.fabric>` (simulated) and :mod:`live
<repro.shard.live>` (asyncio/UDP) touch :mod:`repro.core` and
:mod:`repro.runtime`.
"""

from .coordinator import TxnCoordinator
from .fabric import ShardFabric
from .live import LiveShardFabric
from .router import (SHARD_STRIDE, KeyRangeRouter, RouterError, global_id,
                     local_id, shard_of, shard_server_ids, statement_key)
from .txn import (ABORT, COMMIT, TXN_DECIDE, TXN_FINISH, TXN_KEY,
                  TXN_PREPARE, TXN_PROCEDURES, decide_update,
                  decided_transactions, finish_update,
                  install_txn_procedures, prepare_update,
                  staged_transactions)

__all__ = [
    "ABORT",
    "COMMIT",
    "KeyRangeRouter",
    "LiveShardFabric",
    "RouterError",
    "SHARD_STRIDE",
    "ShardFabric",
    "TXN_DECIDE",
    "TXN_FINISH",
    "TXN_KEY",
    "TXN_PREPARE",
    "TXN_PROCEDURES",
    "TxnCoordinator",
    "decide_update",
    "decided_transactions",
    "finish_update",
    "global_id",
    "install_txn_procedures",
    "local_id",
    "prepare_update",
    "shard_of",
    "shard_server_ids",
    "staged_transactions",
    "statement_key",
]
