"""The key→shard router and the global node id namespace.

Every key deterministically belongs to exactly one shard (see
:mod:`repro.db.partition` for the hashed key-range machinery); the
router additionally understands the statement language, so whole
updates can be classified as shard-local or cross-shard and split into
per-shard fragments.

This module is pure data-plane policy: it never touches engines, GCS
daemons, or runtimes (the ``shard-isolation`` seam rule enforces
that).  The composition roots (:mod:`repro.shard.fabric`,
:mod:`repro.shard.live`) wire its decisions to actual replication
groups.

Node id namespace
-----------------

All groups of one fabric share a single transport, so node ids must be
globally unique.  Shard ``s``'s replica ``r`` gets the global id
``s * SHARD_STRIDE + r`` — shard 0 keeps the plain ids ``1..n``, which
is what makes the single-shard fabric bit-identical to a standalone
:class:`~repro.core.ReplicaCluster`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..db.partition import RangeMap

#: Width of each shard's node-id block; replica ids are local in
#: ``1..SHARD_STRIDE-1``.
SHARD_STRIDE = 100


def global_id(shard: int, local: int) -> int:
    """Global node id of shard ``shard``'s local replica ``local``."""
    if shard < 0:
        raise ValueError(f"negative shard id {shard}")
    if not 0 < local < SHARD_STRIDE:
        raise ValueError(
            f"local replica id must be in 1..{SHARD_STRIDE - 1}, "
            f"got {local}")
    return shard * SHARD_STRIDE + local


def shard_of(node: int) -> int:
    """The shard a global node id belongs to."""
    return node // SHARD_STRIDE


def local_id(node: int) -> int:
    """The within-shard replica id of a global node id."""
    return node % SHARD_STRIDE


def shard_server_ids(shard: int, count: int) -> List[int]:
    """The global ids of shard ``shard``'s ``count`` replicas."""
    return [global_id(shard, local) for local in range(1, count + 1)]


class RouterError(ValueError):
    """An update cannot be routed (malformed or keyless statement)."""


#: Statement ops whose key is the second element.
_KEYED_OPS = frozenset({"SET", "GET", "INC", "DEL", "APPEND", "CAS"})


def statement_key(statement: Any) -> Any:
    """The routing key of one statement tuple.

    ``CALL`` statements route by their first argument when it is a
    string key (the convention for user-registered procedures); the
    cross-shard transaction records themselves never pass through the
    router — the coordinator places them explicitly.
    """
    if not statement:
        raise RouterError("empty statement")
    op = statement[0]
    if op in _KEYED_OPS:
        if len(statement) < 2:
            raise RouterError(f"{op} statement without a key")
        return statement[1]
    if op == "CALL":
        if len(statement) >= 3:
            args = statement[2]
            if (isinstance(args, (list, tuple)) and args
                    and isinstance(args[0], str)):
                return args[0]
        raise RouterError(
            f"CALL statement {statement!r} has no routable key "
            f"(first procedure argument must be a string key)")
    raise RouterError(f"unroutable statement op {op!r}")


def _statements(update: Any) -> List[Any]:
    """Normalise an update part (one statement or a sequence) into a
    statement list, mirroring :func:`repro.db.sql.execute_update`."""
    if update and isinstance(update[0], str):
        return [update]
    return list(update)


class KeyRangeRouter:
    """Deterministic key→shard placement over contiguous hash ranges.

    The mapping is a pure function of the key and the shard count
    (``RangeMap.even``), so it is identical across runtimes and stable
    under any membership change that preserves the shard count.
    """

    def __init__(self, num_shards: int,
                 range_map: Optional[RangeMap] = None):
        if num_shards < 1:
            raise ValueError(f"need at least one shard, got {num_shards}")
        self.num_shards = num_shards
        self.range_map = (range_map if range_map is not None
                          else RangeMap.even(num_shards))

    def shard_for_key(self, key: Any) -> int:
        return self.range_map.shard_for_key(key)

    def shards_for_update(self, update: Any) -> List[int]:
        """Sorted shard ids an update touches."""
        return sorted({self.shard_for_key(statement_key(stmt))
                       for stmt in _statements(update)})

    def is_local(self, update: Any) -> bool:
        return len(self.shards_for_update(update)) == 1

    def split_update(self, update: Any) -> Dict[int, Tuple[Any, ...]]:
        """Split an update into per-shard statement tuples.

        Statement order within each shard is preserved; a shard-local
        update comes back as a single-entry dict.
        """
        fragments: Dict[int, List[Any]] = {}
        for stmt in _statements(update):
            shard = self.shard_for_key(statement_key(stmt))
            fragments.setdefault(shard, []).append(stmt)
        return {shard: tuple(stmts)
                for shard, stmts in sorted(fragments.items())}
