"""ShardFabric: N replication groups on one deterministic kernel.

The simulated composition root of the shard layer.  One
:class:`~repro.runtime.SimRuntime`, one :class:`~repro.net.Topology`
and :class:`~repro.net.Network` spanning every node, and N
:class:`~repro.core.ReplicaCluster` instances — each an unchanged
Figure-4 replication group with its own GCS group (namespaced by the
shard id, see :class:`~repro.gcs.types.HeartbeatMsg`), its own WALs,
and its own quorum — stitched together by the
:class:`~repro.shard.router.KeyRangeRouter` and a
:class:`~repro.shard.coordinator.TxnCoordinator` for cross-shard
transactions.

Node ids are globalised as ``shard * SHARD_STRIDE + local`` so shard 0
keeps the plain ids ``1..n``: a one-shard fabric is *bit-identical* to
a standalone ``ReplicaCluster`` (same event count, same digests), which
is what keeps the Figure 5(a) determinism pin honest.

Fault injection composes: :meth:`crash` of the coordinator's home node
halts the coordinator with it (the paper's node model — co-located
components fail together), and :meth:`recover_transactions` is the
sweep a replacement coordinator runs to terminate whatever the crash
left staged.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from ..core import ReplicaCluster
from ..core.engine import EngineConfig
from ..core.replica import Replica
from ..db import Database, RangeMap, ShardedDatabase
from ..gcs import GcsSettings
from ..net import Network, NetworkProfile, Topology
from ..obs import Observability
from ..runtime import SimRuntime
from ..sim import RandomStreams, Tracer
from ..storage import DiskProfile
from .coordinator import DoneFn, TxnCoordinator
from .router import KeyRangeRouter, global_id, shard_of, shard_server_ids
from .txn import install_txn_procedures, staged_transactions


class ShardFabric:
    """N simulated replication groups behind one key-range router."""

    def __init__(self, num_shards: int = 2, replicas_per_shard: int = 3,
                 seed: int = 0,
                 network_profile: Optional[NetworkProfile] = None,
                 disk_profile: Optional[DiskProfile] = None,
                 gcs_settings: Optional[GcsSettings] = None,
                 engine_config: Optional[EngineConfig] = None,
                 trace: bool = False,
                 observability: Optional[Observability] = None,
                 range_map: Optional[RangeMap] = None,
                 coordinator_home: Optional[int] = None,
                 prepare_timeout: float = 5.0) -> None:
        if num_shards < 1:
            raise ValueError(f"need at least one shard, got {num_shards}")
        self.num_shards = num_shards
        self.replicas_per_shard = replicas_per_shard
        self.router = KeyRangeRouter(num_shards, range_map)
        self.obs = (observability if observability is not None
                    else Observability.disabled())

        # One kernel, one clock, one topology, one wire — shared by
        # every group, exactly like N processes on one LAN.
        self.sim = SimRuntime()
        self.runtime = self.sim
        self.streams = RandomStreams(seed)
        self.tracer = Tracer(enabled=trace)
        all_ids = [node for shard in range(num_shards)
                   for node in shard_server_ids(shard, replicas_per_shard)]
        self.topology = Topology(all_ids)
        self.network = Network(self.sim, self.topology, network_profile,
                               rng=self.streams.stream("network"),
                               tracer=self.tracer)

        self.clusters: Dict[int, ReplicaCluster] = {}
        for shard in range(num_shards):
            cluster = ReplicaCluster(
                server_ids=shard_server_ids(shard, replicas_per_shard),
                disk_profile=disk_profile,
                gcs_settings=gcs_settings,
                engine_config=engine_config,
                observability=self.obs.for_shard(shard),
                shard=shard,
                runtime=self.sim, network=self.network,
                topology=self.topology, streams=self.streams,
                tracer=self.tracer)
            self.clusters[shard] = cluster
            for replica in cluster.replicas.values():
                install_txn_procedures(replica.register_procedure)

        self._coordinator_generation = 0
        self.coordinator = self._make_coordinator(
            coordinator_home if coordinator_home is not None
            else global_id(0, 1), prepare_timeout)

    def _make_coordinator(self, home: int,
                          prepare_timeout: float) -> TxnCoordinator:
        self._coordinator_generation += 1
        return TxnCoordinator(
            self.sim, self.router, self._submit_to_shard,
            name=f"txn{self._coordinator_generation}", home=home,
            prepare_timeout=prepare_timeout, tracer=self.tracer,
            obs=self.obs)

    # ==================================================================
    # per-shard plumbing
    # ==================================================================
    def cluster_of(self, node: int) -> ReplicaCluster:
        return self.clusters[shard_of(node)]

    def _submit_replica(self, shard: int) -> Replica:
        """Deterministic submission target in ``shard``: the
        coordinator's home node when it lives there, else the lowest
        running replica id."""
        cluster = self.clusters[shard]
        home = self.coordinator.home
        if home is not None and shard_of(home) == shard:
            replica = cluster.replicas.get(home)
            if replica is not None and replica.running:
                return replica
        for node in sorted(cluster.replicas):
            replica = cluster.replicas[node]
            if replica.running and not replica.engine.exited:
                return replica
        raise RuntimeError(f"no running replica in shard {shard}")

    def _submit_to_shard(self, shard: int, update: Any,
                         on_complete: Optional[Callable[..., None]],
                         meta: Optional[dict] = None) -> Any:
        return self._submit_replica(shard).submit(
            update=update, on_complete=on_complete, meta=meta)

    # ==================================================================
    # lifecycle & fault injection
    # ==================================================================
    def start_all(self, settle: float = 2.0) -> None:
        """Start every replica of every shard; run until views settle."""
        for shard in sorted(self.clusters):
            for replica in self.clusters[shard].replicas.values():
                replica.start()
        if settle > 0:
            self.run_for(settle)

    def run_for(self, duration: float) -> None:
        self.sim.run(until=self.sim.now + duration)

    def run_until_idle(self) -> None:
        self.sim.run()

    def partition(self, *groups: Sequence[int]) -> None:
        """Partition the shared network.

        Unlike :meth:`Topology.partition`, groups need not cover every
        node: the leftovers form one remaining component, so a caller
        can cut one shard's minority away without enumerating the whole
        fabric.
        """
        covered = {node for group in groups for node in group}
        rest = [node for node in self.topology.nodes
                if node not in covered]
        full = [list(group) for group in groups]
        if rest:
            full.append(rest)
        self.topology.partition(full)

    def heal(self) -> None:
        self.topology.heal()

    def crash(self, node: int) -> None:
        """Crash a node; the coordinator dies with its home node."""
        self.cluster_of(node).crash(node)
        if self.coordinator.alive and self.coordinator.home == node:
            self.coordinator.halt()

    def recover(self, node: int) -> None:
        self.cluster_of(node).recover(node)

    # ==================================================================
    # the client surface
    # ==================================================================
    def submit(self, update: Any,
               on_done: Optional[DoneFn] = None) -> str:
        """Route an update: shard-local updates commit through their
        shard's total order, cross-shard ones through the coordinator's
        prepare/decide/finish protocol.  Returns the transaction id."""
        return self.coordinator.submit_transaction(update, on_done)

    def submit_local(self, shard: int, update: Any,
                     on_complete: Optional[Callable[..., None]] = None
                     ) -> Any:
        """Submit directly to one shard, bypassing the router (for
        workloads that pre-partition their keys)."""
        return self._submit_to_shard(shard, update, on_complete)

    def query(self, query: Any) -> Any:
        """Strict-consistency read routed by key."""
        key = query[1]
        shard = self.router.shard_for_key(key)
        return self._submit_replica(shard).query_consistent(query)

    # ==================================================================
    # coordinator recovery
    # ==================================================================
    def staged(self) -> Dict[str, Dict[str, Any]]:
        """Every staged (prepared, unfinished) transaction across all
        shards, read from one running replica per shard."""
        merged: Dict[str, Dict[str, Any]] = {}
        for shard in sorted(self.clusters):
            database = self._reference_database(shard)
            if database is None:
                continue
            merged.update(staged_transactions(database.state))
        return merged

    def new_coordinator(self, home: Optional[int] = None,
                        prepare_timeout: float = 5.0) -> TxnCoordinator:
        """Replace a crashed coordinator (fresh txn-id namespace)."""
        self.coordinator = self._make_coordinator(
            home if home is not None else global_id(0, 1),
            prepare_timeout)
        return self.coordinator

    def recover_transactions(self,
                             on_done: Optional[DoneFn] = None
                             ) -> List[str]:
        """The recovery sweep: terminate every staged transaction left
        behind by a crashed coordinator (abort races the old
        coordinator's decision; the decider's total order wins)."""
        return self.coordinator.recover_staged(self.staged(), on_done)

    # ==================================================================
    # observables (per-shard convergence, digests, green orders)
    # ==================================================================
    def _reference_database(self, shard: int) -> Optional[Database]:
        cluster = self.clusters[shard]
        for node in sorted(cluster.replicas):
            replica = cluster.replicas[node]
            if replica.running and not replica.engine.exited:
                return replica.database
        return None

    def sharded_database(self) -> ShardedDatabase:
        """Router-aware read facade over one live database per shard."""
        databases: Dict[int, Database] = {}
        for shard in sorted(self.clusters):
            database = self._reference_database(shard)
            if database is None:
                raise RuntimeError(f"no running replica in shard {shard}")
            databases[shard] = database
        return ShardedDatabase(self.router.range_map, databases)

    def digests(self) -> Dict[int, str]:
        """Per-shard database digests from a live replica each."""
        return self.sharded_database().digests()

    def green_order(self, shard: int) -> List[Any]:
        """The shard's applied green order (from a live replica)."""
        database = self._reference_database(shard)
        if database is None:
            raise RuntimeError(f"no running replica in shard {shard}")
        return list(database.applied_log)

    def green_count(self, shard: int) -> int:
        database = self._reference_database(shard)
        return database.applied_count if database is not None else 0

    def assert_converged(self) -> None:
        """Every shard's replication group converged internally."""
        for shard in sorted(self.clusters):
            self.clusters[shard].assert_converged()

    def states(self) -> Dict[int, Dict[int, str]]:
        return {shard: cluster.states()
                for shard, cluster in sorted(self.clusters.items())}
