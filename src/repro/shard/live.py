"""LiveShardFabric: N replication groups on one asyncio event loop.

The wall-clock counterpart of :class:`~repro.shard.fabric.ShardFabric`:
same router, same coordinator, same global node-id namespace, but each
shard is a :class:`~repro.runtime.LiveCluster` and all of them share
one :class:`~repro.runtime.AsyncioRuntime` plus one live transport
(in-process :class:`~repro.runtime.MemoryTransport` by default, real
UDP loopback sockets with ``udp=True``).  Because the coordinator is
runtime-agnostic, not one line of the commit path differs between the
simulated and the live fabric — which is what the shard conformance
test (identical per-shard green orders and digests, sim vs UDP)
demonstrates.

Driving style is ``await``-based like ``LiveCluster``; the waiting
primitives delegate to the member clusters, so this module needs no
event-loop imports of its own (the ``seam-import`` rule holds for the
shard package).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from ..core.engine import EngineConfig
from ..core.replica import Replica
from ..core.state_machine import EngineState
from ..db import Database, RangeMap, ShardedDatabase
from ..gcs import GcsSettings
from ..obs import Observability
from ..runtime import (AsyncioRuntime, AsyncioTransport, LiveCluster,
                       MemoryTransport, loopback_addresses)
from ..storage import DiskProfile
from .coordinator import DoneFn, TxnCoordinator
from .router import KeyRangeRouter, global_id, shard_of, shard_server_ids
from .txn import install_txn_procedures, staged_transactions


class LiveShardFabric:
    """N live replication groups behind one key-range router."""

    def __init__(self, num_shards: int = 2, replicas_per_shard: int = 3,
                 *, udp: bool = False,
                 gcs_settings: Optional[GcsSettings] = None,
                 engine_config: Optional[EngineConfig] = None,
                 disk_profile: Optional[DiskProfile] = None,
                 trace: bool = False,
                 observability: Optional[Observability] = None,
                 range_map: Optional[RangeMap] = None,
                 coordinator_home: Optional[int] = None,
                 prepare_timeout: float = 5.0) -> None:
        if num_shards < 1:
            raise ValueError(f"need at least one shard, got {num_shards}")
        self.num_shards = num_shards
        self.replicas_per_shard = replicas_per_shard
        self.router = KeyRangeRouter(num_shards, range_map)
        self.obs = (observability if observability is not None
                    else Observability())

        self.runtime = AsyncioRuntime()
        all_ids = [node for shard in range(num_shards)
                   for node in shard_server_ids(shard, replicas_per_shard)]
        self.all_ids = all_ids
        if udp:
            transport: Any = AsyncioTransport(
                self.runtime, loopback_addresses(all_ids))
            for node in all_ids:
                transport.open(node)
        else:
            transport = MemoryTransport(self.runtime)
        self.transport = transport

        self.clusters: Dict[int, LiveCluster] = {}
        for shard in range(num_shards):
            cluster = LiveCluster(
                shard_server_ids(shard, replicas_per_shard),
                runtime=self.runtime, transport=transport,
                gcs_settings=gcs_settings,
                engine_config=engine_config,
                disk_profile=disk_profile, trace=trace,
                observability=self.obs.for_shard(shard), shard=shard)
            self.clusters[shard] = cluster
            for replica in cluster.replicas.values():
                install_txn_procedures(replica.register_procedure)

        self._coordinator_generation = 0
        self.coordinator = self._make_coordinator(
            coordinator_home if coordinator_home is not None
            else global_id(0, 1), prepare_timeout)

    def _make_coordinator(self, home: int,
                          prepare_timeout: float) -> TxnCoordinator:
        self._coordinator_generation += 1
        return TxnCoordinator(
            self.runtime, self.router, self._submit_to_shard,
            name=f"txn{self._coordinator_generation}", home=home,
            prepare_timeout=prepare_timeout, obs=self.obs)

    # ==================================================================
    # per-shard plumbing (mirrors ShardFabric)
    # ==================================================================
    def cluster_of(self, node: int) -> LiveCluster:
        return self.clusters[shard_of(node)]

    def _submit_replica(self, shard: int) -> Replica:
        cluster = self.clusters[shard]
        home = self.coordinator.home
        if home is not None and shard_of(home) == shard:
            replica = cluster.replicas.get(home)
            if replica is not None and replica.running:
                return replica
        for node in sorted(cluster.replicas):
            replica = cluster.replicas[node]
            if replica.running and not replica.engine.exited:
                return replica
        raise RuntimeError(f"no running replica in shard {shard}")

    def _submit_to_shard(self, shard: int, update: Any,
                         on_complete: Optional[Callable[..., None]],
                         meta: Optional[dict] = None) -> Any:
        return self._submit_replica(shard).submit(
            update=update, on_complete=on_complete, meta=meta)

    # ==================================================================
    # lifecycle & faults
    # ==================================================================
    def start_all(self) -> None:
        for shard in sorted(self.clusters):
            self.clusters[shard].start_all()

    def shutdown(self) -> None:
        """Tear every cluster down; the shared transport closes once."""
        for cluster in self.clusters.values():
            for replica in cluster.replicas.values():
                if replica.running:
                    replica.crash()
        close = getattr(self.transport, "close", None)
        if close is not None:
            close()
        self.runtime.stop()

    def partition(self, *groups: Sequence[int]) -> None:
        """Software partition on the shared transport; like
        :meth:`ShardFabric.partition`, uncovered nodes form one
        remaining component rather than isolated singletons."""
        covered = {node for group in groups for node in group}
        rest = [node for node in self.all_ids if node not in covered]
        full = [list(group) for group in groups]
        if rest:
            full.append(rest)
        self.transport.partition(full)

    def heal(self) -> None:
        self.transport.heal()

    def crash(self, node: int) -> None:
        self.cluster_of(node).replicas[node].crash()
        if self.coordinator.alive and self.coordinator.home == node:
            self.coordinator.halt()

    # ==================================================================
    # client surface
    # ==================================================================
    def submit(self, update: Any,
               on_done: Optional[DoneFn] = None) -> str:
        return self.coordinator.submit_transaction(update, on_done)

    def submit_local(self, shard: int, update: Any,
                     on_complete: Optional[Callable[..., None]] = None
                     ) -> Any:
        return self._submit_to_shard(shard, update, on_complete)

    # ==================================================================
    # waiting (delegates to the member clusters)
    # ==================================================================
    async def wait_all_primary(self, timeout: float) -> None:
        """Every shard's replicas in REG_PRIM."""
        for shard in sorted(self.clusters):
            await self.clusters[shard].wait_all_engine_state(
                EngineState.REG_PRIM, timeout)

    async def wait_green(self, shard: int, count: int,
                         timeout: float) -> None:
        await self.clusters[shard].wait_green(count, timeout)

    async def wait_until(self, predicate: Callable[[], bool],
                         timeout: float, what: str = "condition") -> None:
        await self.clusters[0].wait_until(predicate, timeout, what)

    async def run_for(self, seconds: float) -> None:
        await self.clusters[0].run_for(seconds)

    async def wait_no_inflight(self, timeout: float) -> None:
        await self.wait_until(lambda: self.coordinator.in_flight == 0,
                              timeout, "coordinator drain")

    # ==================================================================
    # recovery & observables
    # ==================================================================
    def staged(self) -> Dict[str, Dict[str, Any]]:
        merged: Dict[str, Dict[str, Any]] = {}
        for shard in sorted(self.clusters):
            database = self._reference_database(shard)
            if database is not None:
                merged.update(staged_transactions(database.state))
        return merged

    def new_coordinator(self, home: Optional[int] = None,
                        prepare_timeout: float = 5.0) -> TxnCoordinator:
        self.coordinator = self._make_coordinator(
            home if home is not None else global_id(0, 1),
            prepare_timeout)
        return self.coordinator

    def recover_transactions(self,
                             on_done: Optional[DoneFn] = None
                             ) -> List[str]:
        return self.coordinator.recover_staged(self.staged(), on_done)

    def _reference_database(self, shard: int) -> Optional[Database]:
        cluster = self.clusters[shard]
        for node in sorted(cluster.replicas):
            replica = cluster.replicas[node]
            if replica.running and not replica.engine.exited:
                return replica.database
        return None

    def sharded_database(self) -> ShardedDatabase:
        databases: Dict[int, Database] = {}
        for shard in sorted(self.clusters):
            database = self._reference_database(shard)
            if database is None:
                raise RuntimeError(f"no running replica in shard {shard}")
            databases[shard] = database
        return ShardedDatabase(self.router.range_map, databases)

    def digests(self) -> Dict[int, str]:
        return self.sharded_database().digests()

    def green_order(self, shard: int) -> List[Any]:
        database = self._reference_database(shard)
        if database is None:
            raise RuntimeError(f"no running replica in shard {shard}")
        return list(database.applied_log)

    def assert_converged(self) -> None:
        for shard in sorted(self.clusters):
            self.clusters[shard].assert_converged()
