"""The paper's primary contribution: the replication engine.

Public surface: :class:`ReplicaCluster` to build simulated deployments,
:class:`Replica` for single nodes, :class:`ReplicationEngine` for the
algorithm itself, plus the records, quorum policies, and state machine
it is made of.
"""

from .action_queue import ActionQueue
from .client import Client
from .cluster import ReplicaCluster
from .colors import Color
from .engine import EngineConfig, EngineHooks, ReplicationEngine
from .knowledge import (Knowledge, RetransPlan, compute_knowledge,
                        plan_retransmission, retransmission_complete)
from .messages import EngineActionMsg, EngineCpcMsg, EngineStateMsg
from .quorum import DynamicLinearVoting, QuorumPolicy, StaticMajority
from .records import INVALID, VALID, PrimComponent, Vulnerable, Yellow
from .recovery import recover_engine
from .reconfig import (JoinerProtocol, JoinRequest, RepresentativeRole,
                       TransferHeader)
from .replica import Replica
from .state_machine import (EngineState, IllegalTransition, TRANSITIONS,
                            check_transition)

__all__ = [
    "ActionQueue",
    "Client",
    "Color",
    "DynamicLinearVoting",
    "EngineActionMsg",
    "EngineConfig",
    "EngineCpcMsg",
    "EngineHooks",
    "EngineState",
    "EngineStateMsg",
    "IllegalTransition",
    "INVALID",
    "JoinRequest",
    "JoinerProtocol",
    "Knowledge",
    "PrimComponent",
    "QuorumPolicy",
    "ReplicaCluster",
    "Replica",
    "ReplicationEngine",
    "RepresentativeRole",
    "RetransPlan",
    "StaticMajority",
    "TRANSITIONS",
    "TransferHeader",
    "VALID",
    "Vulnerable",
    "Yellow",
    "check_transition",
    "compute_knowledge",
    "plan_retransmission",
    "recover_engine",
    "retransmission_complete",
]
