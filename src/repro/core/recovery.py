"""Crash recovery (CodeSegment A.13 + durable-state reconstruction).

A recovering server retains its identifier and stable storage
(Section 2.1).  Recovery rebuilds, from the WAL and the persistent
record store:

1. the database — last snapshot (if the node bootstrapped from a
   transfer) plus the durable green records replayed in order;
2. the action queue — green prefix, then the red-actions snapshot taken
   at the last exchange, then the paper's A.13 step: every ongoingQueue
   action not yet covered by the red cut is re-marked red;
3. the persistent records — primComponent, vulnerable (a server that
   crashed while vulnerable *stays* vulnerable), yellow, counters.

The engine then starts in NonPrim and rejoins the group; the exchange
protocol resupplies everything lost from volatile memory.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..db import Action, Database
from ..storage import StableStore
from .engine import ReplicationEngine
from .records import PrimComponent, Vulnerable, Yellow
from .state_machine import EngineState


def recover_engine(engine: ReplicationEngine) -> None:
    """Rebuild ``engine`` (freshly constructed) from its stable store."""
    store = engine.store
    view = store.recover()

    # 1. database: snapshot base (joiners) + green replay
    base_green = 0
    snapshot_record = store.wal.last_of_kind("db_snapshot")
    if snapshot_record is not None:
        engine.database.restore(snapshot_record.data)
        base_green = snapshot_record.data["applied_count"]

    servers = view.get("servers")
    if servers:
        for server in servers:
            engine.queue.add_server(server)

    engine.queue.green_offset = base_green
    # Actions subsumed by the snapshot (log compaction, or a joiner's
    # transfer) are known without their payloads: the red cut must
    # reflect them or replayed red/ongoing actions would be rejected
    # as FIFO gaps.
    for action_id in engine.database.applied_log:
        if action_id.server_id not in engine.queue.red_cut:
            continue
        if action_id.index > engine.queue.red_cut[action_id.server_id]:
            engine.queue.red_cut[action_id.server_id] = action_id.index
    greens: Dict[int, Action] = {}
    for record in store.wal.recover_kind("green"):
        position, action = record.data
        greens[position] = action
    position = base_green
    while position in greens:
        action = greens[position]
        # The creator may have left the system since (its own
        # PERSISTENT_LEAVE is such a green): replay under a temporary
        # cut entry; the persisted server list prevails afterwards.
        if action.server_id not in engine.queue.red_cut:
            engine.queue.add_server(action.server_id)
        engine.queue.mark_red(action)
        engine.queue.mark_green(action)
        engine.database.apply(action)
        position += 1
    engine.queue.set_green_line(engine.server_id, engine.queue.green_count)
    if servers:
        persisted = set(servers)
        for extra in [s for s in engine.queue.servers
                      if s not in persisted]:
            engine.queue.remove_server(extra)

    # 2. red actions snapshot from the last exchange, then A.13 proper
    for action in view.get("red_actions", []) or []:
        engine.queue.mark_red(action)
    for record in store.wal.recover_kind("ongoing"):
        action = record.data
        engine.ongoing[action.action_id] = action
    for action_id in sorted(engine.ongoing):
        action = engine.ongoing[action_id]
        if engine.queue.red_cut.get(engine.server_id, 0) \
                == action_id.index - 1:
            engine.queue.mark_red(action)

    # 3. persistent records
    prim = view.get("prim_component")
    if prim is not None:
        engine.prim_component = PrimComponent(
            prim_index=prim.prim_index,
            attempt_index=prim.attempt_index,
            servers=tuple(prim.servers))
    vulnerable = view.get("vulnerable")
    if vulnerable is not None:
        engine.vulnerable = Vulnerable(
            status=vulnerable.status, prim_index=vulnerable.prim_index,
            attempt_index=vulnerable.attempt_index,
            set=tuple(vulnerable.set), bits=dict(vulnerable.bits))
    yellow = view.get("yellow")
    if yellow is not None:
        engine.yellow = Yellow(status=yellow.status, set=list(yellow.set))
        # Drop yellow validity if any payload did not survive the
        # crash — the record is then no better than red knowledge.
        if engine.yellow.is_valid:
            for action_id in engine.yellow.set:
                if engine.queue.find(action_id) is None:
                    engine.yellow.invalidate()
                    break
    engine.attempt_index = view.get("attempt_index", 0)
    engine.removed_servers = set(view.get("removed_servers", []))
    engine.action_index = max(view.get("action_index", 0),
                              max((a.index for a in engine.ongoing),
                                  default=0))
    for server, line in (view.get("green_lines") or {}).items():
        if server in engine.queue.green_lines:
            engine.queue.set_green_line(server, line)

    engine.state = EngineState.NON_PRIM
    engine._persist_records()
    store.sync()
