"""Wire messages of the replication engine (multicast via the GCS).

Three message types, mirroring Appendix A's "Message Structure":

* ``EngineActionMsg`` — an action, fresh or retransmitted.  A
  retransmitted action that is globally ordered carries its green
  position so receivers can mark it green at the right place (the
  exchange protocol's OR-3 marking).
* ``EngineStateMsg`` — a server's state for the exchange round.
* ``EngineCpcMsg`` — the Create Primary Component vote.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..db import Action, ActionId
from ..gcs import ViewId
from .records import PrimComponent, Vulnerable


@dataclass(frozen=True)
class EngineActionMsg:
    """An action message.

    green_pos   global green position, when retransmitting a green
                action during the exchange (None for fresh actions)
    green_line  creator's green count at creation (white-line gossip)
    retrans     True when sent by the exchange retransmission
    """

    action: Action
    green_line: int = 0
    green_pos: Optional[int] = None
    retrans: bool = False


@dataclass(frozen=True)
class EngineStateMsg:
    """State message for the exchange rounds (one per view change)."""

    server_id: int
    conf_id: ViewId
    green_count: int
    red_cut: Dict[int, int]
    green_lines: Dict[int, int]
    attempt_index: int
    prim_component: PrimComponent
    vulnerable: Vulnerable
    yellow_valid: bool
    yellow_ids: Tuple[ActionId, ...]


@dataclass(frozen=True)
class EngineCpcMsg:
    """Create Primary Component vote."""

    server_id: int
    conf_id: ViewId
