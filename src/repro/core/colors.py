"""The action coloring model (Figure 1 / Figure 3 of the paper).

Each server marks every action it holds with a knowledge level:

* **red** — ordered within the local component by the group
  communication, but the global order is not yet known;
* **yellow** — delivered in a *transitional configuration* of a primary
  component (the extra color EVS makes necessary, Section 4/Figure 3);
* **green** — the global order is known;
* **white** — known to be green at *all* servers; can be discarded.

Colors only ever move up this lattice at a given server, and the paper's
coherence invariant holds system-wide: no action can be white at one
server while missing or red at another.
"""

from __future__ import annotations

from enum import IntEnum


class Color(IntEnum):
    """Knowledge level of an action at one server (ordered lattice)."""

    RED = 0
    YELLOW = 1
    GREEN = 2
    WHITE = 3

    def __str__(self) -> str:
        return self.name.lower()


def may_transition(old: "Color", new: "Color") -> bool:
    """Colors are monotonic: a server never downgrades its knowledge."""
    return new >= old
