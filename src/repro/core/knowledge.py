"""ComputeKnowledge (CodeSegment A.7) and the retransmission plan.

Once all state messages of an exchange round are delivered (they arrive
in the same total order at every member), every member runs the same
deterministic computation over the same inputs:

1. adopt the maximal known primary component;
2. intersect the yellow sets of the servers that are both up-to-date
   and hold a valid yellow record;
3. resolve vulnerable records that the gathered evidence settles;
4. union the vulnerability bits — when every member of an attempt is
   accounted for, the attempt can hide no knowledge and the record is
   invalidated.

The module also plans the action retransmission: who retransmits the
green suffix, and who retransmits each creator's red tail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..db import ActionId
from .messages import EngineStateMsg
from .records import PrimComponent, Vulnerable, Yellow


@dataclass
class Knowledge:
    """Result of ComputeKnowledge over one exchange round."""

    prim_component: PrimComponent
    updated_group: Tuple[int, ...]
    valid_group: Tuple[int, ...]
    attempt_index: int
    yellow: Yellow
    # server -> (is_still_valid, merged_bits); covers every reporter
    # that arrived with a valid vulnerable record
    vulnerable_resolution: Dict[int, Tuple[bool, Dict[int, bool]]] = (
        field(default_factory=dict))

    def any_vulnerable(self) -> bool:
        """True if some reporter remains vulnerable after resolution
        (the IsQuorum veto, CodeSegment A.8 line 1)."""
        return any(valid for valid, _ in
                   self.vulnerable_resolution.values())


def compute_knowledge(reports: Dict[int, EngineStateMsg]) -> Knowledge:
    """Run CodeSegment A.7 over the collected state messages."""
    if not reports:
        raise ValueError("no state messages to compute knowledge from")

    # Step 1: maximal primary component and the groups around it.  The
    # tie-break over the member set makes the choice deterministic even
    # for byzantine-ish inputs where two reports share (prim_index,
    # attempt_index) but disagree on membership — impossible in a
    # correct run, where that pair identifies a unique installation.
    best_full = max((r.prim_component.key, r.prim_component.servers)
                    for r in reports.values())
    prim = next(r.prim_component for r in reports.values()
                if (r.prim_component.key,
                    r.prim_component.servers) == best_full)
    updated = tuple(sorted(
        s for s, r in reports.items()
        if (r.prim_component.key, r.prim_component.servers) == best_full))
    valid_group = tuple(s for s in updated if reports[s].yellow_valid)
    attempt_index = max(reports[s].attempt_index for s in updated)

    # Step 2: yellow = ordered intersection over the valid group.
    yellow = Yellow()
    if valid_group:
        yellow.make_valid()
        common = set(reports[valid_group[0]].yellow_ids)
        for s in valid_group[1:]:
            common &= set(reports[s].yellow_ids)
        # Keep the first valid member's order — all valid members
        # delivered these in the same transitional configuration order
        # (EVS preserves the relative order of commonly delivered
        # messages), so any member's order agrees on the intersection.
        yellow.set = [a for a in reports[valid_group[0]].yellow_ids
                      if a in common]

    # Steps 3+4: vulnerable resolution.
    resolution: Dict[int, Tuple[bool, Dict[int, bool]]] = {}
    valid_vuln = {s: r.vulnerable for s, r in reports.items()
                  if r.vulnerable.is_valid}
    still_valid: Dict[int, Vulnerable] = {}
    for s, vuln in valid_vuln.items():
        invalid = False
        if s not in prim.servers:
            invalid = True
        else:
            for member in vuln.set:
                if member not in reports:
                    continue
                other = reports[member].vulnerable
                if (not other.is_valid
                        or other.prim_index != vuln.prim_index
                        or other.attempt_index != vuln.attempt_index):
                    invalid = True
                    break
        if invalid:
            resolution[s] = (False, dict(vuln.bits))
        else:
            still_valid[s] = vuln

    # Step 4: union the bits of identical still-valid attempts, and set
    # the bit of every attempt member whose state message is part of
    # this round — its knowledge is incorporated here and now.
    by_attempt: Dict[Tuple, List[int]] = {}
    for s, vuln in still_valid.items():
        by_attempt.setdefault(vuln.attempt_key(), []).append(s)
    for attempt_key, servers in by_attempt.items():
        _, _, members = attempt_key
        union: Dict[int, bool] = {m: False for m in members}
        for s in servers:
            for m, bit in still_valid[s].bits.items():
                if bit:
                    union[m] = True
        for m in members:
            if m in reports:
                union[m] = True
        all_set = all(union.get(m, False) for m in members)
        for s in servers:
            resolution[s] = (not all_set, dict(union))

    return Knowledge(prim_component=prim, updated_group=updated,
                     valid_group=valid_group, attempt_index=attempt_index,
                     yellow=yellow, vulnerable_resolution=resolution)


@dataclass
class RetransPlan:
    """Who retransmits what during ExchangeActions.

    green_target        the longest green prefix among members
    green_start         the shortest — retransmission covers the gap
    green_holder        server retransmitting the green suffix
    red_targets[c]      highest action index of creator c known anywhere
    red_holders[c]      member holding (and retransmitting) c's red tail
    red_floor[c]        index every member already has (no need below)
    """

    green_target: int = 0
    green_start: int = 0
    green_holder: Optional[int] = None
    red_targets: Dict[int, int] = field(default_factory=dict)
    red_holders: Dict[int, int] = field(default_factory=dict)
    red_floor: Dict[int, int] = field(default_factory=dict)

    def is_noop(self) -> bool:
        return (self.green_target <= self.green_start
                and all(self.red_targets.get(c, 0) <= floor
                        for c, floor in self.red_floor.items()))


def plan_retransmission(reports: Dict[int, EngineStateMsg]
                        ) -> RetransPlan:
    """Derive the deterministic retransmission assignment."""
    plan = RetransPlan()
    plan.green_target = max(r.green_count for r in reports.values())
    plan.green_start = min(r.green_count for r in reports.values())
    holders = sorted(((r.green_count, -s) for s, r in reports.items()),
                     reverse=True)
    plan.green_holder = -holders[0][1]

    creators = set()
    for r in reports.values():
        creators.update(r.red_cut)
    for c in sorted(creators):
        cuts = [(r.red_cut.get(c, 0), -s) for s, r in reports.items()]
        top_cut, neg_holder = max(cuts)
        floor = min(cut for cut, _ in cuts)
        plan.red_targets[c] = top_cut
        plan.red_floor[c] = floor
        plan.red_holders[c] = -neg_holder
    return plan


def retransmission_complete(plan: RetransPlan, green_count: int,
                            red_cut: Dict[int, int]) -> bool:
    """Has this member received everything the plan promises?

    A creator absent from the local red cut was permanently removed
    here (its PERSISTENT_LEAVE is green locally); its red tail is dead
    and deliberately not awaited — members that still carry the
    creator catch up on the removal through the green retransmission.
    """
    if green_count < plan.green_target:
        return False
    return all(red_cut[c] >= target
               for c, target in plan.red_targets.items()
               if c in red_cut)
