"""Cluster harness: build and drive a whole replicated system.

Used by the tests, the examples, and the benchmark harness.  Owns the
simulator, topology, network, and all replicas; provides fault
injection, dynamic join/leave orchestration, and the consistency
assertions that encode the paper's correctness theorems.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..db import ActionId
from ..gcs import GcsSettings
from ..net import Network, NetworkProfile, Topology
from ..obs import Observability
from ..runtime import SimRuntime
from ..sim import RandomStreams, Tracer
from ..storage import DiskProfile
from .client import Client
from .engine import EngineConfig
from .reconfig import JoinerProtocol, TransferHeader
from .replica import Replica
from .state_machine import EngineState


class ReplicaCluster:
    """A simulated cluster of database replicas."""

    def __init__(self, n: int = 3,
                 server_ids: Optional[Sequence[int]] = None,
                 seed: int = 0,
                 network_profile: Optional[NetworkProfile] = None,
                 disk_profile: Optional[DiskProfile] = None,
                 gcs_settings: Optional[GcsSettings] = None,
                 engine_config: Optional[EngineConfig] = None,
                 trace: bool = False,
                 observability: Optional[Observability] = None,
                 *,
                 shard: int = 0,
                 runtime: Optional[SimRuntime] = None,
                 network: Optional[Network] = None,
                 topology: Optional[Topology] = None,
                 streams: Optional[RandomStreams] = None,
                 tracer: Optional[Tracer] = None) -> None:
        self.server_ids = (list(server_ids) if server_ids is not None
                           else list(range(1, n + 1)))
        # Which replication group of a fabric this cluster is; 0 (and
        # every default below) is the standalone single-group system.
        self.shard = shard
        # Disabled by default: simulated clusters keep plain counters
        # but pay nothing for spans/histograms unless asked.
        self.obs = (observability if observability is not None
                    else Observability.disabled())
        # The deterministic Runtime; `sim` is also reachable as
        # `runtime` for symmetry with LiveCluster.  A shard fabric
        # injects one shared kernel/topology/network so N groups run on
        # a single deterministic event loop; standalone clusters build
        # their own (the historical, bit-identical path).
        if runtime is not None:
            if network is None or topology is None or streams is None \
                    or tracer is None:
                raise ValueError(
                    "injected runtime requires network, topology, "
                    "streams, and tracer as well")
            self.sim = runtime
            self.streams = streams
            self.tracer = tracer
            self.topology = topology
            self.network = network
        else:
            self.sim = SimRuntime()
            self.streams = RandomStreams(seed)
            self.tracer = Tracer(enabled=trace)
            self.topology = Topology(self.server_ids)
            self.network = Network(self.sim, self.topology,
                                   network_profile,
                                   rng=self.streams.stream("network"),
                                   tracer=self.tracer)
        self.runtime = self.sim
        # With tracing on, mirror tracer records (state transitions,
        # installs, disk syncs, crashes) into the flight rings.
        if self.obs.flight_hub is not None:
            self.obs.flight_hub.attach(self.tracer)
        self.directory: Set[int] = set(self.server_ids)
        self.gcs_settings = gcs_settings or GcsSettings()
        self.disk_profile = disk_profile
        self.engine_config_factory = (
            (lambda: engine_config) if engine_config is not None
            else EngineConfig)
        self.replicas: Dict[int, Replica] = {}
        self._client_counter: Dict[int, int] = {}
        for node in self.server_ids:
            self.replicas[node] = self._build_replica(node,
                                                      self.server_ids)
        if self.gcs_settings.use_topology_hints:
            self.topology.subscribe(self._topology_hint)

    def _build_replica(self, node: int,
                       server_ids: Sequence[int]) -> Replica:
        config = self.engine_config_factory()
        return Replica(self.sim, node, self.network, self.directory,
                       list(server_ids), disk_profile=self.disk_profile,
                       gcs_settings=self.gcs_settings,
                       engine_config=config, tracer=self.tracer,
                       obs=self.obs, shard=self.shard)

    # ==================================================================
    # lifecycle & fault injection
    # ==================================================================
    def start_all(self, settle: float = 2.0) -> None:
        """Start every replica and run until the first view settles."""
        for replica in self.replicas.values():
            replica.start()
        if settle > 0:
            self.run_for(settle)

    def run_for(self, duration: float) -> None:
        self.sim.run(until=self.sim.now + duration)

    def run_until_idle(self) -> None:
        self.sim.run()

    def partition(self, *groups: Sequence[int]) -> None:
        self.topology.partition([list(g) for g in groups])

    def heal(self) -> None:
        self.topology.heal()

    def crash(self, node: int) -> None:
        self.topology.crash(node)
        self.replicas[node].crash()

    def recover(self, node: int) -> None:
        self.topology.recover(node)
        self.replicas[node].recover()

    def _topology_hint(self) -> None:
        """Fast-path failure detection (heartbeats remain the backstop)."""
        joined = {n for n, r in self.replicas.items()
                  if r.daemon.joined and self.topology.is_alive(n)}
        for node, replica in self.replicas.items():
            daemon = replica.daemon
            if not daemon.joined or not self.topology.is_alive(node):
                continue
            reachable = {m for m in
                         self.topology.component_members(node) if m in
                         joined}
            current = (set(daemon.view.members) if daemon.view is not None
                       else set())
            if reachable != current:
                daemon.topology_hint()

    # ==================================================================
    # clients
    # ==================================================================
    def client(self, node: int, name: Optional[str] = None) -> Client:
        """Attach a client to a replica.

        Default names are deterministic per cluster (not drawn from a
        process-global counter), so identical seeds replay identical
        histories even when client ids end up in the database.
        """
        if name is None:
            self._client_counter[node] = \
                self._client_counter.get(node, 0) + 1
            name = f"client-{node}.{self._client_counter[node]}"
        return Client(self.replicas[node], name=name)

    # ==================================================================
    # dynamic membership
    # ==================================================================
    def add_replica(self, new_id: int, peer: int,
                    peers: Optional[Sequence[int]] = None,
                    on_joined: Optional[Callable[[Replica], None]] = None
                    ) -> Replica:
        """Instantiate a brand-new replica (Section 5.1/5.2).

        The new node connects to ``peer`` (falling back to ``peers`` on
        failure), receives the database transfer, and then joins the
        replicated group.
        """
        if new_id in self.replicas:
            raise ValueError(f"replica {new_id} already exists")
        self.topology.add_node(new_id, component_like=peer)
        self.directory.add(new_id)
        replica = self._build_replica(new_id, [new_id])
        self.replicas[new_id] = replica
        replica.start(join_group=False)

        contact_order = list(peers) if peers else [peer]
        if peer not in contact_order:
            contact_order.insert(0, peer)

        def ready(header: TransferHeader) -> None:
            self._complete_join(replica, header)
            if on_joined is not None:
                on_joined(replica)

        replica.joiner = JoinerProtocol(self.sim, replica, contact_order,
                                        ready)
        replica.joiner.start()
        return replica

    def _complete_join(self, replica: Replica,
                       header: TransferHeader) -> None:
        """CodeSegment 5.2 lines 28-30: adopt the transferred state and
        start executing the replication algorithm."""
        engine = replica.engine
        for server in header.servers:
            engine.queue.add_server(server)
        engine.removed_servers = set(header.removed)
        engine.queue.green_offset = header.green_count
        engine.queue.set_green_line(replica.node, header.green_count)
        # The inherited database incorporates every action in its
        # applied log (Theorem 2): the red cut must reflect that, or the
        # first exchange would wait for retransmission of actions that
        # exist only as inherited state.
        # Creators no longer in the membership (servers that left) must
        # not be resurrected into the cuts.
        for action_id in replica.database.applied_log:
            if action_id.server_id not in engine.queue.red_cut:
                continue
            if action_id.index > engine.queue.red_cut[action_id.server_id]:
                engine.queue.red_cut[action_id.server_id] = action_id.index
        engine.prim_component = type(engine.prim_component)(
            prim_index=0, attempt_index=0,
            servers=tuple(sorted(header.servers)))
        replica.store.wal.append("db_snapshot",
                                 replica.database.snapshot(), forced=False)
        engine._persist_records()
        replica.store.sync()
        engine.state = EngineState.NON_PRIM
        replica.daemon.join()
        self.tracer.emit(self.sim.now, replica.node, "replica.joined",
                         green=header.green_count)

    # ==================================================================
    # consistency checks (the paper's theorems, executable)
    # ==================================================================
    def running_replicas(self) -> List[Replica]:
        return [r for r in self.replicas.values()
                if r.running and not r.engine.exited]

    def applied_logs(self) -> Dict[int, List[ActionId]]:
        return {n: list(r.database.applied_log)
                for n, r in self.replicas.items()
                if r.running and not r.engine.exited}

    def assert_prefix_consistent(self) -> None:
        """Global Total Order: any two applied logs agree on their
        common prefix (Theorem 1)."""
        logs = list(self.applied_logs().items())
        for i in range(len(logs)):
            for j in range(i + 1, len(logs)):
                (node_a, log_a), (node_b, log_b) = logs[i], logs[j]
                common = min(len(log_a), len(log_b))
                if log_a[:common] != log_b[:common]:
                    diverge = next(k for k in range(common)
                                   if log_a[k] != log_b[k])
                    raise AssertionError(
                        f"total order violated between {node_a} and "
                        f"{node_b} at position {diverge}: "
                        f"{log_a[diverge]} vs {log_b[diverge]}")

    def assert_converged(self) -> None:
        """After a fault-free stable period, all running replicas hold
        identical green sequences and database states (Liveness)."""
        replicas = self.running_replicas()
        if not replicas:
            return
        self.assert_prefix_consistent()
        counts = {r.node: r.database.applied_count for r in replicas}
        if len(set(counts.values())) != 1:
            raise AssertionError(f"replicas not converged: {counts}")
        digests = {r.node: r.database.digest() for r in replicas}
        if len(set(digests.values())) != 1:
            raise AssertionError(f"database digests differ: {digests}")

    def primary_members(self) -> List[int]:
        """Nodes currently in a primary component."""
        return [n for n, r in self.replicas.items()
                if r.running and r.engine.in_primary]

    def assert_single_primary(self) -> None:
        """At most one component believes it is primary."""
        prims = set()
        for node, replica in self.replicas.items():
            if replica.running and replica.engine.state \
                    == EngineState.REG_PRIM:
                conf = replica.engine.conf
                if conf is not None:
                    prims.add(conf.view_id)
        if len(prims) > 1:
            raise AssertionError(f"multiple primary components: {prims}")

    def states(self) -> Dict[int, str]:
        return {n: (str(r.engine.state) if r.running else
                    ("exited" if r.engine.exited else "down"))
                for n, r in self.replicas.items()}
