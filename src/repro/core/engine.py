"""The replication engine: Appendix A's algorithm, executable.

One engine runs per node, between the group communication daemon below
and the database + clients above.  It is a pure event-driven state
machine over the eight states of Figure 4, driven by five event kinds:
action message, state message, CPC message, regular configuration,
transitional configuration — plus client requests.

Faithfulness notes (pseudo-code references in parentheses):

* ``** sync to disk`` points are asynchronous in this implementation:
  the engine initiates the forced write and continues *only* in the
  completion callback, guarded by a generation counter so a membership
  change during the write safely supersedes the continuation.  The
  observable protocol order (sync happens-before the dependent message)
  is preserved exactly.
* Client requests are the paper's one-forced-write-per-action: the
  action is journaled to the ``ongoingQueue`` and synced *before* it is
  multicast (A.1/A.2 Client req).  ``EngineConfig.forced_client_writes
  = False`` gives the delayed-writes variant of Figure 5(b).
* Green application durability is asynchronous (``green`` WAL records);
  a crash may roll a server's green suffix back, which is exactly the
  window the **vulnerable** record guards (Section 5).
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Callable, Dict, Iterator, List,
                    Optional, Tuple)

from ..db import Action, ActionId, ActionType, Database
from ..gcs import Configuration, GroupChannel, ServiceLevel, ViewId
from ..obs import Observability, action_trace_id
from ..obs.flight import TXN_TRACE_BIT
from ..obs.spans import STALENESS_STRIDE

# Power-of-two stride lets the sampling test be a single AND.
_STALENESS_MASK = STALENESS_STRIDE - 1
from ..sim import Tracer
from ..storage import StableStore
from .action_queue import ActionQueue
from .knowledge import (Knowledge, RetransPlan, compute_knowledge,
                        plan_retransmission, retransmission_complete)
from .messages import EngineActionMsg, EngineCpcMsg, EngineStateMsg
from .quorum import DynamicLinearVoting, QuorumPolicy
from .records import PrimComponent, Vulnerable, Yellow
from .state_machine import EngineState, check_transition

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.base import Runtime


@dataclass
class EngineConfig:
    """Tunables of the replication engine."""

    forced_client_writes: bool = True
    checkpoint_interval: float = 0.25
    truncate_white: bool = True
    action_size: int = 200
    control_size: int = 128
    # Per-action processing cost of the replication server (ordering,
    # indexing, handing to the DBMS).  Every replica pays it for every
    # globally ordered action — this is what caps the delayed-writes
    # engine at ~2500 actions/s in the paper's Figure 5(b).
    apply_cpu: float = 0.0004
    # Rewrite the WAL (database snapshot + live records) whenever it
    # grows past this many records; None disables compaction.
    log_compaction_threshold: Optional[int] = 4000
    quorum: QuorumPolicy = field(default_factory=DynamicLinearVoting)


#: stats key -> (metric name, help); the engine's protocol counters now
#: live in the metrics registry, and :class:`EngineStats` keeps the
#: historical ``engine.stats`` dict interface as a read-only view.
ENGINE_COUNTERS = {
    "greens": ("repro_engine_green_actions_total",
               "Actions marked green (globally ordered) at this server."),
    "reds": ("repro_engine_red_actions_total",
             "Actions marked red (locally ordered) at this server."),
    "yellows": ("repro_engine_yellow_actions_total",
                "Actions marked yellow (transitional delivery)."),
    "exchanges": ("repro_engine_exchanges_total",
                  "State-exchange rounds entered (one per view change)."),
    "installs": ("repro_engine_installs_total",
                 "Primary components installed at this server."),
    "cpc_sent": ("repro_engine_cpc_sent_total",
                 "Create-primary-component votes multicast."),
    "state_msgs_sent": ("repro_engine_state_msgs_total",
                        "Exchange state messages multicast."),
    "retrans_actions": ("repro_engine_retrans_actions_total",
                        "Actions retransmitted during exchanges."),
    "client_requests": ("repro_engine_client_requests_total",
                        "Client requests submitted at this server."),
}


class EngineStats(Mapping):
    """Read-only dict-like view over the engine's registry counters.

    Keeps ``engine.stats["greens"]``-style reads (tests, benchmarks,
    the baseline adapters) working while the counters themselves live
    in the :class:`~repro.obs.MetricsRegistry`.
    """

    __slots__ = ("_counters",)

    def __init__(self, counters: Dict[str, Any]) -> None:
        self._counters = counters

    def __getitem__(self, key: str) -> int:
        return int(self._counters[key].value)

    def __iter__(self) -> Iterator[str]:
        return iter(self._counters)

    def __len__(self) -> int:
        return len(self._counters)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return repr(dict(self))


class EngineHooks:
    """Upcalls from the engine to its host replica.  Override freely."""

    def on_green(self, action: Action, position: int, result: Any) -> None:
        """``action`` took global position ``position`` and was applied."""

    def on_red(self, action: Action) -> None:
        """``action`` entered the local (red) order."""

    def on_state_change(self, old: EngineState, new: EngineState) -> None:
        """The engine moved between Figure 4 states."""

    def start_transfer(self, join_action: Action, position: int) -> None:
        """This server is the representative for a green
        PERSISTENT_JOIN: begin the database transfer (Section 5.1)."""

    def on_exit(self) -> None:
        """A PERSISTENT_LEAVE for this server became green: shut down."""


class ReplicationEngine:
    """The replication algorithm of Amir & Tutu, one instance per node."""

    def __init__(self, sim: "Runtime", server_id: int,
                 channel: GroupChannel, store: StableStore,
                 database: Database, server_ids: List[int],
                 config: Optional[EngineConfig] = None,
                 hooks: Optional[EngineHooks] = None,
                 tracer: Optional[Tracer] = None,
                 obs: Optional[Observability] = None,
                 shard: int = 0) -> None:
        self.sim = sim
        self.server_id = server_id
        # Which replication group this engine orders for.  The engine
        # never looks at it — total order is a per-group notion and the
        # GCS group is already namespaced — but fabric-level tooling
        # (routers, reports, seam checks) reads identity off the engine
        # rather than reverse-engineering it from node ids.
        self.shard = shard
        self.channel = channel
        self.store = store
        self.database = database
        self.config = config or EngineConfig()
        self.hooks = hooks or EngineHooks()
        self.tracer = tracer or Tracer(enabled=False)
        self.obs = obs if obs is not None else Observability.disabled()
        # None when observability is off: the hot paths pay a None
        # check, not a call.
        self._spans = self.obs.tracker(server_id)
        # Distributed tracing (None when off, same None-check pattern):
        # the flight recorder keeps a bounded ring of submit/send/recv/
        # red/green events under each action's deterministic trace id.
        # The hot paths append (t, kind, trace, detail) tuples through
        # the cached bound method — the ring deque's identity is stable
        # across FlightRecorder.clear(), so the cache never goes stale.
        self._flight = self.obs.flight(server_id)
        self._flight_append = (self._flight.ring.append
                               if self._flight is not None else None)
        # Staleness probe (opt-in): remote greens measure originator
        # submit → local green lag from the timestamp in action meta,
        # sampled one green in every STALENESS_STRIDE (see spans.py).
        self._staleness = False
        self._staleness_tick = 0
        if self.obs.staleness and self._spans is not None:
            self._staleness = True
            self._spans.enable_staleness()

        self.state = EngineState.NON_PRIM
        self.queue = ActionQueue(server_ids)
        self.action_index = 0
        self.attempt_index = 0
        self.prim_component = PrimComponent(servers=tuple(sorted(server_ids)))
        self.vulnerable = Vulnerable()
        self.yellow = Yellow()
        self.conf: Optional[Configuration] = None
        self.ongoing: Dict[ActionId, Action] = {}
        # Servers permanently removed by a green PERSISTENT_LEAVE.
        # They no longer count toward the last primary component's
        # majority — the paper's cure for "blocking in case of a
        # permanent failure or disconnection of a majority" (Sec. 5.1).
        self.removed_servers: set = set()
        self.exited = False

        # per-exchange volatile state
        self._state_messages: Dict[int, EngineStateMsg] = {}
        self._cpc_received: set = set()
        self._knowledge: Optional[Knowledge] = None
        self._plan: Optional[RetransPlan] = None
        self._red_retrans_sent: set = set()
        self._green_retrans_sent = False
        self._buffered: List[Action] = []
        # Actions delivered while in Construct (sequenced between the
        # exchange and the CPC votes — possible when the GCS re-submits
        # in-flight messages at a view change).  Every member of the
        # configuration sees them at the same point of the delivery
        # sequence, so buffering and green-marking them right after
        # Install keeps the global order identical everywhere.
        self._construct_buffer: List[Action] = []
        # Out-of-FIFO arrivals (a recovering server's red cut lags the
        # live traffic until the exchange retransmission catches it
        # up); drained in creator order as the cut advances.
        self._fifo_pending: Dict[int, Dict[int, Action]] = {}
        self._generation = 0

        # wire up GCS callbacks
        channel.message_handler = self._on_gcs_message
        channel.conf_handler = self._on_gcs_conf

        # statistics: registry counters (fresh children — a rebuilt
        # engine after crash recovery starts from zero, exactly like
        # the volatile dict it replaced), with the old dict kept as a
        # read-only view.
        registry = self.obs.registry
        counters = {
            key: registry.counter(name, help, ("server",))
                         .labels(server_id, fresh=True)
            for key, (name, help) in ENGINE_COUNTERS.items()}
        self._c_greens = counters["greens"]
        self._c_reds = counters["reds"]
        self._c_yellows = counters["yellows"]
        self._c_exchanges = counters["exchanges"]
        self._c_installs = counters["installs"]
        self._c_cpc_sent = counters["cpc_sent"]
        self._c_state_msgs = counters["state_msgs_sent"]
        self._c_retrans = counters["retrans_actions"]
        self._c_client_requests = counters["client_requests"]
        self.stats = EngineStats(counters)

    # ==================================================================
    # public API
    # ==================================================================
    @property
    def server_ids(self) -> List[int]:
        """The current known replica set."""
        return self.queue.servers

    @property
    def in_primary(self) -> bool:
        return self.state in (EngineState.REG_PRIM, EngineState.TRANS_PRIM)

    def submit(self, update: Optional[Tuple], query: Optional[Tuple] = None,
               client: Any = None, meta: Optional[dict] = None) -> ActionId:
        """Submit a client request; returns the assigned action id.

        In RegPrim and NonPrim the action is journaled, synced, and
        multicast (A.1/A.2); in the intermediate states it is buffered
        (A.3/A.4/A.6/A.9/A.11/A.12) and issued when the engine settles.
        """
        if self.exited:
            raise RuntimeError(f"server {self.server_id} has left the system")
        self._c_client_requests.inc()
        action = self._create_action(update, query, client, meta or {})
        if self._spans is not None:
            self._spans.on_submit(action.action_id, self.sim.now)
        if self.state in (EngineState.REG_PRIM, EngineState.NON_PRIM):
            self._journal_and_generate([action])
        else:
            self._buffered.append(action)
        return action.action_id

    def submit_action(self, action: Action) -> None:
        """Submit a pre-built action (reconfiguration, semantics layer)."""
        if self._spans is not None \
                and action.action_id.server_id == self.server_id:
            self._spans.on_submit(action.action_id, self.sim.now)
        if self.state in (EngineState.REG_PRIM, EngineState.NON_PRIM):
            self._journal_and_generate([action])
        else:
            self._buffered.append(action)

    def next_action_id(self) -> ActionId:
        """Allocate the next action id for a pre-built action."""
        self.action_index += 1
        return ActionId(self.server_id, self.action_index)

    # ------------------------------------------------------------------
    # action creation and generation
    # ------------------------------------------------------------------
    def _create_action(self, update: Optional[Tuple], query: Optional[Tuple],
                       client: Any, meta: dict) -> Action:
        action_id = self.next_action_id()
        rec = self._flight_append
        if rec is not None:
            # Trace context: deterministic id (pre-assigned ids — e.g.
            # a transaction's — win), recorded at the submit instant.
            trace = meta.get("trace")
            if trace is None:
                trace = meta["trace"] = action_trace_id(
                    self.server_id, action_id.index)
            rec((self.sim.now, "submit", trace, None))
        if self._staleness and "ts" not in meta:
            meta["ts"] = self.sim.now
        return Action(action_id=action_id,
                      green_line=None, client=client, query=query,
                      update=update, meta=meta,
                      size=self.config.action_size)

    def _journal_and_generate(self, actions: List[Action]) -> None:
        """Write actions to the ongoingQueue, sync, then multicast."""
        generation = self._generation
        for action in actions:
            self.ongoing[action.action_id] = action
            self.store.wal.append("ongoing", action,
                                  forced=False)
        if self.config.forced_client_writes:
            self.store.sync(lambda: self._generate(actions, generation))
        else:
            # Delayed-writes mode (Figure 5b): no forced write in the
            # client path; the checkpoint timer makes it durable later.
            self._generate(actions, generation)

    def _generate(self, actions: List[Action], generation: int) -> None:
        if self.exited:
            return
        rec = self._flight_append
        for action in actions:
            msg = EngineActionMsg(action=action,
                                  green_line=self.queue.green_count)
            if rec is None:
                self.channel.multicast(msg, ServiceLevel.SAFE,
                                       size=action.size)
            else:
                trace = action.meta.get("trace", 0)
                rec((self.sim.now, "send", trace, None))
                self.channel.multicast(msg, ServiceLevel.SAFE,
                                       size=action.size, trace=trace)

    def _handle_buffered(self) -> None:
        """Handle_buff_requests (A.8): batch-journal, one sync, send."""
        if not self._buffered:
            return
        actions, self._buffered = self._buffered, []
        self._journal_and_generate(actions)

    # ==================================================================
    # state transitions
    # ==================================================================
    def _set_state(self, new: EngineState) -> None:
        old = self.state
        if old == new:
            return
        check_transition(old, new)
        self.state = new
        self.tracer.emit(self.sim.now, self.server_id, "engine.state",
                         old=str(old), new=str(new))
        self.hooks.on_state_change(old, new)

    # ==================================================================
    # GCS event dispatch
    # ==================================================================
    def _on_gcs_conf(self, conf: Configuration) -> None:
        if self.exited:
            return
        if conf.transitional:
            self._on_trans_conf(conf)
        else:
            self._on_reg_conf(conf)

    def _on_trans_conf(self, conf: Configuration) -> None:
        if self._spans is not None and self.in_primary:
            # Steady state ends here; the span closes at the next
            # primary install (the paper's membership-change cost).
            self._spans.on_membership_start(self.sim.now)
        state = self.state
        if state == EngineState.REG_PRIM:
            self._set_state(EngineState.TRANS_PRIM)
        elif state in (EngineState.EXCHANGE_STATES,
                       EngineState.EXCHANGE_ACTIONS):
            self._set_state(EngineState.NON_PRIM)
        elif state == EngineState.CONSTRUCT:
            self._set_state(EngineState.NO)
        # NonPrim: ignore (A.1).  No/Un/TransPrim: cannot receive a
        # second transitional conf before a regular one.

    def _on_reg_conf(self, conf: Configuration) -> None:
        state = self.state
        if state == EngineState.TRANS_PRIM:
            self.vulnerable.invalidate()
            if self._spans is not None:
                self._spans.close_vulnerable(self.sim.now)
            self.yellow.make_valid()
        elif state == EngineState.NO:
            self.vulnerable.invalidate()
            if self._spans is not None:
                self._spans.close_vulnerable(self.sim.now)
        elif state == EngineState.UN:
            pass  # stays vulnerable (the '?' transition of Figure 4)
        self.conf = conf
        # Own journaled actions that were never delivered back (sent
        # into a dying view) must be re-generated, or the client would
        # wait forever — the liveness counterpart of the ongoingQueue.
        queued = {a.action_id for a in self._buffered}
        for action_id in sorted(self.ongoing):
            if (action_id.index > self.queue.red_cut.get(self.server_id,
                                                         0)
                    and action_id not in queued):
                self._buffered.append(self.ongoing[action_id])
        self._shift_to_exchange_states()

    def _on_gcs_message(self, payload: Any, origin: int,
                        in_transitional: bool,
                        service: ServiceLevel) -> None:
        if self.exited:
            return
        if isinstance(payload, EngineActionMsg):
            rec = self._flight_append
            if rec is not None and origin != self.server_id:
                rec((self.sim.now, "recv",
                     payload.action.meta.get("trace", 0), origin))
            self._on_action(payload, origin)
        elif isinstance(payload, EngineStateMsg):
            self._on_state_msg(payload)
        elif isinstance(payload, EngineCpcMsg):
            self._on_cpc(payload)

    # ==================================================================
    # marking procedures (A.14 + CodeSegment 5.1)
    # ==================================================================
    def _mark_red(self, action: Action, greening: bool = False) -> bool:
        accepted = self.queue.mark_red(action)
        if accepted:
            self._note_red(action, greening)
            self._drain_fifo_pending(action.server_id)
        else:
            creator = action.server_id
            if (creator in self.queue.red_cut
                    and action.action_id.index
                    > self.queue.red_cut[creator]):
                # Ahead of our cut: park it until retransmission fills
                # the gap (cannot happen within one view's FIFO stream,
                # only across recovery/exchange boundaries).
                self._fifo_pending.setdefault(
                    creator, {})[action.action_id.index] = action
        return accepted

    def _note_red(self, action: Action, greening: bool = False) -> None:
        self._c_reds.inc()
        rec = self._flight_append
        if rec is not None and not greening:
            rec((self.sim.now, "red", action.meta.get("trace", 0), None))
        if self._spans is not None and not greening:
            # ``greening``: the caller marks this action green at this
            # same instant, and the green hook records a zero-gap span
            # by itself — opening one here would be churn.  An action
            # that was red *earlier* keeps its open span (greening only
            # suppresses the record when the red is accepted fresh
            # inside a green marking).
            self._spans.on_red(action.action_id, self.sim.now)
        if action.action_id.server_id == self.server_id:
            self.ongoing.pop(action.action_id, None)
        self.hooks.on_red(action)

    def _drain_fifo_pending(self, creator: int) -> None:
        pending = self._fifo_pending.get(creator)
        while pending:
            next_index = self.queue.red_cut.get(creator, 0) + 1
            action = pending.pop(next_index, None)
            if action is None:
                break
            if self.queue.mark_red(action):
                self._note_red(action)

    def _mark_yellow(self, action: Action) -> None:
        self._mark_red(action)
        if self.queue.color_of(action.action_id) is not None:
            self.yellow.add(action.action_id)
            self._c_yellows.inc()

    def _mark_green(self, action: Action) -> bool:
        """MarkGreen with the Section 5.1 reconfiguration hook."""
        fresh_red = self._mark_red(action, greening=True)
        if not self.queue.mark_green(action):
            return False
        position = self.queue.green_count - 1
        self.queue.set_green_line(self.server_id, self.queue.green_count)
        self._c_greens.inc()
        meta = action.meta
        now = self.sim.now
        spans = self._spans
        if spans is not None:
            if fresh_red and action.server_id != self.server_id:
                # Steady state on a non-originator: red and green at
                # this same instant, nothing to time — batch the count.
                spans.instant_greens += 1
            else:
                spans.on_green(action.action_id, now)
            if self._staleness and action.server_id != self.server_id:
                tick = self._staleness_tick
                self._staleness_tick = tick + 1
                # Probe one remote green in every STALENESS_STRIDE
                # (deterministic; tick 0 samples, so even tiny runs
                # populate the histogram).
                if not tick & _STALENESS_MASK:
                    submitted = meta.get("ts")
                    if submitted is not None:
                        # Inlined SpanTracker.on_remote_green (same
                        # reasoning as on_green's inlined observe).
                        lag = now - submitted
                        spans.green_lag = lag
                        hist = spans.staleness_hist
                        hist.counts[bisect_left(hist.bounds, lag)] += 1
                        hist.sum += lag
                        hist.count += 1
        rec = self._flight_append
        if rec is not None:
            trace = meta.get("trace", 0)
            if trace < TXN_TRACE_BIT:
                # Plain action: the detail is the bare green position
                # (no tuple on the steady-state path).
                rec((now, "green", trace, position))
            else:
                phase = meta.get("phase")
                rec((now, "green", trace,
                     position if phase is None else (position, phase)))

        if (action.type is ActionType.PERSISTENT_JOIN
                and action.join_id is not None
                and action.join_id not in self.queue.red_cut):
            # lines 5-10 of CodeSegment 5.1
            self.queue.add_server(action.join_id,
                                  green_line=position + 1)
            self.database.apply(action)
            self.store.wal.append("green", (position, action), forced=False)
            if action.server_id == self.server_id:
                self.hooks.start_transfer(action, position)
        elif (action.type is ActionType.PERSISTENT_LEAVE
                and action.leave_id is not None
                and action.leave_id in self.queue.red_cut):
            # lines 11-13
            self.queue.remove_server(action.leave_id)
            self.removed_servers.add(action.leave_id)
            self.database.apply(action)
            self.store.wal.append("green", (position, action), forced=False)
            if action.leave_id == self.server_id:
                self._exit_system()
                return True
        else:
            result = self.database.apply(action)
            self.store.wal.append("green", (position, action), forced=False)
            self.hooks.on_green(action, position, result)
            return True
        self.hooks.on_green(action, position, None)
        return True

    def _exit_system(self) -> None:
        self.exited = True
        self.tracer.emit(self.sim.now, self.server_id, "engine.exit")
        self.hooks.on_exit()

    # ==================================================================
    # Action handling per state
    # ==================================================================
    def _on_action(self, msg: EngineActionMsg, origin: int) -> None:
        action = msg.action
        state = self.state
        if state == EngineState.REG_PRIM:
            self._mark_green(action)                       # OR-1.1
            self.queue.set_green_line(action.server_id, msg.green_line)
        elif state == EngineState.TRANS_PRIM:
            self._mark_yellow(action)
        elif state == EngineState.NON_PRIM:
            self._mark_red(action)
        elif state == EngineState.EXCHANGE_STATES:
            if msg.green_pos is not None:
                self._accept_green_retrans(msg)
            else:
                self._mark_red(action)
        elif state == EngineState.EXCHANGE_ACTIONS:
            self._on_retrans_action(msg)                   # OR-3
        elif state == EngineState.UN:
            # Someone installed the primary component and generated an
            # action before noticing the failure: install and join it
            # in spirit (transition 1b of Figure 4).
            self._install()
            self._mark_yellow(action)
            self._set_state(EngineState.TRANS_PRIM)
        elif state == EngineState.CONSTRUCT:
            # Sequenced between the exchange and the CPC round (a GCS
            # re-submission of an in-flight message).  Identical at
            # every member of the configuration: buffer, and green
            # right after Install.
            self._construct_buffer.append(action)
        else:
            self.tracer.emit(self.sim.now, self.server_id,
                             "engine.unexpected_action", state=str(state),
                             action=str(action.action_id))

    def _accept_green_retrans(self, msg: EngineActionMsg) -> None:
        """A retransmitted, already-globally-ordered action."""
        assert msg.green_pos is not None
        if msg.green_pos < self.queue.green_count:
            return  # already have it green
        if msg.green_pos > self.queue.green_count:
            # Out-of-order green retransmission cannot happen: the
            # retransmitter sends positions consecutively through the
            # same totally ordered channel.
            raise AssertionError(
                f"green retrans gap at {self.server_id}: have "
                f"{self.queue.green_count}, got {msg.green_pos}")
        self._mark_green(msg.action)

    def _on_retrans_action(self, msg: EngineActionMsg) -> None:
        if msg.green_pos is not None:
            self._accept_green_retrans(msg)
        elif (self._knowledge is not None
                and self._knowledge.yellow.is_valid
                and msg.action.action_id in self._knowledge.yellow.set):
            self._mark_yellow(msg.action)
        else:
            self._mark_red(msg.action)
        self._retransmit_if_my_turn()
        self._check_end_of_retrans()

    # ==================================================================
    # exchange protocol
    # ==================================================================
    def _shift_to_exchange_states(self) -> None:
        """Shift_to_exchange_states (A.5)."""
        assert self.conf is not None
        self._generation += 1
        generation = self._generation
        self._c_exchanges.inc()
        if self._spans is not None:
            self._spans.on_membership_start(self.sim.now)
        self._state_messages = {}
        self._cpc_received = set()
        self._knowledge = None
        self._plan = None
        self._red_retrans_sent = set()
        self._green_retrans_sent = False
        self._construct_buffer = []
        self._set_state(EngineState.EXCHANGE_STATES)
        self._persist_records()
        self.store.put("red_actions", self.queue.red_actions())
        self.store.sync(lambda: self._send_state_msg(generation))

    def _send_state_msg(self, generation: int) -> None:
        if (generation != self._generation or self.exited
                or self.state != EngineState.EXCHANGE_STATES):
            return
        assert self.conf is not None
        msg = EngineStateMsg(
            server_id=self.server_id, conf_id=self.conf.view_id,
            green_count=self.queue.green_count,
            red_cut=dict(self.queue.red_cut),
            green_lines=dict(self.queue.green_lines),
            attempt_index=self.attempt_index,
            prim_component=self.prim_component,
            vulnerable=self.vulnerable,
            yellow_valid=self.yellow.is_valid,
            yellow_ids=tuple(self.yellow.set))
        self._c_state_msgs.inc()
        self.channel.multicast(msg, ServiceLevel.SAFE,
                               size=self.config.control_size)

    def _on_state_msg(self, msg: EngineStateMsg) -> None:
        if self.state != EngineState.EXCHANGE_STATES:
            return  # A.1/A.4: ignore outside the exchange
        assert self.conf is not None
        if msg.conf_id != self.conf.view_id:
            return
        self._state_messages[msg.server_id] = msg
        if set(self._state_messages) == set(self.conf.members):
            self._all_states_delivered()

    def _all_states_delivered(self) -> None:
        self._knowledge = compute_knowledge(self._state_messages)
        self._plan = plan_retransmission(self._state_messages)
        # Adopt the computed yellow record (identical at all members).
        self.yellow = Yellow(status=self._knowledge.yellow.status,
                             set=list(self._knowledge.yellow.set))
        self._set_state(EngineState.EXCHANGE_ACTIONS)
        if self._plan.green_holder == self.server_id:
            self._retransmit_greens()
        self._retransmit_if_my_turn()
        self._check_end_of_retrans()

    def _retransmit_greens(self) -> None:
        assert self._plan is not None
        if self._green_retrans_sent:
            return
        self._green_retrans_sent = True
        for pos, action in self.queue.green_slice(self._plan.green_start,
                                                  self._plan.green_target):
            self._c_retrans.inc()
            self.channel.multicast(
                EngineActionMsg(action=action, green_pos=pos, retrans=True,
                                green_line=self.queue.green_count),
                ServiceLevel.SAFE, size=action.size)

    def _retransmit_if_my_turn(self) -> None:
        """Red tails go out once our green prefix reached the target, so
        their total-order position follows every green retransmission."""
        if (self.state != EngineState.EXCHANGE_ACTIONS
                or self._plan is None
                or self.queue.green_count < self._plan.green_target):
            return
        for creator, holder in self._plan.red_holders.items():
            if holder != self.server_id or creator in self._red_retrans_sent:
                continue
            self._red_retrans_sent.add(creator)
            floor = self._plan.red_floor.get(creator, 0)
            for action in self.queue.red_actions_of(creator):
                if action.action_id.index <= floor:
                    continue
                self._c_retrans.inc()
                self.channel.multicast(
                    EngineActionMsg(action=action, retrans=True,
                                    green_line=self.queue.green_count),
                    ServiceLevel.SAFE, size=action.size)

    def _check_end_of_retrans(self) -> None:
        if (self.state != EngineState.EXCHANGE_ACTIONS
                or self._plan is None):
            return
        if retransmission_complete(self._plan, self.queue.green_count,
                                   self.queue.red_cut):
            self._end_of_retrans()

    def _end_of_retrans(self) -> None:
        """End_of_retrans (A.5)."""
        assert self.conf is not None and self._knowledge is not None
        generation = self._generation
        for msg in self._state_messages.values():
            self.queue.set_green_line(msg.server_id, msg.green_count)
            for server, line in msg.green_lines.items():
                if server in self.queue.green_lines:
                    self.queue.set_green_line(server, line)
        knowledge = self._knowledge
        self.prim_component = PrimComponent(
            prim_index=knowledge.prim_component.prim_index,
            attempt_index=knowledge.prim_component.attempt_index,
            servers=tuple(knowledge.prim_component.servers))
        self.attempt_index = knowledge.attempt_index
        if self.vulnerable.is_valid:
            resolved = knowledge.vulnerable_resolution.get(self.server_id)
            if resolved is not None:
                valid, bits = resolved
                self.vulnerable.bits = dict(bits)
                if not valid:
                    self.vulnerable.invalidate()
                    if self._spans is not None:
                        self._spans.close_vulnerable(self.sim.now)
        if self.config.truncate_white:
            self.queue.truncate_white()

        if self._is_quorum(knowledge):
            self.attempt_index += 1
            self.vulnerable.make_valid(self.prim_component.prim_index,
                                       self.attempt_index,
                                       tuple(sorted(self.conf.members)),
                                       self.server_id)
            if self._spans is not None:
                self._spans.open_vulnerable(self.sim.now)
            self._persist_records()
            self._set_state(EngineState.CONSTRUCT)
            self.store.sync(lambda: self._send_cpc(generation))
        else:
            self._persist_records()
            self._set_state(EngineState.NON_PRIM)
            self.store.sync(lambda: self._after_nonprim_sync(generation))

    def _is_quorum(self, knowledge: Knowledge) -> bool:
        """IsQuorum (A.8): no live vulnerability, then the policy.

        Permanently removed servers are excluded from the last primary
        component's membership: their PERSISTENT_LEAVE is globally
        ordered, so every server that subtracts them agrees on the
        subtraction — and servers that have not yet ordered the leave
        are merely conservative.
        """
        assert self.conf is not None
        if knowledge.any_vulnerable():
            return False
        last_prim = tuple(s for s in self.prim_component.servers
                          if s not in self.removed_servers)
        return self.config.quorum.is_quorum(
            self.conf.members, last_prim, self.queue.servers)

    def _after_nonprim_sync(self, generation: int) -> None:
        if (generation != self._generation or self.exited
                or self.state != EngineState.NON_PRIM):
            return
        self._handle_buffered()

    # ==================================================================
    # construct / install
    # ==================================================================
    def _send_cpc(self, generation: int) -> None:
        if (generation != self._generation or self.exited
                or self.state != EngineState.CONSTRUCT):
            return
        assert self.conf is not None
        self._c_cpc_sent.inc()
        self.channel.multicast(
            EngineCpcMsg(self.server_id, self.conf.view_id),
            ServiceLevel.SAFE, size=self.config.control_size)

    def _on_cpc(self, msg: EngineCpcMsg) -> None:
        if self.conf is None or msg.conf_id != self.conf.view_id:
            return
        if self.state in (EngineState.EXCHANGE_STATES,
                          EngineState.EXCHANGE_ACTIONS):
            # Completion points differ per member even under total
            # order: a member whose local state already satisfies the
            # retransmission plan reaches Construct (and votes) while a
            # member still waiting for retransmissions lags behind.
            # The vote is for this same view's attempt — every member
            # computes the same quorum decision from the same reports —
            # so remember it; install still only triggers below once
            # this member reaches Construct/No itself.
            self._cpc_received.add(msg.server_id)
        elif self.state == EngineState.CONSTRUCT:
            self._cpc_received.add(msg.server_id)
            if self._cpc_received == set(self.conf.members):
                for server in self.conf.members:
                    self.queue.set_green_line(server,
                                              self.queue.green_count)
                self._install()
                buffered, self._construct_buffer = \
                    self._construct_buffer, []
                for action in buffered:
                    if self.exited:
                        break
                    creator = action.action_id.server_id
                    if self.queue.red_cut.get(creator, 0) \
                            >= action.action_id.index - 1:
                        self._mark_green(action)
                    else:
                        self._mark_red(action)  # parks until the gap fills
                self._set_state(EngineState.REG_PRIM)
                self._handle_buffered()
        elif self.state == EngineState.NO:
            self._cpc_received.add(msg.server_id)
            if self._cpc_received == set(self.conf.members):
                self._set_state(EngineState.UN)
        # Other states: stale vote from a superseded attempt.

    def _install(self) -> None:
        """Install (A.10)."""
        self._c_installs.inc()
        if self.yellow.is_valid:
            for action_id in list(self.yellow.set):        # OR-1.2
                action = self.queue.find(action_id)
                if action is not None:
                    self._mark_green(action)
        self.yellow.invalidate()
        self.prim_component = PrimComponent(
            prim_index=self.prim_component.prim_index + 1,
            attempt_index=self.attempt_index,
            servers=tuple(self.vulnerable.set))
        self.attempt_index = 0
        for action in sorted(self.queue.red_actions(),
                             key=lambda a: a.action_id):   # OR-2
            self._mark_green(action)
            if self.exited:
                return
        self._persist_records()
        self.store.sync()
        if self._spans is not None:
            self._spans.on_install(self.sim.now)
        self.tracer.emit(self.sim.now, self.server_id, "engine.install",
                         prim_index=self.prim_component.prim_index,
                         servers=self.prim_component.servers)

    # ==================================================================
    # persistence
    # ==================================================================
    def _persist_records(self) -> None:
        self.store.put("prim_component", self.prim_component)
        self.store.put("vulnerable", self.vulnerable)
        self.store.put("yellow", self.yellow)
        self.store.put("attempt_index", self.attempt_index)
        self.store.put("action_index", self.action_index)
        self.store.put("servers", self.queue.servers)
        self.store.put("removed_servers", sorted(self.removed_servers))
        self.store.put("green_lines", dict(self.queue.green_lines))

    def checkpoint(self) -> None:
        """Periodic durability point: flush buffered WAL records.

        The red-actions snapshot is refreshed here (not only at
        exchange entry): once an own action is delivered back red, its
        ongoingQueue journal entry is discarded (A.14), so the red
        snapshot is its durable home — and log compaction depends on
        the snapshot being current.
        """
        self._persist_records()
        self.store.put("red_actions", self.queue.red_actions())
        self.store.sync()
        if self.config.truncate_white:
            self.queue.truncate_white()
        threshold = self.config.log_compaction_threshold
        if threshold is not None and \
                self.store.wal.durable_size > threshold:
            self.compact_log()

    def compact_log(self) -> None:
        """Rewrite the WAL: one database snapshot + live records.

        Green history below the snapshot is subsumed by it; completed
        ongoingQueue entries vanish; the persistent records keep only
        their latest values.  Atomic: a crash mid-rewrite recovers from
        the previous log.
        """
        from ..storage import LogRecord
        records = [LogRecord("db_snapshot", self.database.snapshot())]
        for key, value in sorted(self.store.items().items()):
            records.append(LogRecord("kv", (key, value)))
        for action_id in sorted(self.ongoing):
            records.append(LogRecord("ongoing", self.ongoing[action_id]))
        self.store.wal.rewrite(records)
        self.tracer.emit(self.sim.now, self.server_id, "engine.compact",
                         records=len(records))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Engine {self.server_id} {self.state} "
                f"green={self.queue.green_count} "
                f"red={len(self.queue.red_actions())}>")
