"""Engine states and the legal transition table (Figure 4).

The table is declared *per input*: for each of the five event kinds the
engine reacts to (plus client requests), :data:`EDGES_BY_INPUT` lists
the Figure-4 edges that event may trigger.  Everything else derives
from that single declaration:

* :data:`EDGES` — the flat set of legal directed edges;
* :data:`TRANSITIONS` — per-state successor sets, used as an executable
  assertion (:func:`check_transition`): every transition the engine
  takes is validated against it, so a protocol bug surfaces as an
  immediate error instead of silent divergence;
* :func:`next_states` — the possible states after handling one input
  in a given state (self-loops are implicit: an input may always leave
  the state unchanged).

The static-analysis suite (``repro.analysis``) cross-checks this table
against the ``_set_state`` calls and state guards of the engine source,
so the declaration, the code, and the paper stay in sync mechanically.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, FrozenSet, Tuple


class EngineState(Enum):
    """The eight states of the replication algorithm (Figure 4)."""

    NON_PRIM = "NonPrim"
    REG_PRIM = "RegPrim"
    TRANS_PRIM = "TransPrim"
    EXCHANGE_STATES = "ExchangeStates"
    EXCHANGE_ACTIONS = "ExchangeActions"
    CONSTRUCT = "Construct"
    NO = "No"
    UN = "Un"

    def __str__(self) -> str:
        return self.value


class EngineInput(Enum):
    """The six input kinds driving the Figure-4 machine."""

    ACTION = "action"            # action message delivered by the GCS
    REG_CONF = "reg_conf"        # regular configuration notification
    TRANS_CONF = "trans_conf"    # transitional configuration
    STATE_MSG = "state_msg"      # exchange state message
    CPC_MSG = "cpc_msg"          # create-primary-component vote
    CLIENT = "client"            # client request submitted locally

    def __str__(self) -> str:
        return self.value


_S = EngineState
Edge = Tuple[EngineState, EngineState]

#: input -> the Figure-4 edges that input may trigger.  Self-loops are
#: implicit (any input may leave the state unchanged) and not listed.
EDGES_BY_INPUT: Dict[EngineInput, FrozenSet[Edge]] = {
    # An action in Un proves somebody installed the attempted primary
    # (transition 1b); a retransmitted action in ExchangeActions may
    # complete the retransmission plan and end the exchange either way.
    EngineInput.ACTION: frozenset({
        (_S.UN, _S.TRANS_PRIM),
        (_S.EXCHANGE_ACTIONS, _S.CONSTRUCT),
        (_S.EXCHANGE_ACTIONS, _S.NON_PRIM),
    }),
    # A regular configuration starts a new state exchange from every
    # state except RegPrim: extended virtual synchrony delivers a
    # transitional configuration first, so a regular configuration can
    # never arrive while still in RegPrim.
    EngineInput.REG_CONF: frozenset({
        (_S.NON_PRIM, _S.EXCHANGE_STATES),
        (_S.TRANS_PRIM, _S.EXCHANGE_STATES),
        (_S.EXCHANGE_ACTIONS, _S.EXCHANGE_STATES),
        (_S.CONSTRUCT, _S.EXCHANGE_STATES),
        (_S.NO, _S.EXCHANGE_STATES),
        (_S.UN, _S.EXCHANGE_STATES),
    }),
    EngineInput.TRANS_CONF: frozenset({
        (_S.REG_PRIM, _S.TRANS_PRIM),
        (_S.EXCHANGE_STATES, _S.NON_PRIM),
        (_S.EXCHANGE_ACTIONS, _S.NON_PRIM),
        (_S.CONSTRUCT, _S.NO),
    }),
    # The last state message moves to ExchangeActions; when the
    # retransmission plan is already satisfied locally, the same
    # delivery continues straight to Construct or NonPrim.
    EngineInput.STATE_MSG: frozenset({
        (_S.EXCHANGE_STATES, _S.EXCHANGE_ACTIONS),
        (_S.EXCHANGE_ACTIONS, _S.CONSTRUCT),
        (_S.EXCHANGE_ACTIONS, _S.NON_PRIM),
    }),
    EngineInput.CPC_MSG: frozenset({
        (_S.CONSTRUCT, _S.REG_PRIM),
        (_S.NO, _S.UN),
    }),
    # Client requests never move the machine: they are generated
    # immediately (RegPrim/NonPrim) or buffered (everywhere else).
    EngineInput.CLIENT: frozenset(),
}

#: All legal Figure-4 edges, independent of the triggering input.
EDGES: FrozenSet[Edge] = frozenset(
    edge for edges in EDGES_BY_INPUT.values() for edge in edges)

#: Declared edges that extended virtual synchrony makes dynamically
#: unreachable.  The GCS daemon always delivers a transitional
#: configuration before the regular one (``_install_view``), and the
#: transitional configuration moves ExchangeStates/ExchangeActions to
#: NonPrim and Construct to No — so by the time the regular
#: configuration reaches the engine, it can only be in NonPrim,
#: TransPrim, No, or Un.  The two edges below stay in the table
#: because the *code* can take them (``_on_reg_conf`` shifts to the
#: exchange from any state, and the static cross-checker verifies the
#: table against the code, not against the delivery order); the model
#: checker (``repro.check``) asserts dynamically that no reachable
#: execution ever exercises them.
EVS_SHADOWED_EDGES: FrozenSet[Tuple[EngineInput, EngineState,
                                    EngineState]] = frozenset({
    (EngineInput.REG_CONF, _S.EXCHANGE_ACTIONS, _S.EXCHANGE_STATES),
    (EngineInput.REG_CONF, _S.CONSTRUCT, _S.EXCHANGE_STATES),
})

#: state -> set of states reachable in one transition (Figure 4 edges;
#: self-loops are implicit and always allowed).  Derived from
#: :data:`EDGES_BY_INPUT` so the two views cannot drift apart.
TRANSITIONS: Dict[EngineState, FrozenSet[EngineState]] = {
    state: frozenset(new for old, new in EDGES if old is state)
    for state in EngineState
}


def next_states(state: EngineState,
                event: EngineInput) -> FrozenSet[EngineState]:
    """The states possibly standing after handling ``event`` in
    ``state`` (including ``state`` itself: inputs may be no-ops)."""
    return frozenset({state} | {
        new for old, new in EDGES_BY_INPUT[event] if old is state})


class IllegalTransition(Exception):
    """The engine attempted a transition not in Figure 4."""


def check_transition(old: EngineState, new: EngineState) -> None:
    """Raise :class:`IllegalTransition` if ``old -> new`` is not legal."""
    if old == new:
        return
    if new not in TRANSITIONS[old]:
        raise IllegalTransition(f"{old} -> {new}")
