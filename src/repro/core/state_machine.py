"""Engine states and the legal transition table (Figure 4).

The table is used as an executable assertion: every transition the
engine takes is validated against it, so a protocol bug surfaces as an
immediate error instead of silent divergence.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, FrozenSet


class EngineState(Enum):
    """The eight states of the replication algorithm (Figure 4)."""

    NON_PRIM = "NonPrim"
    REG_PRIM = "RegPrim"
    TRANS_PRIM = "TransPrim"
    EXCHANGE_STATES = "ExchangeStates"
    EXCHANGE_ACTIONS = "ExchangeActions"
    CONSTRUCT = "Construct"
    NO = "No"
    UN = "Un"

    def __str__(self) -> str:
        return self.value


#: state -> set of states reachable in one transition (Figure 4 edges;
#: self-loops are implicit and always allowed).
TRANSITIONS: Dict[EngineState, FrozenSet[EngineState]] = {
    EngineState.NON_PRIM: frozenset({
        EngineState.EXCHANGE_STATES,
    }),
    EngineState.REG_PRIM: frozenset({
        EngineState.TRANS_PRIM,
    }),
    EngineState.TRANS_PRIM: frozenset({
        EngineState.EXCHANGE_STATES,
    }),
    EngineState.EXCHANGE_STATES: frozenset({
        EngineState.EXCHANGE_ACTIONS,
        EngineState.NON_PRIM,       # transitional conf during exchange
        EngineState.CONSTRUCT,      # no-op retransmission fast path
        EngineState.EXCHANGE_STATES,
    }),
    EngineState.EXCHANGE_ACTIONS: frozenset({
        EngineState.CONSTRUCT,      # quorum -> attempt install
        EngineState.NON_PRIM,       # no quorum, or transitional conf
        EngineState.EXCHANGE_STATES,
    }),
    EngineState.CONSTRUCT: frozenset({
        EngineState.REG_PRIM,       # all CPC delivered in regular conf
        EngineState.NO,             # transitional conf first
        EngineState.EXCHANGE_STATES,
    }),
    EngineState.NO: frozenset({
        EngineState.UN,             # remaining CPCs arrived (trans conf)
        EngineState.EXCHANGE_STATES,  # regular conf -> new exchange
    }),
    EngineState.UN: frozenset({
        EngineState.TRANS_PRIM,     # an action proves someone installed
        EngineState.EXCHANGE_STATES,  # regular conf (stay vulnerable)
    }),
}


class IllegalTransition(Exception):
    """The engine attempted a transition not in Figure 4."""


def check_transition(old: EngineState, new: EngineState) -> None:
    """Raise :class:`IllegalTransition` if ``old -> new`` is not legal."""
    if old == new:
        return
    if new not in TRANSITIONS[old]:
        raise IllegalTransition(f"{old} -> {new}")
