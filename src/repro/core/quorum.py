"""Quorum policies for primary-component selection.

The paper uses **dynamic linear voting** [Jajodia & Mutchler 90]: the
component containing a (weighted) majority of the members of the *last
installed primary component* may become the next primary.  A static
majority policy (majority of the full replica set) is provided for the
availability ablation (experiment E5 in DESIGN.md).

The ``IsQuorum`` pre-condition that no connected server may still be
vulnerable (CodeSegment A.8, first line) lives in the engine — it is
policy-independent.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple


class QuorumPolicy:
    """Decides whether a connected set may form the next primary."""

    def is_quorum(self, connected: Iterable[int],
                  last_prim_servers: Tuple[int, ...],
                  all_servers: Iterable[int]) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class DynamicLinearVoting(QuorumPolicy):
    """Weighted majority of the last installed primary component."""

    def __init__(self, weights: Optional[Dict[int, float]] = None) -> None:
        self.weights = dict(weights or {})

    def _weight(self, server: int) -> float:
        return self.weights.get(server, 1.0)

    def is_quorum(self, connected: Iterable[int],
                  last_prim_servers: Tuple[int, ...],
                  all_servers: Iterable[int]) -> bool:
        prim = set(last_prim_servers)
        if not prim:
            # No primary was ever installed: fall back to a majority of
            # the full known replica set (start-up bootstrap).
            prim = set(all_servers)
        connected_set = set(connected)
        present = sum(self._weight(s) for s in prim
                      if s in connected_set)
        total = sum(self._weight(s) for s in prim)
        if present * 2 > total:
            return True
        if present * 2 == total:
            # The "linear" part of dynamic-linear voting [Jajodia &
            # Mutchler 90]: an exact half of the votes suffices for the
            # side holding the distinguished (lowest-id) member of the
            # last primary component.  At most one component can, so
            # mutual exclusion of primaries is preserved — and an
            # even-sized last primary cannot deadlock the whole system
            # when the other half never reconnects (e.g. it left
            # voluntarily and its PERSISTENT_LEAVE went green only at
            # the leaver before it exited).
            return min(prim) in connected_set
        return False

    def describe(self) -> str:
        return "dynamic-linear-voting"


class StaticMajority(QuorumPolicy):
    """Weighted majority of the complete replica set (ablation)."""

    def __init__(self, weights: Optional[Dict[int, float]] = None) -> None:
        self.weights = dict(weights or {})

    def _weight(self, server: int) -> float:
        return self.weights.get(server, 1.0)

    def is_quorum(self, connected: Iterable[int],
                  last_prim_servers: Tuple[int, ...],
                  all_servers: Iterable[int]) -> bool:
        everyone = set(all_servers)
        present = sum(self._weight(s) for s in everyone
                      if s in set(connected))
        total = sum(self._weight(s) for s in everyone)
        return present * 2 > total

    def describe(self) -> str:
        return "static-majority"
