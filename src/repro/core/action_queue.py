"""The actions queue: ordered red/yellow/green actions with cuts.

Implements the paper's ``actionsQueue``, ``redCut`` and ``greenLines``
structures together with the marking procedures of CodeSegment A.14:

* ``mark_red`` — accept an action into the local order.  Respects the
  per-creator FIFO cut: an action is accepted only if it is the next
  index from its creating server (``redCut`` contiguity).
* ``mark_green`` — "place action just on top of the last green action":
  the action leaves the red region and takes the next global position.
* White-line computation — the minimum green line over all servers;
  everything below it is white (known green everywhere) and may be
  truncated.

Green positions are 0-based global order indices; ``green_count`` is
both "how many green actions I have" and "the position the next green
action will take", which makes prefix comparison during the exchange
protocol trivial (Global Total Order guarantees any two servers' green
sequences are prefixes of one another).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, final

from ..db import Action, ActionId
from .colors import Color


@final
class ActionQueue:
    """Red/green bookkeeping for one replica."""

    def __init__(self, server_ids: Iterable[int]) -> None:
        # global green order; index i holds position green_offset + i
        self._green: List[Action] = []
        self.green_offset = 0
        self._green_pos: Dict[ActionId, int] = {}
        # red region: insertion-ordered dict = local delivery order.
        # A parallel per-creator index makes red_actions_of and the
        # remove_server purge O(k) in the creator's actions instead of
        # O(n) in all red actions; red_cut contiguity guarantees each
        # bucket's insertion order is index order, so neither ever sorts.
        self._red: Dict[ActionId, Action] = {}
        self._red_by_creator: Dict[int, Dict[ActionId, Action]] = {}
        # cuts
        self.red_cut: Dict[int, int] = {s: 0 for s in server_ids}
        self.green_lines: Dict[int, int] = {s: 0 for s in server_ids}

    # ------------------------------------------------------------------
    # structure maintenance (dynamic membership)
    # ------------------------------------------------------------------
    def add_server(self, server_id: int, green_line: int = 0) -> None:
        """Extend the cuts for a newly announced server (Section 5.1)."""
        self.red_cut.setdefault(server_id, 0)
        self.green_lines.setdefault(server_id, green_line)

    def remove_server(self, server_id: int) -> None:
        """Drop a permanently removed server from the cuts.

        Red actions of the removed creator are purged: an action of a
        departed server that was not globally ordered before its
        PERSISTENT_LEAVE is dead — every replica processes the leave at
        the same green position, so the purge is identical everywhere
        and no replica can later green what others discarded.
        """
        self.red_cut.pop(server_id, None)
        self.green_lines.pop(server_id, None)
        bucket = self._red_by_creator.pop(server_id, None)
        if bucket:
            for action_id in bucket:
                del self._red[action_id]

    @property
    def servers(self) -> List[int]:
        return sorted(self.red_cut)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def green_count(self) -> int:
        """Number of green actions (also: next green position)."""
        return self.green_offset + len(self._green)

    def color_of(self, action_id: ActionId) -> Optional[Color]:
        """Current color, or None if unknown.  White is reported for
        truncated green positions below the white line."""
        if action_id in self._green_pos:
            return Color.GREEN
        if action_id in self._red:
            return Color.RED
        return None

    def knows(self, action_id: ActionId) -> bool:
        creator = action_id.server_id
        return action_id.index <= self.red_cut.get(creator, 0)

    def green_position(self, action_id: ActionId) -> Optional[int]:
        return self._green_pos.get(action_id)

    def green_slice(self, start: int, stop: Optional[int] = None
                    ) -> List[Tuple[int, Action]]:
        """Green actions with positions in [start, stop); positions
        below the truncation offset are unavailable."""
        if stop is None:
            stop = self.green_count
        start = max(start, self.green_offset)
        return [(pos, self._green[pos - self.green_offset])
                for pos in range(start, min(stop, self.green_count))]

    def green_at(self, position: int) -> Action:
        return self._green[position - self.green_offset]

    def red_actions(self) -> List[Action]:
        """Red actions in local order."""
        return list(self._red.values())

    def red_actions_of(self, creator: int) -> List[Action]:
        """Red actions created by ``creator``, in index order."""
        bucket = self._red_by_creator.get(creator)
        return list(bucket.values()) if bucket else []

    def find(self, action_id: ActionId) -> Optional[Action]:
        action = self._red.get(action_id)
        if action is not None:
            return action
        pos = self._green_pos.get(action_id)
        if pos is not None and pos >= self.green_offset:
            return self._green[pos - self.green_offset]
        return None

    # ------------------------------------------------------------------
    # marking (CodeSegment A.14)
    # ------------------------------------------------------------------
    def mark_red(self, action: Action) -> bool:
        """Accept ``action`` into the local order (red).

        Returns True if the action advanced the red cut (it was the next
        expected index from its creator); False for duplicates and
        out-of-order arrivals, which are ignored as in the paper.
        """
        creator = action.server_id
        red_cut = self.red_cut
        cut = red_cut.get(creator)
        if cut is None:
            return False
        action_id = action.action_id
        if cut != action_id.index - 1:
            return False
        red_cut[creator] = action_id.index
        self._red[action_id] = action
        bucket = self._red_by_creator.get(creator)
        if bucket is None:
            bucket = self._red_by_creator[creator] = {}
        bucket[action_id] = action
        return True

    def mark_green(self, action: Action) -> bool:
        """Mark ``action`` green at the next global position.

        Accepts actions not yet known (marks them red first).  Returns
        True if the action became green now; False if it already was.
        """
        self.mark_red(action)
        action_id = action.action_id
        if action_id in self._green_pos:
            return False
        if action_id not in self._red:
            if self.knows(action_id):
                # Covered by the red cut but held neither red nor
                # green: a duplicate of an action subsumed by a
                # snapshot (white / inherited) — already ordered.
                return False
            # Ahead of the cut: the caller violated FIFO
            # retransmission order.
            raise ValueError(
                f"cannot green {action_id}: FIFO gap "
                f"(red_cut={self.red_cut.get(action.server_id)})")
        self._remove_red(action_id)
        position = self.green_offset + len(self._green)
        self._green.append(action)
        self._green_pos[action_id] = position
        return True

    def _remove_red(self, action_id: ActionId) -> None:
        del self._red[action_id]
        bucket = self._red_by_creator[action_id.server_id]
        del bucket[action_id]
        if not bucket:
            del self._red_by_creator[action_id.server_id]

    # ------------------------------------------------------------------
    # green lines / white line
    # ------------------------------------------------------------------
    def set_green_line(self, server_id: int, green_count: int) -> None:
        """Record that ``server_id`` is known to have ``green_count``
        green actions.  Lines are monotonic."""
        if server_id in self.green_lines:
            if green_count > self.green_lines[server_id]:
                self.green_lines[server_id] = green_count
        else:
            self.green_lines[server_id] = green_count

    @property
    def white_line(self) -> int:
        """Position below which every action is white (known green at
        all servers)."""
        if not self.green_lines:
            return 0
        return min(self.green_lines.values())

    def truncate_white(self) -> int:
        """Discard white actions; returns how many were discarded.

        Safe because no server will ever need them again (they are
        green everywhere), cf. the paper's remark on message discarding.
        """
        limit = min(self.white_line, self.green_count)
        discard = limit - self.green_offset
        if discard <= 0:
            return 0
        for action in self._green[:discard]:
            del self._green_pos[action.action_id]
        self._green = self._green[discard:]
        self.green_offset = limit
        return discard

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ActionQueue green={self.green_count} "
                f"red={len(self._red)} offset={self.green_offset}>")
