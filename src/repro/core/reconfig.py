"""Online replica instantiation and deactivation (Section 5.1/5.2).

A new replica joins by connecting *directly* (reliable point-to-point
channel, not the replicated group) to a member — its *representative* —
which announces it with a ``PERSISTENT_JOIN`` action.  When that action
becomes green at the representative, the representative snapshots its
database and streams it to the joiner.  If the representative fails or
a partition hits mid-transfer, the joiner reconnects to a different
member and resumes; a peer that has not yet ordered the original
PERSISTENT_JOIN issues a new one (only the first ordered announcement
defines the joiner's entry point; later ones are ignored by line 17's
"already in local structures" check).

Departure is a ``PERSISTENT_LEAVE`` action ordered like any other; it
can also be inserted administratively for a dead replica.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

from ..db import (Action, ActionId, SnapshotChunk, SnapshotReceiver,
                  SnapshotSender, join_action, leave_action)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.base import Runtime


# ----------------------------------------------------------------------
# transfer wire messages (sent over the reliable channel)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class JoinRequest:
    """Joiner -> member: announce/resume intent to join.

    transfer_id / next_needed are set when resuming a partial transfer.
    """

    joiner_id: int
    transfer_id: Optional[str] = None
    next_needed: int = 0


@dataclass(frozen=True)
class TransferHeader:
    """Representative -> joiner: transfer metadata."""

    transfer_id: str
    green_count: int
    servers: tuple
    header: dict
    total_chunks: int
    removed: tuple = ()


@dataclass(frozen=True)
class TransferBusy:
    """Member -> joiner: join known but not green here yet; retry."""

    joiner_id: int


class RepresentativeRole:
    """Member-side join support: announce joiners, stream snapshots."""

    def __init__(self, replica: "Any", chunk_items: int = 64,
                 chunk_size: int = 8192) -> None:
        self.replica = replica
        self.chunk_items = chunk_items
        self.chunk_size = chunk_size
        self._senders: Dict[str, SnapshotSender] = {}
        self._sender_meta: Dict[str, TransferHeader] = {}
        self._c_transfers = self._c_chunks = None
        obs = getattr(replica, "obs", None)
        if obs is not None and obs.enabled:
            registry = obs.registry
            self._c_transfers = registry.counter(
                "repro_transfer_starts_total",
                "Snapshot transfers started (or resumed) toward a "
                "joining replica.", ("server",)).labels(replica.node)
            self._c_chunks = registry.counter(
                "repro_transfer_chunks_total",
                "Snapshot chunks streamed to joining replicas.",
                ("server",)).labels(replica.node)

    # -- called by the engine hook when a local JOIN action greens -----
    def start_transfer(self, join: Action, position: int) -> None:
        snapshot = self.replica.database.snapshot()
        transfer_id = str(join.action_id)
        sender = SnapshotSender(transfer_id, snapshot,
                                chunk_items=self.chunk_items)
        header = TransferHeader(
            transfer_id=transfer_id,
            green_count=position + 1,
            servers=tuple(self.replica.engine.queue.servers),
            header=sender.header,
            total_chunks=sender.total,
            removed=tuple(sorted(self.replica.engine.removed_servers)))
        self._senders[transfer_id] = sender
        self._sender_meta[transfer_id] = header
        assert join.join_id is not None
        self._stream(join.join_id, transfer_id, 0)

    def _stream(self, joiner_id: int, transfer_id: str,
                from_chunk: int) -> None:
        sender = self._senders[transfer_id]
        header = self._sender_meta[transfer_id]
        if self._c_transfers is not None:
            self._c_transfers.inc()
            self._c_chunks.inc(sender.total - from_chunk)
        self.replica.endpoint.send(joiner_id, header, size=512)
        for seq in range(from_chunk, sender.total):
            self.replica.endpoint.send(joiner_id, sender.chunk(seq),
                                       size=self.chunk_size)

    # -- join requests arriving over the channel ------------------------
    def on_join_request(self, request: JoinRequest) -> None:
        engine = self.replica.engine
        if engine.exited:
            return
        joiner = request.joiner_id
        if joiner in engine.queue.red_cut:
            # Join already ordered here (line 17): resume the transfer.
            transfer_id = request.transfer_id
            if transfer_id is not None and transfer_id in self._senders:
                self._stream(joiner, transfer_id, request.next_needed)
            else:
                # We ordered the join but were not the representative:
                # rebuild a sender from our own (equivalent) state.
                # Safe only if our database is at least at the join
                # point, which is implied by the join being green here.
                if engine.queue.green_lines.get(joiner, 0) \
                        > engine.queue.green_count:
                    self.replica.endpoint.send(joiner,
                                               TransferBusy(joiner), 64)
                    return
                snapshot = self.replica.database.snapshot()
                transfer_id = f"resume-{self.replica.node}-{joiner}-" \
                              f"{snapshot['applied_count']}"
                sender = SnapshotSender(transfer_id, snapshot,
                                        chunk_items=self.chunk_items)
                self._senders[transfer_id] = sender
                self._sender_meta[transfer_id] = TransferHeader(
                    transfer_id=transfer_id,
                    green_count=snapshot["applied_count"],
                    servers=tuple(engine.queue.servers),
                    header=sender.header,
                    total_chunks=sender.total,
                    removed=tuple(sorted(engine.removed_servers)))
                self._stream(joiner, transfer_id, 0)
        else:
            # First contact (lines 16-19): announce the newcomer.
            action = join_action(engine.next_action_id(), joiner)
            engine.submit_action(action)


class JoinerProtocol:
    """Joiner-side state machine: request, receive, resume, complete.

    ``on_ready(header_info)`` fires once the snapshot is assembled and
    restored; the host replica then sets up its engine and joins the
    replicated group (CodeSegment 5.2 line 29-30).
    """

    def __init__(self, sim: "Runtime", replica: "Any", peers: List[int],
                 on_ready: Callable[[TransferHeader], None],
                 retry_interval: float = 1.0) -> None:
        self.sim = sim
        self.replica = replica
        self.peers = list(peers)
        self.on_ready = on_ready
        self.retry_interval = retry_interval
        self.receiver = SnapshotReceiver()
        self.header: Optional[TransferHeader] = None
        self._peer_index = 0
        self._done = False
        self._last_progress = 0
        self._timer = None

    @property
    def current_peer(self) -> int:
        return self.peers[self._peer_index % len(self.peers)]

    def start(self) -> None:
        self._request()
        self._arm_retry()

    def _arm_retry(self) -> None:
        if self._done:
            return
        self._timer = self.sim.schedule(self.retry_interval, self._retry)

    def _retry(self) -> None:
        if self._done:
            return
        progress = self.receiver.next_needed
        if progress == self._last_progress:
            # Stalled: switch representative (Section 5.1's reconnect).
            self._peer_index += 1
            self._request()
        self._last_progress = progress
        self._arm_retry()

    def _request(self) -> None:
        transfer_id = self.receiver.transfer_id
        self.replica.endpoint.send(
            self.current_peer,
            JoinRequest(self.replica.node, transfer_id,
                        self.receiver.next_needed),
            size=128)

    # -- channel deliveries ----------------------------------------------
    def on_message(self, payload: Any) -> bool:
        """Returns True if the payload belonged to the join protocol."""
        if self._done:
            return isinstance(payload, (TransferHeader, SnapshotChunk,
                                        TransferBusy))
        if isinstance(payload, TransferHeader):
            self.header = payload
            self.receiver.begin(payload.transfer_id, payload.header)
            self._check_complete()
            return True
        if isinstance(payload, SnapshotChunk):
            self.receiver.accept(payload)
            self._check_complete()
            return True
        if isinstance(payload, TransferBusy):
            return True
        return False

    def _check_complete(self) -> None:
        if self.header is None or not self.receiver.complete:
            return
        if self.receiver.transfer_id != self.header.transfer_id:
            return
        self._done = True
        if self._timer is not None:
            self._timer.cancel()
        snapshot = self.receiver.assemble()
        self.replica.database.restore(snapshot)
        self.on_ready(self.header)


def make_leave_action(engine: "Any", leaving_server: int) -> Action:
    """Build a PERSISTENT_LEAVE (voluntary or administrative)."""
    return leave_action(engine.next_action_id(), leaving_server)
