"""Client proxy: submit actions, await global ordering.

A client is attached to one replica (the paper's model: clients submit
to their local server and are answered when the action is globally
ordered).  The closed-loop benchmark clients in :mod:`repro.bench`
build on this class.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..db import Action, ActionId

_client_ids = itertools.count(1)

Completion = Callable[[Action, int, Any], None]


class Client:
    """A client of the replicated database."""

    def __init__(self, replica: "Any", name: Optional[str] = None) -> None:
        self.replica = replica
        self.client_id = name or f"client-{next(_client_ids)}"
        self.submitted = 0
        self.completed = 0
        self.latencies: List[float] = []
        self._pending_time: Dict[ActionId, float] = {}

    def submit(self, update: Optional[Tuple], query: Optional[Tuple] = None,
               on_complete: Optional[Completion] = None,
               meta: Optional[dict] = None) -> ActionId:
        """Submit an update (and/or query) action; ``on_complete`` fires
        when the action is globally ordered and applied locally."""
        sim = self.replica.sim
        start = sim.now

        def complete(action: Action, position: int, result: Any) -> None:
            self.completed += 1
            self.latencies.append(sim.now - start)
            self._pending_time.pop(action.action_id, None)
            if on_complete is not None:
                on_complete(action, position, result)

        action_id = self.replica.submit(update=update, query=query,
                                        client=self.client_id,
                                        on_complete=complete, meta=meta)
        self.submitted += 1
        self._pending_time[action_id] = start
        return action_id

    @property
    def outstanding(self) -> int:
        return self.submitted - self.completed

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)
