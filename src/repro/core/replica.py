"""Replica: the full per-node stack.

Wires together one node's disk, write-ahead log, stable store, database,
group communication daemon, reliable channel endpoint, and replication
engine — the three processes of the paper's node model (database server,
replication engine, group communication layer) plus the stable storage
they share.  Handles crash/recovery as a unit: "the crash of any of the
components running on a node ... is treated as a global node crash".
"""

from __future__ import annotations

from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Optional,
                    Set, Tuple)

from ..db import Action, ActionId, ActionType, Database, DirtyView
from ..gcs import (GcsDaemon, GcsSettings, GroupChannel,
                   ReliableChannelEndpoint)
from ..net import Datagram, WireBatcher
from ..obs import Observability
from ..sim import ServiceQueue, Timer, Tracer
from ..storage import DiskProfile, SimulatedDisk, StableStore, WriteAheadLog
from .engine import EngineConfig, EngineHooks, ReplicationEngine
from .recovery import recover_engine
from .reconfig import JoinRequest, RepresentativeRole, make_leave_action
from .state_machine import EngineState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.base import Runtime, Transport

Completion = Callable[[Action, int, Any], None]

#: Figure 4 states as gauge codes (stable across enum reordering).
_STATE_CODES = {
    EngineState.NON_PRIM: 0, EngineState.REG_PRIM: 1,
    EngineState.TRANS_PRIM: 2, EngineState.EXCHANGE_STATES: 3,
    EngineState.EXCHANGE_ACTIONS: 4, EngineState.CONSTRUCT: 5,
    EngineState.NO: 6, EngineState.UN: 7,
}


class _ReplicaHooks(EngineHooks):
    """Engine upcalls routed to the owning replica."""

    def __init__(self, replica: "Replica") -> None:
        self.replica = replica

    def on_green(self, action: Action, position: int, result: Any) -> None:
        self.replica._on_green(action, position, result)

    def on_red(self, action: Action) -> None:
        self.replica._on_red(action)

    def on_state_change(self, old: EngineState, new: EngineState) -> None:
        for listener in self.replica._state_listeners:
            listener(old, new)

    def start_transfer(self, join_action: Action, position: int) -> None:
        self.replica.representative.start_transfer(join_action, position)

    def on_exit(self) -> None:
        self.replica._on_engine_exit()


class Replica:
    """One node of the replicated database system."""

    def __init__(self, sim: "Runtime", node: int, network: "Transport",
                 directory: Set[int], server_ids: List[int],
                 disk_profile: Optional[DiskProfile] = None,
                 gcs_settings: Optional[GcsSettings] = None,
                 engine_config: Optional[EngineConfig] = None,
                 tracer: Optional[Tracer] = None,
                 obs: Optional[Observability] = None,
                 shard: int = 0) -> None:
        self.sim = sim
        self.node = node
        self.shard = shard
        self.network = network
        self.tracer = tracer or Tracer(enabled=False)
        self.obs = obs if obs is not None else Observability.disabled()
        self.server_ids = list(server_ids)
        self.engine_config = engine_config or EngineConfig()

        self.disk = SimulatedDisk(sim, node, disk_profile, self.tracer,
                                  obs=self.obs)
        self.wal = WriteAheadLog(self.disk, obs=self.obs)
        self.store = StableStore(self.wal)
        self.database = Database()
        self.dirty_view = DirtyView(self.database)

        # One wire batcher per node, shared by the GCS daemon and the
        # reliable channel endpoint so their traffic coalesces into
        # common frames.  Disabled (the default) means no batcher
        # object at all: the datapath is bit-identical to the
        # unbatched protocol.
        self.gcs_settings = gcs_settings or GcsSettings()
        wire = self.gcs_settings.wire
        self.batcher: Optional[WireBatcher] = (
            WireBatcher(sim, node, network, wire, obs=self.obs)
            if wire.enabled else None)
        self.daemon = GcsDaemon(sim, node, network, directory,
                                self.gcs_settings, self.tracer,
                                extra_dispatch=self._extra_dispatch,
                                obs=self.obs, batcher=self.batcher,
                                group=shard)
        self.channel = GroupChannel(self.daemon)
        self.endpoint = ReliableChannelEndpoint(
            sim, node, network, self._on_channel_message, obs=self.obs,
            batcher=self.batcher,
            ack_delay=wire.ack_delay if wire.enabled else 0.0)
        self.engine = ReplicationEngine(
            sim, node, self.channel, self.store, self.database,
            self.server_ids, self.engine_config, _ReplicaHooks(self),
            self.tracer, obs=self.obs, shard=shard)
        self.representative = RepresentativeRole(self)
        if self.obs.enabled:
            # Read through ``self.engine``/``self.running`` at collect
            # time so recovery's engine rebuild is picked up for free.
            registry = self.obs.registry
            for name, help, fn in (
                    ("repro_engine_state",
                     "Engine state (Figure 4): 0=NonPrim 1=RegPrim "
                     "2=TransPrim 3=ExchangeStates 4=ExchangeActions "
                     "5=Construct 6=No 7=Un.",
                     lambda: _STATE_CODES.get(self.engine.state, -1)),
                    ("repro_engine_green_count",
                     "Actions on the green (globally ordered) line.",
                     lambda: self.engine.queue.green_count),
                    ("repro_engine_ongoing_actions",
                     "Locally originated actions not yet green "
                     "(ongoingQueue depth).",
                     lambda: len(self.engine.ongoing)),
                    ("repro_replica_running",
                     "1 while the node is up, 0 after a crash.",
                     lambda: 1 if self.running else 0)):
                registry.gauge_callback(name, fn, help,
                                        ("server",), (node,))
        self.joiner: Optional[Any] = None   # set by cluster for joiners

        self.cpu = ServiceQueue(sim)
        # Deterministic procedures (active actions) are code, not
        # data: they must survive crash recovery and be identical at
        # every replica.  Register through the replica, never directly
        # on the database, so recovery can re-install them before the
        # green replay.
        self.procedures: Dict[str, Any] = {}
        self._pending: Dict[ActionId, Completion] = {}
        self._green_listeners: List[Callable[[Action, int, Any], None]] = []
        self._red_listeners: List[Callable[[Action], None]] = []
        self._state_listeners: List[
            Callable[[EngineState, EngineState], None]] = []
        self._checkpoint = Timer(sim, self._do_checkpoint,
                                 self.engine_config.checkpoint_interval,
                                 periodic=True)
        self.running = False

    # ==================================================================
    # lifecycle
    # ==================================================================
    def start(self, join_group: bool = True) -> None:
        """Boot the node; optionally join the replication group."""
        self.daemon.start()
        self.endpoint.start()
        self._checkpoint.start()
        self.running = True
        if join_group:
            self.daemon.join()

    def crash(self) -> None:
        """Node crash: all volatile state is lost."""
        self.running = False
        self.daemon.crash()
        self.endpoint.stop()
        self._checkpoint.stop()
        self.disk.crash()
        self.store.crash()
        self.cpu.reset()
        self._pending = {}
        self.tracer.emit(self.sim.now, self.node, "replica.crash")

    def register_procedure(self, name: str, procedure: Any) -> None:
        """Register a deterministic procedure, durably across
        recoveries.  Must be performed identically at every replica."""
        self.procedures[name] = procedure
        self.database.register_procedure(name, procedure)

    def recover(self) -> None:
        """Recover from stable storage and rejoin (A.13)."""
        self.database = Database()
        for name, procedure in self.procedures.items():
            self.database.register_procedure(name, procedure)
        self.dirty_view = DirtyView(self.database)
        self.engine = ReplicationEngine(
            self.sim, self.node, self.channel, self.store, self.database,
            [self.node], self.engine_config, _ReplicaHooks(self),
            self.tracer, obs=self.obs, shard=self.shard)
        recover_engine(self.engine)
        self.daemon.recover()
        self.endpoint.start()
        self._checkpoint.start()
        self.running = True
        self.daemon.join()
        self.tracer.emit(self.sim.now, self.node, "replica.recover")

    def leave(self) -> ActionId:
        """Voluntarily and permanently leave the replicated system."""
        action = make_leave_action(self.engine, self.node)
        self.engine.submit_action(action)
        return action.action_id

    def remove_dead_replica(self, dead_server: int) -> ActionId:
        """Administratively remove a permanently failed replica."""
        action = make_leave_action(self.engine, dead_server)
        self.engine.submit_action(action)
        return action.action_id

    def _on_engine_exit(self) -> None:
        self.running = False
        self.daemon.leave()
        self._checkpoint.stop()

    def _do_checkpoint(self) -> None:
        if self.running and not self.engine.exited:
            self.engine.checkpoint()

    # ==================================================================
    # client interface
    # ==================================================================
    def submit(self, update: Optional[Tuple], query: Optional[Tuple] = None,
               client: Any = None,
               on_complete: Optional[Completion] = None,
               meta: Optional[dict] = None) -> ActionId:
        """Submit an action; ``on_complete`` fires at global ordering."""
        action_id = self.engine.submit(update=update, query=query,
                                       client=client, meta=meta)
        if on_complete is not None:
            self._pending[action_id] = on_complete
        return action_id

    def query_consistent(self, query: Tuple) -> Any:
        """Strict-consistency read of the local green state.

        Only meaningful while in a primary component; Section 6's weak
        and dirty services live in :mod:`repro.semantics`.
        """
        return self.database.query(query)

    # ==================================================================
    # engine upcalls
    # ==================================================================
    def _on_green(self, action: Action, position: int, result: Any) -> None:
        self.dirty_view.invalidate()
        # Every replica pays the per-action processing cost; clients see
        # their response once the replication server's CPU caught up.
        ready = self.cpu.take(self.engine_config.apply_cpu)
        completion = None
        if action.server_id == self.node:
            completion = self._pending.pop(action.action_id, None)
        if completion is not None or self._green_listeners:
            self.sim.post_at(ready, self._notify_green, action,
                             position, result, completion)

    def _notify_green(self, action: Action, position: int, result: Any,
                      completion: Optional[Completion]) -> None:
        if not self.running:
            return
        if completion is not None:
            completion(action, position, result)
        for listener in self._green_listeners:
            listener(action, position, result)

    def _on_red(self, action: Action) -> None:
        for listener in self._red_listeners:
            listener(action)

    def add_green_listener(self, listener: Callable[[Action, int, Any],
                                                    None]) -> None:
        self._green_listeners.append(listener)

    def add_red_listener(self, listener: Callable[[Action], None]) -> None:
        self._red_listeners.append(listener)

    def add_state_listener(self, listener: Callable[
            [EngineState, EngineState], None]) -> None:
        self._state_listeners.append(listener)

    # ==================================================================
    # channel plumbing (join/transfer protocol)
    # ==================================================================
    def _extra_dispatch(self, datagram: Datagram) -> bool:
        return self.endpoint.on_datagram(datagram)

    def _on_channel_message(self, peer: int, payload: Any) -> None:
        if self.joiner is not None and self.joiner.on_message(payload):
            return
        if isinstance(payload, JoinRequest):
            self.representative.on_join_request(payload)

    # ==================================================================
    # introspection
    # ==================================================================
    @property
    def state(self) -> EngineState:
        return self.engine.state

    @property
    def green_count(self) -> int:
        return self.engine.queue.green_count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Replica {self.node} {self.engine.state}>"
