"""Persistent records of the replication engine (Appendix A data
structures).

These are the small structures the algorithm keeps on stable storage:

* ``PrimComponent`` — the last *installed* primary component this server
  knows of: its index, the attempt that installed it, and its members.
* ``Vulnerable`` — the installation-attempt record guarding the gap
  between group-communication notifications and what survives a crash.
  A server that votes (sends CPC) for an attempt is vulnerable to it
  until the attempt's outcome is fully known.
* ``Yellow`` — the ordered set of actions delivered in a transitional
  configuration of a primary component (order unknown *to us*, but
  possibly known to someone).

All three are plain data and deep-copyable, so they round-trip through
:class:`repro.storage.StableStore`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..db import ActionId

VALID = "valid"
INVALID = "invalid"


@dataclass
class PrimComponent:
    """The last primary component installed, as known to this server."""

    prim_index: int = 0
    attempt_index: int = 0
    servers: Tuple[int, ...] = ()

    @property
    def key(self) -> Tuple[int, int]:
        """Comparison key: lexicographic (prim_index, attempt_index)."""
        return (self.prim_index, self.attempt_index)

    def same_as(self, other: "PrimComponent") -> bool:
        return self.key == other.key and self.servers == other.servers


@dataclass
class Vulnerable:
    """Status of the last installation attempt known to this server.

    ``bits`` maps each member of the attempt to whether that member's
    knowledge of the attempt has been incorporated somewhere we heard
    of.  When every bit is set, no hidden knowledge of the attempt can
    exist and the record can be invalidated (ComputeKnowledge step 4).
    """

    status: str = INVALID
    prim_index: int = 0
    attempt_index: int = 0
    set: Tuple[int, ...] = ()
    bits: Dict[int, bool] = field(default_factory=dict)

    def make_valid(self, prim_index: int, attempt_index: int,
                   members: Tuple[int, ...], self_id: int) -> None:
        """Become vulnerable to a new installation attempt.

        The server's own bit starts set: its own knowledge is, by
        definition, incorporated in itself.
        """
        self.status = VALID
        self.prim_index = prim_index
        self.attempt_index = attempt_index
        self.set = tuple(sorted(members))
        self.bits = {m: (m == self_id) for m in self.set}

    def invalidate(self) -> None:
        self.status = INVALID

    @property
    def is_valid(self) -> bool:
        return self.status == VALID

    def attempt_key(self) -> Tuple[int, int, Tuple[int, ...]]:
        return (self.prim_index, self.attempt_index, self.set)

    def all_bits_set(self) -> bool:
        return bool(self.set) and all(self.bits.get(m, False)
                                      for m in self.set)


@dataclass
class Yellow:
    """The yellow action set (ordered by the old primary's total order)."""

    status: str = INVALID
    set: List[ActionId] = field(default_factory=list)

    @property
    def is_valid(self) -> bool:
        return self.status == VALID

    def make_valid(self) -> None:
        self.status = VALID

    def invalidate(self) -> None:
        self.status = INVALID
        self.set = []

    def add(self, action_id: ActionId) -> None:
        if action_id not in self.set:
            self.set.append(action_id)
