"""ASCII timeline of engine states from trace records.

Turns a traced run into a compact per-replica state timeline — handy
for understanding how a fault schedule played out:

    t=  0.00  1:NonPrim        2:NonPrim        3:NonPrim
    t=  0.54  1:ExchangeStates 2:ExchangeStates 3:ExchangeStates
    t=  0.56  1:RegPrim        2:RegPrim        3:RegPrim
    ...
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..sim import TraceRecord, Tracer

_ABBREV = {
    "NonPrim": "non-prim",
    "RegPrim": "PRIMARY",
    "TransPrim": "trans-prim",
    "ExchangeStates": "exch-states",
    "ExchangeActions": "exch-actions",
    "Construct": "construct",
    "No": "no",
    "Un": "un",
}


def state_changes(tracer: Tracer) -> List[TraceRecord]:
    """Engine state-change records, in time order."""
    return sorted(tracer.select("engine.state"),
                  key=lambda r: (r.time, str(r.node)))


def render_timeline(tracer: Tracer,
                    nodes: Optional[Sequence[int]] = None,
                    abbreviate: bool = True) -> str:
    """Render one line per state change, with a column per replica."""
    changes = state_changes(tracer)
    if nodes is None:
        nodes = sorted({r.node for r in changes})
    if not changes:
        return "(no engine state changes traced)"
    current: Dict[int, str] = {n: "NonPrim" for n in nodes}
    width = max(len(v) for v in _ABBREV.values()) + 1
    lines = []
    for record in changes:
        if record.node not in current:
            current[record.node] = "NonPrim"
        current[record.node] = record.detail["new"]
        cells = []
        for node in nodes:
            name = current.get(node, "NonPrim")
            if abbreviate:
                name = _ABBREV.get(name, name)
            cells.append(f"{node}:{name}".ljust(width + 4))
        lines.append(f"t={record.time:9.4f}  " + " ".join(cells).rstrip())
    return "\n".join(lines)


def summarize_time_in_state(tracer: Tracer, node: int,
                            until: float) -> Dict[str, float]:
    """Seconds spent in each state by ``node`` up to time ``until``."""
    totals: Dict[str, float] = {}
    last_state = "NonPrim"
    last_time = 0.0
    for record in state_changes(tracer):
        if record.node != node:
            continue
        totals[last_state] = totals.get(last_state, 0.0) + \
            (record.time - last_time)
        last_state = record.detail["new"]
        last_time = record.time
    totals[last_state] = totals.get(last_state, 0.0) + \
        max(0.0, until - last_time)
    return totals
