"""ASCII timeline of engine states from trace records.

Turns a traced run into a compact per-replica state timeline — handy
for understanding how a fault schedule played out:

    t=  0.00  1:NonPrim        2:NonPrim        3:NonPrim
    t=  0.54  1:ExchangeStates 2:ExchangeStates 3:ExchangeStates
    t=  0.56  1:RegPrim        2:RegPrim        3:RegPrim
    ...

Built on the merged event-row model of :mod:`repro.tools.tracecli`:
the same renderer works on a live :class:`~repro.sim.Tracer` (via
:func:`~repro.tools.tracecli.rows_from_tracer`) and on flight-recorder
JSONL dumps (via :func:`~repro.tools.tracecli.load_rows`), because
``engine.state`` events appear identically in both streams.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..sim import TraceRecord, Tracer
from .tracecli import Row, rows_from_tracer

_ABBREV = {
    "NonPrim": "non-prim",
    "RegPrim": "PRIMARY",
    "TransPrim": "trans-prim",
    "ExchangeStates": "exch-states",
    "ExchangeActions": "exch-actions",
    "Construct": "construct",
    "No": "no",
    "Un": "un",
}


def state_changes(tracer: Tracer) -> List[TraceRecord]:
    """Engine state-change records, in time order."""
    return sorted(tracer.select("engine.state"),
                  key=lambda r: (r.time, str(r.node)))


def state_rows(rows: Sequence[Row]) -> List[Row]:
    """The ``engine.state`` events of a merged row stream (tracer- or
    flight-sourced) with the new state parsed out of the detail."""
    out = []
    for row in rows:
        if row.get("kind") != "engine.state":
            continue
        new = next((str(d)[4:] for d in (row.get("detail") or [])
                    if str(d).startswith("new=")), None)
        if new is not None:
            out.append(dict(row, new=new))
    return out


def render_timeline_rows(rows: Sequence[Row],
                         nodes: Optional[Sequence[int]] = None,
                         abbreviate: bool = True) -> str:
    """Render one line per state change, with a column per replica."""
    changes = state_rows(rows)
    if nodes is None:
        nodes = sorted({r["node"] for r in changes})
    if not changes:
        return "(no engine state changes traced)"
    current: Dict[int, str] = {n: "NonPrim" for n in nodes}
    width = max(len(v) for v in _ABBREV.values()) + 1
    lines = []
    for row in changes:
        if row["node"] not in current:
            current[row["node"]] = "NonPrim"
        current[row["node"]] = row["new"]
        cells = []
        for node in nodes:
            name = current.get(node, "NonPrim")
            if abbreviate:
                name = _ABBREV.get(name, name)
            cells.append(f"{node}:{name}".ljust(width + 4))
        lines.append(f"t={row['t']:9.4f}  " + " ".join(cells).rstrip())
    return "\n".join(lines)


def render_timeline(tracer: Tracer,
                    nodes: Optional[Sequence[int]] = None,
                    abbreviate: bool = True) -> str:
    """Render a traced run (see :func:`render_timeline_rows`)."""
    return render_timeline_rows(rows_from_tracer(tracer, "engine.state"),
                                nodes, abbreviate)


def summarize_time_in_state(tracer: Tracer, node: int,
                            until: float) -> Dict[str, float]:
    """Seconds spent in each state by ``node`` up to time ``until``."""
    totals: Dict[str, float] = {}
    last_state = "NonPrim"
    last_time = 0.0
    for row in state_rows(rows_from_tracer(tracer, "engine.state")):
        if row["node"] != node:
            continue
        totals[last_state] = totals.get(last_state, 0.0) + \
            (row["t"] - last_time)
        last_state = row["new"]
        last_time = row["t"]
    totals[last_state] = totals.get(last_state, 0.0) + \
        max(0.0, until - last_time)
    return totals
