"""Observability report: latency, membership, and fsync tables.

Runs a workload with observability enabled and prints, per replica:

* action latency percentiles — red→green and submit→green p50/p95/p99
  (exact, over the retained completed spans);
* membership changes — count and total/max duration from steady state
  lost to primary installed, plus closed vulnerable windows;
* fsync accounting — forced writes, platter syncs (group commits), and
  the mean sync wait.

Two ways to drive it:

    python -m repro.tools.obsreport                       # built-in workload
    python -m repro.tools.obsreport scenario.json         # a scenario spec
    python -m repro.tools.obsreport --runtime asyncio     # wall-clock run
    python -m repro.tools.obsreport --json                # machine-readable

The built-in workload submits ``--actions`` updates round-robin, then
injects one partition/heal cycle (so membership spans and vulnerable
windows are exercised) and a second batch after the merge.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..obs import Observability
from .scenario import run_scenario


def default_spec(replicas: int = 5, actions: int = 100,
                 seed: int = 0) -> Dict[str, Any]:
    """The built-in workload: load, partition, merge, load again."""
    majority = list(range(1, replicas // 2 + 2))
    minority = list(range(replicas // 2 + 2, replicas + 1))
    nodes = list(range(1, replicas + 1))
    first, second = actions - actions // 4, actions // 4
    steps: List[Dict[str, Any]] = []
    for i in range(first):
        steps.append({"op": "submit", "node": nodes[i % len(nodes)],
                      "update": ["SET", f"k{i}", i]})
    steps.append({"op": "run", "seconds": 2.0})
    if minority:
        steps.append({"op": "partition",
                      "groups": [majority, minority], "settle": 2.0})
        steps.append({"op": "heal", "settle": 3.0})
    for i in range(second):
        steps.append({"op": "submit",
                      "node": nodes[i % len(nodes)],
                      "update": ["SET", f"post{i}", i]})
    steps.append({"op": "run", "seconds": 3.0})
    steps.append({"op": "check", "kind": "converged"})
    return {"replicas": replicas, "seed": seed, "steps": steps}


def default_shard_spec(shards: int, replicas: int = 3,
                       actions: int = 100,
                       seed: int = 0) -> Dict[str, Any]:
    """The built-in sharded workload: routed single-key updates plus a
    tail of cross-shard transactions."""
    steps: List[Dict[str, Any]] = []
    for i in range(actions - actions // 10):
        steps.append({"op": "txn", "update": ["SET", f"k{i}", i]})
    steps.append({"op": "run", "seconds": 2.0})
    for i in range(actions // 10):
        steps.append({"op": "txn",
                      "update": [["SET", f"x{i}", i],
                                 ["SET", f"y{i}", -i]]})
    steps.append({"op": "run", "seconds": 3.0})
    steps.append({"op": "check", "kind": "converged"})
    return {"shards": shards, "replicas": replicas, "seed": seed,
            "steps": steps}


def build_report(obs: Observability, *,
                 shards: bool = False) -> Dict[str, Any]:
    """Per-replica observability digest from a finished run.

    ``shards=True`` additionally groups the replicas by shard (global
    node ids carry their shard in the id, see
    :func:`repro.shard.router.shard_of`) under a ``"shards"`` key; the
    flat ``"replicas"`` table is unchanged, so single-group consumers
    never notice.
    """
    snapshot = obs.snapshot()

    def sample(name: str, node: Any, default: Any = 0.0) -> Any:
        entry = snapshot.get(name, {})
        if str(node) in entry:
            return entry[str(node)]
        # Shard-scoped registries key samples as "shard,node": fall
        # back to the unique key whose node component matches.
        for key, value in entry.items():
            if key.split(",")[-1] == str(node):
                return value
        return default

    doc: Dict[str, Any] = {"replicas": {}}
    for node in sorted(obs.trackers):
        tracker = obs.trackers[node]
        red_green = tracker.latency_percentiles("red_to_green")
        submit_green = tracker.latency_percentiles("submit_to_green")
        durations = tracker.membership_durations()
        forced = sample("repro_disk_forced_writes", node)
        syncs = sample("repro_disk_syncs", node)
        sync_hist = sample("repro_disk_sync_wait_seconds", node, {})
        doc["replicas"][str(node)] = {
            "actions_completed": tracker.greens_total,
            "red_to_green": dict(zip(("p50", "p95", "p99"), red_green)),
            "submit_to_green": dict(zip(("p50", "p95", "p99"),
                                        submit_green)),
            "membership_changes": len(durations),
            "membership_total_s": sum(durations),
            "membership_max_s": max(durations) if durations else 0.0,
            "vulnerable_windows": len(tracker.vulnerable_completed),
            "forced_writes": int(forced),
            "syncs": int(syncs),
            "sync_wait_mean_s": (sync_hist.get("sum", 0.0)
                                 / sync_hist["count"]
                                 if sync_hist.get("count") else 0.0),
        }
        staleness = tracker.staleness_percentiles()
        if staleness is not None:
            doc["replicas"][str(node)]["staleness"] = dict(
                zip(("p50", "p95", "p99"), staleness))
            doc["replicas"][str(node)]["green_lag_s"] = tracker.green_lag
    txn_spans = obs._root._txn_spans
    if txn_spans is not None:
        latencies = txn_spans.latency_percentiles()
        if latencies:
            doc["txns"] = {
                f"{shard_set}/{outcome}": entry
                for (shard_set, outcome), entry in latencies.items()}
    if shards:
        from ..shard.router import shard_of
        grouped: Dict[str, Any] = {}
        for node in sorted(obs.trackers):
            shard = grouped.setdefault(str(shard_of(node)), {
                "replicas": [], "actions_completed": 0})
            shard["replicas"].append(str(node))
            shard["actions_completed"] += \
                doc["replicas"][str(node)]["actions_completed"]
        doc["shards"] = grouped
    return doc


def _ms(seconds: float) -> str:
    return f"{seconds * 1000.0:8.2f}"


def format_table(doc: Dict[str, Any]) -> str:
    """Render the report as the fixed-width operator table."""
    lines = [
        "server  actions   red->green ms (p50/p95/p99)   "
        "submit->green ms (p50/p95/p99)   membership (n, max ms)   "
        "fsyncs (forced/syncs, mean ms)",
    ]
    lines.append("-" * len(lines[0]))
    for node, entry in doc["replicas"].items():
        rg = entry["red_to_green"]
        sg = entry["submit_to_green"]
        lines.append(
            f"{node:>6}  {entry['actions_completed']:>7}   "
            f"{_ms(rg['p50'])}/{_ms(rg['p95'])}/{_ms(rg['p99'])}   "
            f"{_ms(sg['p50'])}/{_ms(sg['p95'])}/{_ms(sg['p99'])}   "
            f"{entry['membership_changes']:>3}, "
            f"{_ms(entry['membership_max_s'])}          "
            f"{entry['forced_writes']:>6}/{entry['syncs']:<6} "
            f"{_ms(entry['sync_wait_mean_s'])}")
    if any("staleness" in e for e in doc["replicas"].values()):
        lines.append("")
        lines.append("server  staleness ms (p50/p95/p99)   green lag ms")
        for node, entry in doc["replicas"].items():
            st = entry.get("staleness")
            if st is None:
                continue
            lines.append(
                f"{node:>6}  {_ms(st['p50'])}/{_ms(st['p95'])}"
                f"/{_ms(st['p99'])}      {_ms(entry['green_lag_s'])}")
    if "txns" in doc:
        lines.append("")
        lines.append("txn shards/outcome   count   "
                     "latency ms (p50/p95/p99)")
        for label, entry in doc["txns"].items():
            lines.append(
                f"{label:>18}  {int(entry['count']):>6}   "
                f"{_ms(entry['p50'])}/{_ms(entry['p95'])}"
                f"/{_ms(entry['p99'])}")
    if "shards" in doc:
        lines.append("")
        lines.append("shard   replicas                actions")
        for shard, entry in sorted(doc["shards"].items(),
                                   key=lambda kv: int(kv[0])):
            lines.append(f"{shard:>5}   {','.join(entry['replicas']):<22} "
                         f"{entry['actions_completed']:>7}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        description="Run a workload with observability on and print "
                    "per-replica latency/membership/fsync tables.")
    parser.add_argument("spec", nargs="?", default=None,
                        help="scenario JSON (default: built-in workload)")
    parser.add_argument("--replicas", type=int, default=5,
                        help="built-in workload cluster size")
    parser.add_argument("--actions", type=int, default=100,
                        help="built-in workload action count")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--runtime", choices=("sim", "asyncio"),
                        default=None,
                        help="execution substrate (default: spec's "
                             "'runtime' key, else sim)")
    parser.add_argument("--shards", type=int, default=None,
                        help="run against a shard fabric of N groups "
                             "and group the report per shard")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON")
    args = parser.parse_args(argv)

    if args.spec is not None:
        with open(args.spec, encoding="utf-8") as handle:
            spec = json.load(handle)
        if args.shards is not None:
            spec["shards"] = args.shards
    elif args.shards is not None:
        spec = default_shard_spec(args.shards, args.replicas,
                                  args.actions, args.seed)
    else:
        spec = default_spec(args.replicas, args.actions, args.seed)

    obs = Observability(staleness=True)
    run_scenario(spec, runtime=args.runtime, observability=obs)
    doc = build_report(obs, shards="shards" in spec)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(format_table(doc))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
