"""Console entry point for the static-analysis suite.

Installed as ``repro-analyze``; the implementation lives in
:mod:`repro.analysis.cli`.
"""

from __future__ import annotations

import sys

from ..analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
