"""Declarative scenario runner.

Describes a whole experiment — cluster size, faults, workload,
expectations — as plain data (JSON-compatible), runs it on a simulated
cluster, and produces a structured report.  Useful for regression
scenarios, documentation, and exploring the protocol from the command
line:

    python -m repro.tools.scenario my_scenario.json

A scenario can also be replayed on the live asyncio runtime
(``"runtime": "asyncio"`` in the spec, or ``--runtime asyncio`` on the
command line): the same steps then execute against a
:class:`~repro.runtime.LiveCluster` in wall-clock time.  Crash,
recover, join, and leave steps are simulator-only (the live in-process
harness has no process supervisor); everything else — submit, run,
partition, heal, converged/key checks — behaves identically, which is
the point of the Runtime/Transport seam.

Scenario format::

    {
      "replicas": 5,
      "seed": 7,
      "settle": 2.0,
      "steps": [
        {"op": "submit", "node": 1, "update": ["SET", "k", 1]},
        {"op": "run", "seconds": 1.0},
        {"op": "partition", "groups": [[1, 2], [3, 4, 5]]},
        {"op": "crash", "node": 4},
        {"op": "recover", "node": 4},
        {"op": "heal"},
        {"op": "join", "node": 6, "peer": 2},
        {"op": "leave", "node": 1},
        {"op": "check", "kind": "converged"}
      ]
    }

``check`` kinds: ``converged``, ``prefix``, ``single_primary``,
``primary_is`` (with ``members``), ``key`` (with ``node``, ``key``,
``value``), ``all_primary`` (every running replica back in RegPrim),
``completions`` (with ``at_least``).

Optional top-level keys tune the cluster build — all plain data, so a
shrunk fuzzer repro pins its exact timers and policy:

* ``"gcs"`` — keyword overrides for :class:`~repro.gcs.GcsSettings`;
* ``"disk"`` — keyword overrides for
  :class:`~repro.storage.DiskProfile`;
* ``"quorum"`` — ``"dynamic-linear"`` (default), ``"static-majority"``,
  or ``"both-halves"`` (the deliberately broken tie policy from
  :mod:`repro.check.mutations`, for regression replays of fuzzer
  counterexamples).

Sharded scenarios
-----------------

A spec with a ``"shards"`` key (or ``--shards N`` on the command line)
runs against a :class:`~repro.shard.ShardFabric` of N replication
groups instead of a single cluster.  Updates are *routed* — submit by
content, not by node — and may span shards, in which case they commit
through the cross-shard transaction coordinator::

    {
      "shards": 2, "replicas": 3,
      "steps": [
        {"op": "txn", "update": [["SET", "a", 1], ["SET", "b", 2]]},
        {"op": "run", "seconds": 2.0},
        {"op": "crash", "node": 101},
        {"op": "recover", "node": 101},
        {"op": "recover_txns"},
        {"op": "check", "kind": "converged"},
        {"op": "check", "kind": "key", "key": "a", "value": 1},
        {"op": "check", "kind": "txns", "commits": 1}
      ]
    }

Node ids in sharded scenarios are *global* (shard × 100 + local).
Sharded scenarios are simulator-only; drive the live fabric with
``examples/live_cluster.py --shards N`` instead.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core import ReplicaCluster
from ..obs import Observability


class ScenarioError(Exception):
    """Raised for malformed scenarios or failed checks."""


def _cluster_kwargs(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Resolve the optional ``gcs``/``disk``/``quorum`` spec keys into
    :class:`~repro.core.ReplicaCluster` constructor arguments."""
    kwargs: Dict[str, Any] = {}
    if "gcs" in spec:
        from ..gcs import GcsSettings
        kwargs["gcs_settings"] = GcsSettings(**spec["gcs"])
    if "disk" in spec:
        from ..storage import DiskProfile
        kwargs["disk_profile"] = DiskProfile(**spec["disk"])
    if "quorum" in spec:
        kwargs["engine_config"] = _engine_config(spec["quorum"])
    return kwargs


def _engine_config(quorum: str) -> Any:
    from ..core.engine import EngineConfig
    from ..core.quorum import DynamicLinearVoting, StaticMajority
    if quorum == "dynamic-linear":
        return EngineConfig(quorum=DynamicLinearVoting())
    if quorum == "static-majority":
        return EngineConfig(quorum=StaticMajority())
    if quorum == "both-halves":
        from ..check.mutations import BothHalvesQuorum
        return EngineConfig(quorum=BothHalvesQuorum())
    raise ScenarioError(f"unknown quorum policy {quorum!r}")


@dataclass
class ScenarioReport:
    """Outcome of a scenario run."""

    steps_executed: int = 0
    submissions: int = 0
    completions: int = 0
    checks_passed: int = 0
    final_states: Dict[int, str] = field(default_factory=dict)
    final_green_counts: Dict[int, int] = field(default_factory=dict)
    events: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "steps_executed": self.steps_executed,
            "submissions": self.submissions,
            "completions": self.completions,
            "checks_passed": self.checks_passed,
            "final_states": self.final_states,
            "final_green_counts": self.final_green_counts,
            "events": self.events,
        }


class ScenarioRunner:
    """Executes one scenario spec against a fresh cluster."""

    def __init__(self, spec: Dict[str, Any],
                 observability: Optional[Observability] = None):
        self.spec = spec
        self.report = ScenarioReport()
        self.obs = observability
        self.cluster = ReplicaCluster(
            n=int(spec.get("replicas", 3)),
            seed=int(spec.get("seed", 0)),
            trace=(observability is not None
                   and observability.flight_hub is not None),
            observability=observability,
            **_cluster_kwargs(spec))
        self._completions = 0

    # ------------------------------------------------------------------
    def run(self) -> ScenarioReport:
        self.cluster.start_all(settle=float(self.spec.get("settle", 2.0)))
        for step in self.spec.get("steps", []):
            self._apply(step)
            self.report.steps_executed += 1
        self.report.completions = self._completions
        self.report.final_states = self.cluster.states()
        self.report.final_green_counts = {
            n: r.green_count for n, r in self.cluster.replicas.items()
            if r.running}
        return self.report

    # ------------------------------------------------------------------
    def _apply(self, step: Dict[str, Any]) -> None:
        op = step.get("op")
        if op == "submit":
            node = int(step["node"])
            update = tuple(step["update"])
            self.report.submissions += 1

            def complete(_a, _p, _r):
                self._completions += 1

            self.cluster.replicas[node].submit(update,
                                               on_complete=complete)
            self._log(f"submit at {node}: {update}")
        elif op == "run":
            self.cluster.run_for(float(step.get("seconds", 1.0)))
        elif op == "partition":
            groups = [list(map(int, g)) for g in step["groups"]]
            self.cluster.partition(*groups)
            self.cluster.run_for(float(step.get("settle", 1.0)))
            self._log(f"partition {groups}")
        elif op == "heal":
            self.cluster.heal()
            self.cluster.run_for(float(step.get("settle", 2.0)))
            self._log("heal")
        elif op == "crash":
            self.cluster.crash(int(step["node"]))
            self.cluster.run_for(float(step.get("settle", 1.0)))
            self._log(f"crash {step['node']}")
        elif op == "recover":
            self.cluster.recover(int(step["node"]))
            self.cluster.run_for(float(step.get("settle", 2.0)))
            self._log(f"recover {step['node']}")
        elif op == "join":
            self.cluster.add_replica(int(step["node"]),
                                     peer=int(step["peer"]))
            self.cluster.run_for(float(step.get("settle", 5.0)))
            self._log(f"join {step['node']} via {step['peer']}")
        elif op == "leave":
            self.cluster.replicas[int(step["node"])].leave()
            self.cluster.run_for(float(step.get("settle", 2.0)))
            self._log(f"leave {step['node']}")
        elif op == "check":
            self._check(step)
        else:
            raise ScenarioError(f"unknown op {op!r}")

    def _check(self, step: Dict[str, Any]) -> None:
        kind = step.get("kind")
        try:
            if kind == "converged":
                self.cluster.assert_converged()
            elif kind == "prefix":
                self.cluster.assert_prefix_consistent()
            elif kind == "single_primary":
                self.cluster.assert_single_primary()
            elif kind == "primary_is":
                expected = sorted(int(n) for n in step["members"])
                actual = sorted(self.cluster.primary_members())
                if actual != expected:
                    raise AssertionError(
                        f"primary is {actual}, expected {expected}")
            elif kind == "key":
                node = int(step["node"])
                value = self.cluster.replicas[node].database.state.get(
                    step["key"])
                if value != step["value"]:
                    raise AssertionError(
                        f"{step['key']!r} at {node} is {value!r}, "
                        f"expected {step['value']!r}")
            elif kind == "all_primary":
                states = self.cluster.states()
                laggards = {n: s for n, s in states.items()
                            if s != "RegPrim"}
                if laggards:
                    raise AssertionError(
                        f"not all replicas are primary: {laggards}")
            elif kind == "completions":
                expected = int(step["at_least"])
                if self._completions < expected:
                    raise AssertionError(
                        f"only {self._completions} completions, "
                        f"expected at least {expected}")
            else:
                raise ScenarioError(f"unknown check kind {kind!r}")
        except AssertionError as failure:
            raise ScenarioError(f"check {kind!r} failed: {failure}") \
                from failure
        self.report.checks_passed += 1
        self._log(f"check {kind}: ok")

    def _log(self, message: str) -> None:
        self.report.events.append(
            f"[{self.cluster.sim.now:9.3f}] {message}")


class ShardScenarioRunner:
    """Executes a sharded scenario against a :class:`ShardFabric`.

    Same step vocabulary as :class:`ScenarioRunner` where it applies,
    plus routed submission (``submit``/``txn``), coordinator recovery
    (``recover_txns``), and transaction-outcome checks (``txns``).
    """

    def __init__(self, spec: Dict[str, Any],
                 observability: Optional[Observability] = None):
        from ..shard import ShardFabric
        self.spec = spec
        self.report = ScenarioReport()
        self.obs = observability
        self.fabric = ShardFabric(
            num_shards=int(spec.get("shards", 2)),
            replicas_per_shard=int(spec.get("replicas", 3)),
            seed=int(spec.get("seed", 0)),
            trace=(observability is not None
                   and observability.flight_hub is not None),
            observability=observability)
        self._completions = 0
        self.outcomes: Dict[str, int] = {"commit": 0, "abort": 0}

    def run(self) -> ScenarioReport:
        self.fabric.start_all(settle=float(self.spec.get("settle", 2.0)))
        for step in self.spec.get("steps", []):
            self._apply(step)
            self.report.steps_executed += 1
        self.report.completions = self._completions
        for shard, states in self.fabric.states().items():
            self.report.final_states.update(states)
        self.report.final_green_counts = {
            shard: self.fabric.green_count(shard)
            for shard in sorted(self.fabric.clusters)}
        return self.report

    def _apply(self, step: Dict[str, Any]) -> None:
        op = step.get("op")
        fabric = self.fabric
        if op in ("submit", "txn"):
            update = step["update"]
            self.report.submissions += 1

            def done(txn_id: str, outcome: str) -> None:
                self._completions += 1
                self.outcomes[outcome] = \
                    self.outcomes.get(outcome, 0) + 1

            txn_id = fabric.submit(update, done)
            self._log(f"submit {txn_id}: {update}")
        elif op == "run":
            fabric.run_for(float(step.get("seconds", 1.0)))
        elif op == "partition":
            groups = [list(map(int, g)) for g in step["groups"]]
            fabric.partition(*groups)
            fabric.run_for(float(step.get("settle", 1.0)))
            self._log(f"partition {groups}")
        elif op == "heal":
            fabric.heal()
            fabric.run_for(float(step.get("settle", 2.0)))
            self._log("heal")
        elif op == "crash":
            fabric.crash(int(step["node"]))
            fabric.run_for(float(step.get("settle", 1.0)))
            self._log(f"crash {step['node']}")
        elif op == "recover":
            fabric.recover(int(step["node"]))
            fabric.run_for(float(step.get("settle", 2.0)))
            self._log(f"recover {step['node']}")
        elif op == "recover_txns":
            if not fabric.coordinator.alive:
                home = step.get("home")
                fabric.new_coordinator(
                    home=int(home) if home is not None else None)
            swept = fabric.recover_transactions(
                lambda _txn, outcome: self.outcomes.__setitem__(
                    outcome, self.outcomes.get(outcome, 0) + 1))
            fabric.run_for(float(step.get("settle", 2.0)))
            self._log(f"recover_txns swept {swept}")
        elif op == "check":
            self._check(step)
        else:
            raise ScenarioError(f"unknown sharded op {op!r}")

    def _check(self, step: Dict[str, Any]) -> None:
        kind = step.get("kind")
        try:
            if kind == "converged":
                self.fabric.assert_converged()
            elif kind == "key":
                value = self.fabric.sharded_database().get(step["key"])
                if value != step["value"]:
                    raise AssertionError(
                        f"{step['key']!r} is {value!r}, "
                        f"expected {step['value']!r}")
            elif kind == "txns":
                for outcome in ("commits", "aborts"):
                    if outcome in step:
                        actual = self.outcomes.get(
                            outcome.rstrip("s"), 0)
                        if actual != int(step[outcome]):
                            raise AssertionError(
                                f"{outcome}={actual}, expected "
                                f"{step[outcome]}")
            else:
                raise ScenarioError(
                    f"check kind {kind!r} not supported in sharded "
                    f"scenarios")
        except AssertionError as failure:
            raise ScenarioError(f"check {kind!r} failed: {failure}") \
                from failure
        self.report.checks_passed += 1
        self._log(f"check {kind}: ok")

    def _log(self, message: str) -> None:
        self.report.events.append(
            f"[{self.fabric.sim.now:9.3f}] {message}")


class LiveScenarioRunner:
    """Replays a scenario on the asyncio runtime (:class:`LiveCluster`).

    Time steps (`run`, settles) are wall-clock seconds; keep live
    scenarios short.  Simulator-only ops raise :class:`ScenarioError`.
    """

    _UNSUPPORTED = frozenset({"crash", "recover", "join", "leave"})

    def __init__(self, spec: Dict[str, Any],
                 observability: Optional[Observability] = None):
        self.spec = spec
        self.report = ScenarioReport()
        self.obs = observability
        self._completions = 0

    def run(self) -> ScenarioReport:
        return asyncio.run(self._run())

    async def _run(self) -> ScenarioReport:
        from ..core.state_machine import EngineState
        from ..runtime import LiveCluster
        n = int(self.spec.get("replicas", 3))
        self.cluster = LiveCluster(list(range(1, n + 1)),
                                   observability=self.obs)
        self.cluster.start_all()
        settle = float(self.spec.get("settle", 2.0))
        await self.cluster.wait_all_engine_state(
            EngineState.REG_PRIM, timeout=max(10.0, settle * 5))
        try:
            for step in self.spec.get("steps", []):
                await self._apply(step)
                self.report.steps_executed += 1
            self.report.completions = self._completions
            self.report.final_states = self.cluster.states()
            self.report.final_green_counts = self.cluster.green_counts()
        finally:
            self.cluster.shutdown()
        return self.report

    async def _apply(self, step: Dict[str, Any]) -> None:
        op = step.get("op")
        if op in self._UNSUPPORTED:
            raise ScenarioError(
                f"op {op!r} is simulator-only; not available under "
                f"the asyncio runtime")
        if op == "submit":
            node = int(step["node"])
            update = tuple(step["update"])
            self.report.submissions += 1

            def complete(_a, _p, _r):
                self._completions += 1

            self.cluster.submit(node, update, on_complete=complete)
            self._log(f"submit at {node}: {update}")
        elif op == "run":
            await self.cluster.run_for(float(step.get("seconds", 1.0)))
        elif op == "partition":
            groups = [list(map(int, g)) for g in step["groups"]]
            self.cluster.partition(*groups)
            await self.cluster.run_for(float(step.get("settle", 1.0)))
            self._log(f"partition {groups}")
        elif op == "heal":
            self.cluster.heal()
            await self.cluster.run_for(float(step.get("settle", 2.0)))
            self._log("heal")
        elif op == "check":
            self._check(step)
        else:
            raise ScenarioError(f"unknown op {op!r}")

    def _check(self, step: Dict[str, Any]) -> None:
        kind = step.get("kind")
        try:
            if kind == "converged":
                self.cluster.assert_converged()
            elif kind == "prefix":
                # Live clusters never truncate mid-scenario, so prefix
                # consistency collapses to common-prefix of green orders;
                # converged is the stronger live check.
                self.cluster.assert_same_green_order()
            elif kind == "key":
                node = int(step["node"])
                value = self.cluster.replicas[node].database.state.get(
                    step["key"])
                if value != step["value"]:
                    raise AssertionError(
                        f"{step['key']!r} at {node} is {value!r}, "
                        f"expected {step['value']!r}")
            else:
                raise ScenarioError(
                    f"check kind {kind!r} not supported under the "
                    f"asyncio runtime")
        except AssertionError as failure:
            raise ScenarioError(f"check {kind!r} failed: {failure}") \
                from failure
        self.report.checks_passed += 1
        self._log(f"check {kind}: ok")

    def _log(self, message: str) -> None:
        self.report.events.append(
            f"[{self.cluster.runtime.now:9.3f}] {message}")


def run_scenario(spec: Dict[str, Any],
                 runtime: Optional[str] = None,
                 observability: Optional[Observability] = None
                 ) -> ScenarioReport:
    """Run a scenario spec; raises ScenarioError on failed checks.

    ``runtime`` (or the spec's ``"runtime"`` key) selects the execution
    substrate: ``"sim"`` (default, deterministic virtual time) or
    ``"asyncio"`` (live wall-clock run on a :class:`LiveCluster`).
    Pass an enabled :class:`~repro.obs.Observability` to collect spans
    and histograms during the run (``repro.tools.obsreport`` does).
    """
    chosen = runtime or spec.get("runtime", "sim")
    if "shards" in spec:
        if chosen != "sim":
            raise ScenarioError(
                "sharded scenarios are simulator-only; use "
                "examples/live_cluster.py --shards for live runs")
        return ShardScenarioRunner(spec, observability=observability).run()
    if chosen == "sim":
        return ScenarioRunner(spec, observability=observability).run()
    if chosen == "asyncio":
        return LiveScenarioRunner(spec, observability=observability).run()
    raise ScenarioError(f"unknown runtime {chosen!r}")


def main(argv: Optional[List[str]] = None) -> int:
    import argparse
    parser = argparse.ArgumentParser(
        description="Run a replication scenario from a JSON spec.")
    parser.add_argument("spec", help="path to the scenario JSON file")
    parser.add_argument("--json", action="store_true",
                        help="emit the report as JSON")
    parser.add_argument("--runtime", choices=("sim", "asyncio"),
                        default=None,
                        help="execution substrate (default: spec's "
                             "'runtime' key, else sim)")
    parser.add_argument("--shards", type=int, default=None,
                        help="run against a shard fabric of N groups "
                             "(overrides the spec's 'shards' key)")
    parser.add_argument("--trace-out", metavar="DIR", default=None,
                        help="enable distributed tracing and dump the "
                             "per-node flight recorders into DIR "
                             "(merge with repro-trace)")
    args = parser.parse_args(argv)
    with open(args.spec, encoding="utf-8") as handle:
        spec = json.load(handle)
    if args.shards is not None:
        spec["shards"] = args.shards
    obs = None
    if args.trace_out is not None:
        obs = Observability(flight=True, staleness=True)
    report = run_scenario(spec, runtime=args.runtime, observability=obs)
    if obs is not None:
        from .tracecli import dump_flight
        paths = dump_flight(obs, args.trace_out)
        print(f"wrote {len(paths)} flight dumps to {args.trace_out}")
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for event in report.events:
            print(event)
        print(f"steps={report.steps_executed} "
              f"submissions={report.submissions} "
              f"completions={report.completions} "
              f"checks={report.checks_passed}")
        print(f"final states: {report.final_states}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
