"""Operator tooling: scenario runner, trace timelines, obs reports."""

from .obsreport import build_report, default_spec, format_table
from .scenario import (ScenarioError, ScenarioReport, ScenarioRunner,
                       run_scenario)
from .timeline import (render_timeline, render_timeline_rows,
                       state_changes, summarize_time_in_state)
from .tracecli import (causal_signature, chrome_trace, descendants,
                       dump_flight, flight_sink, happens_before,
                       load_rows, merge_rows, render_text,
                       rows_from_tracer)

__all__ = [
    "ScenarioError",
    "ScenarioReport",
    "ScenarioRunner",
    "build_report",
    "causal_signature",
    "chrome_trace",
    "default_spec",
    "descendants",
    "dump_flight",
    "flight_sink",
    "format_table",
    "happens_before",
    "load_rows",
    "merge_rows",
    "render_text",
    "render_timeline",
    "render_timeline_rows",
    "rows_from_tracer",
    "run_scenario",
    "state_changes",
    "summarize_time_in_state",
]
