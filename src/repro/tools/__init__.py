"""Operator tooling: scenario runner, trace timelines, obs reports."""

from .obsreport import build_report, default_spec, format_table
from .scenario import (ScenarioError, ScenarioReport, ScenarioRunner,
                       run_scenario)
from .timeline import render_timeline, state_changes, \
    summarize_time_in_state

__all__ = [
    "ScenarioError",
    "ScenarioReport",
    "ScenarioRunner",
    "build_report",
    "default_spec",
    "format_table",
    "render_timeline",
    "run_scenario",
    "state_changes",
    "summarize_time_in_state",
]
