"""Operator tooling: declarative scenario runner and trace timelines."""

from .scenario import (ScenarioError, ScenarioReport, ScenarioRunner,
                       run_scenario)
from .timeline import render_timeline, state_changes, \
    summarize_time_in_state

__all__ = [
    "ScenarioError",
    "ScenarioReport",
    "ScenarioRunner",
    "render_timeline",
    "run_scenario",
    "state_changes",
    "summarize_time_in_state",
]
